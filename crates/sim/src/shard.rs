//! Multi-core fan-out of independent work units over `std::thread::scope`.
//!
//! Every batched workload in the platform — PPSFP fault grading, batched
//! ATE playback, March fault simulation — decomposes into *work units*:
//! independent 64-lane passes over an immutable compiled program. This
//! module owns the one pool that fans those units across cores:
//!
//! * [`Threads`] picks the worker count (auto-detected, capped by the
//!   `STEAC_THREADS` environment variable or an explicit override);
//! * [`run_units`] / [`run_fallible`] execute `unit_count` closure calls
//!   on a scoped worker pool, handing out unit indices from a shared
//!   atomic counter (dynamic load balancing — passes that drop all their
//!   faults early finish early) and merging results **by unit index**,
//!   never by completion order, so sharded results are bit-identical to
//!   a single-threaded run at every thread count.
//!
//! No dependencies beyond `std`: the pool is `std::thread::scope`, so
//! borrowed inputs (fault lists, pattern sets, the shared
//! [`SimProgram`](crate::SimProgram)) flow into workers without cloning.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Worker-count configuration for sharded execution.
///
/// The resolution order is: explicit [`Threads::exact`] >
/// `STEAC_THREADS` environment variable > detected core count. The
/// effective count is always at least 1, and pools additionally cap it
/// at the number of work units.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Threads(usize);

impl Threads {
    /// Exactly `n` workers (clamped to at least 1). Ignores the
    /// environment — use this in scaling experiments that must control
    /// the width.
    #[must_use]
    pub fn exact(n: usize) -> Self {
        Threads(n.max(1))
    }

    /// One worker: sharded calls degenerate to the single-threaded loop.
    #[must_use]
    pub fn single() -> Self {
        Threads(1)
    }

    /// The detected core count
    /// ([`std::thread::available_parallelism`]), falling back to 1.
    #[must_use]
    pub fn auto() -> Self {
        Threads(
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
        )
    }

    /// [`Threads::auto`], overridden by a positive integer in the
    /// `STEAC_THREADS` environment variable — the deployment-level knob
    /// (CI pins it to 1 and 4 to shake out nondeterministic merges).
    #[must_use]
    pub fn from_env() -> Self {
        match std::env::var("STEAC_THREADS")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
        {
            Some(n) if n > 0 => Threads(n),
            _ => Threads::auto(),
        }
    }

    /// The configured worker count (≥ 1).
    #[must_use]
    pub fn get(self) -> usize {
        self.0
    }
}

impl Default for Threads {
    fn default() -> Self {
        Threads::from_env()
    }
}

/// Runs `work(0..unit_count)` across a scoped worker pool and returns the
/// results **in unit order** (index `i` of the result is `work(i)`,
/// regardless of which worker ran it or when it finished).
///
/// Units are handed out from a shared atomic counter, so a unit that
/// finishes early (fault dropping, short patterns) frees its worker for
/// the next one. With one effective worker — or a single unit — the work
/// runs inline on the calling thread, so scalar callers pay no spawn
/// cost.
///
/// # Panics
///
/// Propagates a panic from any work unit.
pub fn run_units<T, F>(threads: Threads, unit_count: usize, work: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = threads.get().min(unit_count);
    if workers <= 1 {
        return (0..unit_count).map(work).collect();
    }
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<T>> = Vec::new();
    slots.resize_with(unit_count, || None);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut produced = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= unit_count {
                            break;
                        }
                        produced.push((i, work(i)));
                    }
                    produced
                })
            })
            .collect();
        for handle in handles {
            for (i, value) in handle.join().expect("shard worker panicked") {
                slots[i] = Some(value);
            }
        }
    });
    slots
        .into_iter()
        .map(|v| v.expect("every unit ran exactly once"))
        .collect()
}

/// [`run_units`] for fallible work: returns all results in unit order,
/// or the error of the **lowest-indexed** failing unit (not the first
/// one to fail in wall-clock time), keeping error reporting
/// deterministic across thread counts.
///
/// Later units may still run after an earlier one has failed (workers
/// drain the counter independently); work must therefore be safe to run
/// regardless of other units' outcomes — which independent simulation
/// passes are by construction.
///
/// # Errors
///
/// The error of the lowest-indexed failing unit.
pub fn run_fallible<T, E, F>(threads: Threads, unit_count: usize, work: F) -> Result<Vec<T>, E>
where
    T: Send,
    E: Send,
    F: Fn(usize) -> Result<T, E> + Sync,
{
    run_units(threads, unit_count, work).into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn threads_resolution_and_clamping() {
        assert_eq!(Threads::exact(0).get(), 1);
        assert_eq!(Threads::exact(7).get(), 7);
        assert_eq!(Threads::single().get(), 1);
        assert!(Threads::auto().get() >= 1);
        assert!(Threads::from_env().get() >= 1);
    }

    #[test]
    fn results_are_in_unit_order_at_every_width() {
        let expected: Vec<usize> = (0..97).map(|i| i * i).collect();
        for t in 1..=8 {
            let got = run_units(Threads::exact(t), 97, |i| i * i);
            assert_eq!(got, expected, "{t} threads");
        }
    }

    #[test]
    fn every_unit_runs_exactly_once() {
        let runs: Vec<AtomicU64> = (0..50).map(|_| AtomicU64::new(0)).collect();
        run_units(Threads::exact(4), 50, |i| {
            runs[i].fetch_add(1, Ordering::Relaxed);
        });
        for (i, r) in runs.iter().enumerate() {
            assert_eq!(r.load(Ordering::Relaxed), 1, "unit {i}");
        }
    }

    #[test]
    fn fallible_reports_lowest_indexed_error() {
        for t in 1..=8 {
            let r: Result<Vec<usize>, usize> = run_fallible(Threads::exact(t), 64, |i| {
                if i == 13 || i == 40 {
                    Err(i)
                } else {
                    Ok(i)
                }
            });
            assert_eq!(r.unwrap_err(), 13, "{t} threads");
        }
        let ok: Result<Vec<usize>, usize> = run_fallible(Threads::exact(3), 10, Ok);
        assert_eq!(ok.unwrap(), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn zero_units_is_empty() {
        let got: Vec<u8> = run_units(Threads::exact(4), 0, |_| unreachable!());
        assert!(got.is_empty());
    }
}
