//! Multi-core and multi-process fan-out of independent work units.
//!
//! Every batched workload in the platform — PPSFP fault grading, batched
//! ATE playback, March fault simulation — decomposes into *work units*:
//! independent 64-lane passes over an immutable compiled program. This
//! module owns the pools that fan those units out:
//!
//! * [`Threads`] picks the in-process worker count (auto-detected,
//!   capped by the `STEAC_THREADS` environment variable or an explicit
//!   override);
//! * [`run_units`] / [`run_fallible`] execute `unit_count` closure calls
//!   on a scoped worker pool, handing out unit indices from a shared
//!   atomic counter (dynamic load balancing — passes that drop all their
//!   faults early finish early) and merging results **by unit index**,
//!   never by completion order, so sharded results are bit-identical to
//!   a single-threaded run at every thread count;
//! * [`grade_in_passes`] is the shared good+63 pass-partitioning helper:
//!   it chunks an item list into packed passes, runs each pass to a
//!   detection mask, and flattens the masks back to per-item verdicts in
//!   list order — the one place the partition/merge contract lives for
//!   both gate-level and March fault grading, thread- or process-wide;
//! * [`ProcessPool`] fans serialized work units across **worker
//!   processes** (the `steac-worker` binary), the next rung after
//!   threads: the job (a [`crate::wire`]-encoded program plus workload
//!   parameters) ships once per worker, units are assigned round-robin
//!   by index, and results merge by unit index with the exact same
//!   determinism contract as [`run_units`]. Workloads reach it through
//!   [`crate::exec::Exec`] (`Exec::processes(..)`, or `Exec::from_env`
//!   with `STEAC_EXEC=processes:N` / `STEAC_WORKERS=N`), whose
//!   [`crate::exec::Fallback`] policy decides what a spawn failure
//!   does;
//! * [`JobRegistry`] is the worker-side routing table: the umbrella
//!   crate registers every workload's `open_wire_job` under its `kind`
//!   and the `steac-worker` binary routes requests through that one
//!   table.
//!
//! # Worker protocol
//!
//! One request per worker process over stdin, one response over stdout,
//! everything little-endian via [`crate::wire`] primitives:
//!
//! ```text
//! request:  magic b"STWQ", version u16, kind u16, job block,
//!           unit count u64, then per unit: index u64, unit block
//! response: magic b"STWR", version u16,
//!           then per unit: index u64, status u8 (0 = ok, 1 = error),
//!           payload block (result bytes, or a UTF-8 diagnostic)
//! ```
//!
//! The same request/response bytes travel unchanged over every
//! transport: stdio frames them by EOF and process exit, remote
//! transports ([`crate::remote`]) frame them with a length-prefixed
//! versioned envelope — [`process_request`] is the one execution core
//! behind both.
//!
//! The worker ([`serve_worker`]) opens the job once (`kind` selects the
//! workload; the job block carries the compiled program and shared
//! parameters), executes its units in order, and exits 0. Protocol
//! errors — truncated or version-mismatched requests — make it exit
//! nonzero with a diagnostic on stderr; the dispatcher surfaces any
//! worker failure as the **lowest-indexed** affected unit's error, so
//! failure reporting is as deterministic as success merging.
//!
//! No dependencies beyond `std`: the thread pool is
//! `std::thread::scope`, the process pool is `std::process::Command`.

use crate::wire::{WireReader, WireWriter};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Worker-count configuration for sharded execution.
///
/// The resolution order is: explicit [`Threads::exact`] >
/// `STEAC_THREADS` environment variable > detected core count. The
/// effective count is always at least 1, and pools additionally cap it
/// at the number of work units.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Threads(usize);

impl Threads {
    /// Exactly `n` workers (clamped to at least 1). Ignores the
    /// environment — use this in scaling experiments that must control
    /// the width.
    #[must_use]
    pub fn exact(n: usize) -> Self {
        Threads(n.max(1))
    }

    /// One worker: sharded calls degenerate to the single-threaded loop.
    #[must_use]
    pub fn single() -> Self {
        Threads(1)
    }

    /// The detected core count
    /// ([`std::thread::available_parallelism`]), falling back to 1.
    #[must_use]
    pub fn auto() -> Self {
        Threads(
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
        )
    }

    /// [`Threads::auto`], overridden by a positive integer in the
    /// `STEAC_THREADS` environment variable. Deployments normally
    /// configure width through [`crate::exec::Exec::from_env`]
    /// (`STEAC_EXEC`), which consults this as its compatibility
    /// fallback.
    #[must_use]
    pub fn from_env() -> Self {
        match std::env::var("STEAC_THREADS")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
        {
            Some(n) if n > 0 => Threads(n),
            _ => Threads::auto(),
        }
    }

    /// The configured worker count (≥ 1).
    #[must_use]
    pub fn get(self) -> usize {
        self.0
    }
}

impl Default for Threads {
    fn default() -> Self {
        Threads::from_env()
    }
}

/// Runs `work(0..unit_count)` across a scoped worker pool and returns the
/// results **in unit order** (index `i` of the result is `work(i)`,
/// regardless of which worker ran it or when it finished).
///
/// Units are handed out from a shared atomic counter, so a unit that
/// finishes early (fault dropping, short patterns) frees its worker for
/// the next one. With one effective worker — or a single unit — the work
/// runs inline on the calling thread, so scalar callers pay no spawn
/// cost.
///
/// # Panics
///
/// Propagates a panic from any work unit.
pub fn run_units<T, F>(threads: Threads, unit_count: usize, work: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = threads.get().min(unit_count);
    if workers <= 1 {
        return (0..unit_count).map(work).collect();
    }
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<T>> = Vec::new();
    slots.resize_with(unit_count, || None);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut produced = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= unit_count {
                            break;
                        }
                        produced.push((i, work(i)));
                    }
                    produced
                })
            })
            .collect();
        for handle in handles {
            for (i, value) in handle.join().expect("shard worker panicked") {
                slots[i] = Some(value);
            }
        }
    });
    slots
        .into_iter()
        .map(|v| v.expect("every unit ran exactly once"))
        .collect()
}

/// [`run_units`] for fallible work: returns all results in unit order,
/// or the error of the **lowest-indexed** failing unit (not the first
/// one to fail in wall-clock time), keeping error reporting
/// deterministic across thread counts.
///
/// Later units may still run after an earlier one has failed (workers
/// drain the counter independently); work must therefore be safe to run
/// regardless of other units' outcomes — which independent simulation
/// passes are by construction.
///
/// # Errors
///
/// The error of the lowest-indexed failing unit.
pub fn run_fallible<T, E, F>(threads: Threads, unit_count: usize, work: F) -> Result<Vec<T>, E>
where
    T: Send,
    E: Send,
    F: Fn(usize) -> Result<T, E> + Sync,
{
    run_units(threads, unit_count, work).into_iter().collect()
}

/// Flattens per-pass detection masks (one mask per `per_pass` chunk of
/// the item list, in list order) into one `bool` per item. `first_lane`
/// is the lane carrying a pass's first item — 1 when lane 0 runs the
/// good machine (gate-level PPSFP), 0 when every lane carries an item
/// (March walks).
///
/// Because the flattening walks chunks in order, downstream reports keep
/// exactly the order a single-threaded pass-by-pass loop would produce,
/// regardless of which thread or process computed each mask.
#[must_use]
pub fn flags_from_masks(
    item_count: usize,
    per_pass: usize,
    first_lane: usize,
    masks: &[u64],
) -> Vec<bool> {
    debug_assert!(per_pass + first_lane <= 64, "pass does not fit one word");
    let mut flags = Vec::with_capacity(item_count);
    'outer: for &mask in masks {
        for lane in 0..per_pass {
            if flags.len() == item_count {
                break 'outer;
            }
            flags.push(mask >> (lane + first_lane) & 1 == 1);
        }
    }
    flags
}

/// [`flags_from_masks`] over `N`-word lane masks (the wide executors'
/// `N`×64-lane passes): lane `l` of a pass lives in bit `l % 64` of word
/// `l / 64`. `N = 1` degenerates to the classic single-word flattening.
#[must_use]
pub fn flags_from_lane_masks<const N: usize>(
    item_count: usize,
    per_pass: usize,
    first_lane: usize,
    masks: &[[u64; N]],
) -> Vec<bool> {
    debug_assert!(
        per_pass + first_lane <= 64 * N,
        "pass does not fit {N} words"
    );
    let mut flags = Vec::with_capacity(item_count);
    'outer: for mask in masks {
        for lane in 0..per_pass {
            if flags.len() == item_count {
                break 'outer;
            }
            let bit = lane + first_lane;
            flags.push(mask[bit / 64] >> (bit % 64) & 1 == 1);
        }
    }
    flags
}

/// [`grade_in_passes`] over `N`-word lane masks: chunks `items` into
/// passes of `per_pass` (up to `N`×64 minus `first_lane` items each),
/// runs them on the in-thread pool, and flattens through
/// [`flags_from_lane_masks`].
///
/// # Errors
///
/// The error of the lowest-indexed failing pass.
pub fn grade_in_lane_passes<const N: usize, T, E, F>(
    threads: Threads,
    items: &[T],
    per_pass: usize,
    first_lane: usize,
    run: F,
) -> Result<Vec<bool>, E>
where
    T: Sync,
    E: Send,
    F: Fn(usize, &[T]) -> Result<[u64; N], E> + Sync,
{
    let chunks: Vec<&[T]> = items.chunks(per_pass).collect();
    let masks = run_fallible(threads, chunks.len(), |ci| run(ci, chunks[ci]))?;
    Ok(flags_from_lane_masks(
        items.len(),
        per_pass,
        first_lane,
        &masks,
    ))
}

/// The shared good+63 partition/merge contract: chunks `items` into
/// packed passes of `per_pass`, runs `run(pass_index, chunk)` for each on
/// the in-thread pool, and flattens the per-pass detection masks into
/// per-item flags in list order (see [`flags_from_masks`]).
///
/// Both gate-level fault grading ([`crate::fault`]) and March fault
/// simulation (`steac-membist`) drive their thread-sharded paths through
/// this helper, and merge their process-pool results through
/// [`flags_from_masks`], so every dispatch flavour shares one
/// partitioning implementation.
///
/// # Errors
///
/// The error of the lowest-indexed failing pass.
pub fn grade_in_passes<T, E, F>(
    threads: Threads,
    items: &[T],
    per_pass: usize,
    first_lane: usize,
    run: F,
) -> Result<Vec<bool>, E>
where
    T: Sync,
    E: Send,
    F: Fn(usize, &[T]) -> Result<u64, E> + Sync,
{
    let chunks: Vec<&[T]> = items.chunks(per_pass).collect();
    let masks = run_fallible(threads, chunks.len(), |ci| run(ci, chunks[ci]))?;
    Ok(flags_from_masks(items.len(), per_pass, first_lane, &masks))
}

// ---------- process-level fan-out ----------

const REQUEST_MAGIC: [u8; 4] = *b"STWQ";
const RESPONSE_MAGIC: [u8; 4] = *b"STWR";

/// Version of the worker request/response framing; bumped in lock step
/// with [`crate::wire::WIRE_VERSION`] discipline (see that module's
/// versioning rule).
pub const PROTOCOL_VERSION: u16 = 2;

/// One opened job inside a worker process: decoded shared state plus the
/// per-unit execution step. Implementations live next to their workloads
/// (`crate::fault`, `steac-pattern`, `steac-membist`); the `steac-worker`
/// binary routes a request's `kind` to the right `open_wire_job`
/// constructor.
pub trait WireJob {
    /// Executes one serialized work unit and returns the serialized
    /// result.
    ///
    /// # Errors
    ///
    /// A human-readable diagnostic; the dispatcher attaches it to this
    /// unit's index.
    fn run_unit(&mut self, unit: &[u8]) -> Result<Vec<u8>, String>;
}

/// How a registry entry constructs its job from the job block.
pub type OpenJobFn = fn(&[u8]) -> Result<Box<dyn WireJob>, String>;

/// The worker-side job registry: one table mapping a request's `kind`
/// to the workload that opens it. Replaces the per-crate routing that
/// `src/bin/steac-worker.rs` used to hand-write — the root crate
/// registers every workload (`steac_suite::worker_registry`) and the
/// worker binary, tests and any future remote agent all route through
/// the same table.
#[derive(Debug, Default)]
pub struct JobRegistry {
    entries: Vec<(u16, &'static str, OpenJobFn)>,
}

impl JobRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        JobRegistry::default()
    }

    /// Registers a workload under `kind` with a human-readable `name`
    /// (used in diagnostics).
    ///
    /// # Panics
    ///
    /// If `kind` is already registered — kinds are a global protocol
    /// namespace and a duplicate is a programming error.
    pub fn register(&mut self, kind: u16, name: &'static str, open: OpenJobFn) {
        assert!(
            !self.entries.iter().any(|&(k, ..)| k == kind),
            "work-unit kind {kind} registered twice ({name})"
        );
        self.entries.push((kind, name, open));
    }

    /// Opens the job registered under `kind` from its job block — the
    /// single routing point of the worker protocol.
    ///
    /// # Errors
    ///
    /// A diagnostic for unknown kinds or corrupt job bytes.
    pub fn open(&self, kind: u16, job: &[u8]) -> Result<Box<dyn WireJob>, String> {
        match self.entries.iter().find(|&&(k, ..)| k == kind) {
            Some(&(_, name, open)) => open(job).map_err(|e| format!("opening {name} job: {e}")),
            None => {
                let known: Vec<String> = self
                    .entries
                    .iter()
                    .map(|&(k, name, _)| format!("{k}={name}"))
                    .collect();
                Err(format!(
                    "unknown work-unit kind {kind} (known: {})",
                    known.join(", ")
                ))
            }
        }
    }

    /// The registered `(kind, name)` pairs, in registration order.
    pub fn kinds(&self) -> impl Iterator<Item = (u16, &'static str)> + '_ {
        self.entries.iter().map(|&(k, name, _)| (k, name))
    }
}

/// The process-worker count requested via the `STEAC_WORKERS`
/// environment variable (`None` unless set to a positive integer). The
/// deployment-level knob that opts the default workload entry points
/// into process dispatch; CI pins it to 2 for one full suite run.
#[must_use]
pub fn env_workers() -> Option<usize> {
    std::env::var("STEAC_WORKERS")
        .ok()?
        .trim()
        .parse::<usize>()
        .ok()
        .filter(|&n| n > 0)
}

/// Locates the `steac-worker` binary: the `STEAC_WORKER_BIN` environment
/// variable if it names an existing file, else a `steac-worker` sitting
/// next to the current executable or one directory up (which covers
/// `target/<profile>/` binaries and `target/<profile>/deps/` test
/// executables). `None` means process dispatch is unavailable and
/// callers fall back to the in-thread pool.
#[must_use]
pub fn default_worker_binary() -> Option<PathBuf> {
    if let Ok(p) = std::env::var("STEAC_WORKER_BIN") {
        let p = PathBuf::from(p);
        return p.is_file().then_some(p);
    }
    let exe = std::env::current_exe().ok()?;
    let dir = exe.parent()?;
    let mut candidates = vec![dir.join("steac-worker")];
    if let Some(parent) = dir.parent() {
        candidates.push(parent.join("steac-worker"));
    }
    candidates.into_iter().find(|c| c.is_file())
}

/// Failure of a [`ProcessPool`] run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PoolError {
    /// A worker process could not be spawned at all (missing or broken
    /// binary). Callers treat this as "process dispatch unavailable" and
    /// fall back to the in-thread pool.
    Spawn {
        /// What failed.
        diagnostic: String,
    },
    /// A work unit failed — the unit itself reported an error, or its
    /// worker died/misbehaved. Deterministic: always the lowest-indexed
    /// affected unit.
    Unit {
        /// Lowest-indexed failing unit.
        unit: usize,
        /// Worker-provided (or dispatcher-derived) diagnostic.
        diagnostic: String,
    },
}

impl std::fmt::Display for PoolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PoolError::Spawn { diagnostic } => write!(f, "cannot spawn worker: {diagnostic}"),
            PoolError::Unit { unit, diagnostic } => {
                write!(f, "work unit {unit} failed: {diagnostic}")
            }
        }
    }
}

impl std::error::Error for PoolError {}

/// Dispatcher that fans serialized work units across `steac-worker`
/// processes and merges the results **by unit index** — the process-level
/// sibling of [`run_units`], with the same determinism contract: unit
/// `i`'s result (or the lowest-indexed unit's error) is identical no
/// matter how many workers ran or how they interleaved.
///
/// Units are assigned round-robin by index (worker `w` of `W` gets units
/// `w, w+W, w+2W, …`), the job payload ships once per worker, and each
/// worker streams its results back over stdout.
#[derive(Debug, Clone)]
pub struct ProcessPool {
    binary: PathBuf,
    workers: usize,
}

impl ProcessPool {
    /// A pool over the default worker binary (see
    /// [`default_worker_binary`]); `None` when no binary can be found —
    /// callers fall back to the in-thread pool.
    #[must_use]
    pub fn new(workers: usize) -> Option<Self> {
        Some(ProcessPool::with_binary(default_worker_binary()?, workers))
    }

    /// A pool over an explicit worker binary (clamped to ≥ 1 worker).
    /// Scaling harnesses and tests use this to pin the binary and width.
    #[must_use]
    pub fn with_binary(binary: PathBuf, workers: usize) -> Self {
        ProcessPool {
            binary,
            workers: workers.max(1),
        }
    }

    /// Configured worker-process count (≥ 1; runs additionally cap it at
    /// the unit count).
    #[must_use]
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The worker binary this pool spawns.
    #[must_use]
    pub fn binary(&self) -> &Path {
        &self.binary
    }

    /// Executes `units` under job `kind`/`job` across the worker
    /// processes and returns the result payloads in unit order.
    ///
    /// # Errors
    ///
    /// [`PoolError::Spawn`] when no worker process could be started
    /// (callers fall back to threads), [`PoolError::Unit`] for the
    /// lowest-indexed unit whose execution failed.
    pub fn run(&self, kind: u16, job: &[u8], units: &[Vec<u8>]) -> Result<Vec<Vec<u8>>, PoolError> {
        if units.is_empty() {
            return Ok(Vec::new());
        }
        let workers = self.workers.min(units.len());
        let assignments: Vec<Vec<usize>> = (0..workers)
            .map(|w| (w..units.len()).step_by(workers).collect())
            .collect();

        let mut children: Vec<Child> = Vec::with_capacity(workers);
        for _ in 0..workers {
            match Command::new(&self.binary)
                .stdin(Stdio::piped())
                .stdout(Stdio::piped())
                .stderr(Stdio::piped())
                .spawn()
            {
                Ok(child) => children.push(child),
                Err(e) => {
                    for mut child in children {
                        let _ = child.kill();
                        let _ = child.wait();
                    }
                    return Err(PoolError::Spawn {
                        diagnostic: format!("{}: {e}", self.binary.display()),
                    });
                }
            }
        }

        let mut feeds = Vec::with_capacity(workers);
        for (child, assigned) in children.iter_mut().zip(&assignments) {
            let stdin = child.stdin.take().expect("stdin was piped");
            feeds.push((stdin, encode_request(kind, job, assigned, units)));
        }
        // Writers run on scoped threads so a worker blocked writing its
        // response never deadlocks against us writing its request.
        let outputs: Vec<std::io::Result<std::process::Output>> = std::thread::scope(|scope| {
            let writers: Vec<_> = feeds
                .into_iter()
                .map(|(mut stdin, request)| {
                    scope.spawn(move || {
                        // A dead worker surfaces via its exit status;
                        // the broken pipe here is expected then.
                        let _ = stdin.write_all(&request);
                    })
                })
                .collect();
            let outs = children.into_iter().map(Child::wait_with_output).collect();
            for w in writers {
                let _ = w.join();
            }
            outs
        });

        let mut slots: Vec<Option<Vec<u8>>> = Vec::new();
        slots.resize_with(units.len(), || None);
        let mut failures: Vec<(usize, String)> = Vec::new();
        for (w, (output, assigned)) in outputs.into_iter().zip(&assignments).enumerate() {
            match output {
                Err(e) => failures.push((assigned[0], format!("worker {w} I/O error: {e}"))),
                Ok(output) => {
                    let (items, parse_error) = parse_response(&output.stdout, units.len());
                    for (idx, result) in items {
                        match result {
                            Ok(bytes) => slots[idx] = Some(bytes),
                            Err(diagnostic) => failures.push((idx, diagnostic)),
                        }
                    }
                    // Assigned units with neither a result nor a recorded
                    // failure: the worker died or sent garbage. Attribute
                    // its diagnostics to its first missing unit (one entry
                    // is enough — any failure fails the whole run).
                    if let Some(&idx) = assigned
                        .iter()
                        .find(|&&idx| slots[idx].is_none() && !failures.iter().any(|f| f.0 == idx))
                    {
                        let stderr = String::from_utf8_lossy(&output.stderr);
                        let stderr = stderr.trim();
                        let mut diagnostic = if output.status.success() {
                            format!("worker {w} returned no result")
                        } else {
                            format!("worker {w} exited abnormally ({})", output.status)
                        };
                        if let Some(e) = parse_error {
                            diagnostic = format!("{diagnostic}; response: {e}");
                        }
                        if !stderr.is_empty() {
                            diagnostic = format!("{diagnostic}; stderr: {stderr}");
                        }
                        failures.push((idx, diagnostic));
                    }
                }
            }
        }
        if let Some((unit, diagnostic)) = failures.into_iter().min_by_key(|f| f.0) {
            return Err(PoolError::Unit { unit, diagnostic });
        }
        Ok(slots
            .into_iter()
            .map(|s| s.expect("every unit has a result or a recorded failure"))
            .collect())
    }
}

pub(crate) fn encode_request(
    kind: u16,
    job: &[u8],
    unit_indices: &[usize],
    units: &[Vec<u8>],
) -> Vec<u8> {
    let mut w = WireWriter::new();
    w.put_bytes(&REQUEST_MAGIC);
    w.put_u16(PROTOCOL_VERSION);
    w.put_u16(kind);
    w.put_block(job);
    w.put_usize(unit_indices.len());
    for &idx in unit_indices {
        w.put_usize(idx);
        w.put_block(&units[idx]);
    }
    w.finish()
}

/// Parses one worker's response stream. Returns the per-unit results
/// recovered so far plus an optional description of where parsing
/// stopped (protocol damage after that point).
#[allow(clippy::type_complexity)]
pub(crate) fn parse_response(
    bytes: &[u8],
    unit_count: usize,
) -> (Vec<(usize, Result<Vec<u8>, String>)>, Option<String>) {
    let mut r = WireReader::new(bytes);
    if let Err(e) = r
        .expect_magic(&RESPONSE_MAGIC, "response magic")
        .and_then(|()| r.expect_version(PROTOCOL_VERSION, "response version"))
    {
        return (Vec::new(), Some(e.to_string()));
    }
    let mut items = Vec::new();
    while r.remaining() > 0 {
        let record = (|| {
            let idx = r.get_usize("result unit index")?;
            let status = r.get_u8("result status")?;
            let payload = r.get_block("result payload")?.to_vec();
            Ok::<_, crate::wire::WireError>((idx, status, payload))
        })();
        match record {
            Ok((idx, status, payload)) if idx < unit_count => {
                let result = if status == 0 {
                    Ok(payload)
                } else {
                    Err(String::from_utf8_lossy(&payload).into_owned())
                };
                items.push((idx, result));
            }
            Ok((idx, ..)) => return (items, Some(format!("unit index {idx} out of range"))),
            Err(e) => return (items, Some(e.to_string())),
        }
    }
    (items, None)
}

/// The transport-independent worker core: parses one already-delivered
/// request, opens the job via `open` (handed the request's `kind` and
/// job block), executes every unit in order, and returns the serialized
/// response. [`serve_worker`] (stdio framing) and
/// [`crate::remote::serve_tcp`] (envelope framing) are both thin shells
/// around this function, so every transport executes requests
/// identically.
///
/// A job that fails to open (unknown kind, corrupt job bytes) still
/// produces a well-formed response — every unit reports the open
/// diagnostic — so the dispatcher can attribute the failure to the
/// lowest-indexed unit instead of guessing from a dead pipe.
///
/// # Errors
///
/// A diagnostic when the request itself is unreadable (truncated bytes,
/// bad magic, version mismatch).
pub fn process_request<F>(data: &[u8], open: F) -> Result<Vec<u8>, String>
where
    F: FnOnce(u16, &[u8]) -> Result<Box<dyn WireJob>, String>,
{
    let mut r = WireReader::new(data);
    let protocol = (|| {
        r.expect_magic(&REQUEST_MAGIC, "request magic")?;
        r.expect_version(PROTOCOL_VERSION, "request version")?;
        let kind = r.get_u16("job kind")?;
        let job = r.get_block("job payload")?;
        let count = r.get_usize("unit count")?;
        Ok::<_, crate::wire::WireError>((kind, job, count))
    })();
    let (kind, job, count) = protocol.map_err(|e| e.to_string())?;
    let mut handler = open(kind, job);

    let mut w = WireWriter::new();
    w.put_bytes(&RESPONSE_MAGIC);
    w.put_u16(PROTOCOL_VERSION);
    for _ in 0..count {
        let unit = (|| {
            let idx = r.get_usize("unit index")?;
            let unit = r.get_block("unit payload")?;
            Ok::<_, crate::wire::WireError>((idx, unit))
        })();
        let (idx, unit) = unit.map_err(|e| e.to_string())?;
        let result = match &mut handler {
            Ok(job) => job.run_unit(unit),
            Err(e) => Err(e.clone()),
        };
        w.put_usize(idx);
        match result {
            Ok(bytes) => {
                w.put_u8(0);
                w.put_block(&bytes);
            }
            Err(diagnostic) => {
                w.put_u8(1);
                w.put_block(diagnostic.as_bytes());
            }
        }
    }
    r.finish().map_err(|e| e.to_string())?;
    Ok(w.finish())
}

/// The stdio worker shell: reads one request from `input` (framed by
/// EOF), runs it through [`process_request`], and writes the response to
/// `output` (framed by process exit). This is the entire main of the
/// `steac-worker` binary's default mode; `--serve` wraps the same core
/// in TCP envelopes ([`crate::remote::serve_tcp`]).
///
/// # Errors
///
/// A diagnostic when the request itself is unreadable (truncated bytes,
/// bad magic, version mismatch, I/O failure); the binary prints it to
/// stderr and exits nonzero.
pub fn serve_worker<R, W, F>(mut input: R, mut output: W, open: F) -> Result<(), String>
where
    R: std::io::Read,
    W: std::io::Write,
    F: FnOnce(u16, &[u8]) -> Result<Box<dyn WireJob>, String>,
{
    let mut data = Vec::new();
    input
        .read_to_end(&mut data)
        .map_err(|e| format!("reading request: {e}"))?;
    let response = process_request(&data, open)?;
    output
        .write_all(&response)
        .and_then(|()| output.flush())
        .map_err(|e| format!("writing response: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn threads_resolution_and_clamping() {
        assert_eq!(Threads::exact(0).get(), 1);
        assert_eq!(Threads::exact(7).get(), 7);
        assert_eq!(Threads::single().get(), 1);
        assert!(Threads::auto().get() >= 1);
        assert!(Threads::from_env().get() >= 1);
    }

    #[test]
    fn results_are_in_unit_order_at_every_width() {
        let expected: Vec<usize> = (0..97).map(|i| i * i).collect();
        for t in 1..=8 {
            let got = run_units(Threads::exact(t), 97, |i| i * i);
            assert_eq!(got, expected, "{t} threads");
        }
    }

    #[test]
    fn every_unit_runs_exactly_once() {
        let runs: Vec<AtomicU64> = (0..50).map(|_| AtomicU64::new(0)).collect();
        run_units(Threads::exact(4), 50, |i| {
            runs[i].fetch_add(1, Ordering::Relaxed);
        });
        for (i, r) in runs.iter().enumerate() {
            assert_eq!(r.load(Ordering::Relaxed), 1, "unit {i}");
        }
    }

    #[test]
    fn fallible_reports_lowest_indexed_error() {
        for t in 1..=8 {
            let r: Result<Vec<usize>, usize> = run_fallible(Threads::exact(t), 64, |i| {
                if i == 13 || i == 40 {
                    Err(i)
                } else {
                    Ok(i)
                }
            });
            assert_eq!(r.unwrap_err(), 13, "{t} threads");
        }
        let ok: Result<Vec<usize>, usize> = run_fallible(Threads::exact(3), 10, Ok);
        assert_eq!(ok.unwrap(), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn zero_units_is_empty() {
        let got: Vec<u8> = run_units(Threads::exact(4), 0, |_| unreachable!());
        assert!(got.is_empty());
    }

    struct EchoJob;
    impl WireJob for EchoJob {
        fn run_unit(&mut self, unit: &[u8]) -> Result<Vec<u8>, String> {
            Ok(unit.to_vec())
        }
    }

    fn open_echo(_job: &[u8]) -> Result<Box<dyn WireJob>, String> {
        Ok(Box::new(EchoJob))
    }

    fn open_broken(job: &[u8]) -> Result<Box<dyn WireJob>, String> {
        Err(format!("{} bad bytes", job.len()))
    }

    #[test]
    fn job_registry_routes_by_kind() {
        let mut reg = JobRegistry::new();
        reg.register(7, "echo", open_echo);
        reg.register(8, "broken", open_broken);
        assert_eq!(
            reg.kinds().collect::<Vec<_>>(),
            [(7, "echo"), (8, "broken")]
        );
        let Ok(mut job) = reg.open(7, b"ignored") else {
            panic!("echo job should open");
        };
        assert_eq!(job.run_unit(b"abc").unwrap(), b"abc");
        let Err(err) = reg.open(8, b"xy") else {
            panic!("broken job should not open");
        };
        assert!(err.contains("opening broken job: 2 bad bytes"), "{err}");
        let Err(err) = reg.open(9, b"") else {
            panic!("unknown kind should not open");
        };
        assert!(err.contains("unknown work-unit kind 9"), "{err}");
        assert!(err.contains("7=echo"), "{err}");
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn job_registry_rejects_duplicate_kinds() {
        let mut reg = JobRegistry::new();
        reg.register(7, "echo", open_echo);
        reg.register(7, "echo2", open_echo);
    }
}
