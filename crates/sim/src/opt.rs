//! Compile-time optimizer: a pass pipeline over the [`SimProgram`] IR,
//! run between **compile** ([`crate::program`]) and **execute**
//! ([`crate::engine`]).
//!
//! The pipeline is on by default (`STEAC_OPT=0` is the escape hatch that
//! ships the raw compiler output) and runs four passes in order:
//!
//! 1. **Constant folding** — `Tie0`/`Tie1` (and all-X `Unknown`) fanin is
//!    propagated through the 4-value algebra: `And2(a, 1) → Buf(a)`,
//!    `And2(a, 0) → Tie0`, `Xor2(a, 1) → Inv(a)`, 3/4-input gates shrink
//!    an input at a time, and fully-constant cones collapse to tie
//!    instructions. Every rewrite is a per-lane identity of the packed
//!    algebra (including `X`/`Z` lanes), so folded programs are bit-exact.
//! 2. **Hash-consing / CSE** — structurally identical instructions (same
//!    opcode, same input slots after canonicalisation through earlier
//!    merges) share one computation; later consumers are rewired to the
//!    first occurrence.
//! 3. **Dead-instruction elimination** — instructions whose output nets
//!    are unobserved by any output port, flop/latch side-table read, or
//!    *forceable* slot are removed. Net slots are never deleted — a dead
//!    net's slot stays addressable so forces still land — but its
//!    computation disappears from the hot loop.
//! 4. **Slot renumbering** — net slots are permuted level-aware for cache
//!    locality: non-combinational nets (ports, flop/latch outputs) first,
//!    then combinational outputs in stream order (so the instruction
//!    stream writes the value buffer sequentially), with dead nets parked
//!    at the cold tail ([`OptStats::slots_reclaimed`]). The permutation is
//!    recorded in [`SimProgram::net_slot`] and applied transparently by
//!    the engine's net-addressed API.
//!
//! # Soundness under PPSFP forces
//!
//! Fault injection and pattern playback *force* net values at run time
//! ([`crate::engine::Simulator::force`]), and a rewrite that is a pure
//! value identity can still change behaviour under a force: folding
//! `And2(a, tie1)` to `Buf(a)` erases the detection of a stuck-at-0
//! *on the tie net itself*, and rewiring a CSE duplicate changes which
//! net's forces its consumers see. [`OptConfig::forceable`] therefore
//! declares the set of nets that may ever be forced or faulted:
//!
//! * constants are only propagated off nets **outside** the forceable
//!   set, and CSE only merges instructions whose outputs are both outside
//!   it;
//! * forceable nets are DCE roots (fault sites stay computed);
//! * `None` — the default, used by [`SimProgram::compile`] — means
//!   **every net** is forceable, which keeps folding/CSE/DCE inert and
//!   still enables the two unconditionally-sound passes: renumbering and
//!   schedule verification. That is exactly the contract whole-netlist
//!   fault grading needs: any net can carry a fault, so every net's
//!   computation is observable-in-principle.
//!
//! Callers that know their force surface (e.g. pure functional playback
//! driving only input ports) opt in to the aggressive passes with
//! [`SimProgram::compile_with`] and a restricted set; with a restricted
//! set, `Simulator::get`/`observe` on an eliminated interior net reads
//! the parked slot (all-X) instead of a computed value, so observation
//! should stay within `forceable ∪ ports`.
//!
//! # Scheduling
//!
//! The final pass re-verifies that the (possibly rewritten) stream is
//! topologically ordered and sets [`OptStats::scheduled`]; the engine
//! uses that proof to run its single-sweep settle fast path
//! (`STEAC_OPT=0` programs are never marked scheduled and take the
//! legacy fixpoint loop — that is the honest baseline the speedup is
//! measured against).

use crate::logic::Logic;
use crate::program::{Instr, SimOp, SimProgram, NO_SLOT};
use steac_netlist::NetId;

/// Which passes run and which nets may be forced or faulted at run time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OptConfig {
    /// Propagate `Tie0`/`Tie1`/all-X constants through gate fanin.
    pub fold: bool,
    /// Merge structurally identical instructions (hash-consing).
    pub cse: bool,
    /// Drop instructions behind unobservable nets.
    pub dce: bool,
    /// Permute net slots for cache locality.
    pub renumber: bool,
    /// Nets that may be forced or faulted at run time; `None` means all
    /// of them (the safe whole-netlist-PPSFP default, which keeps
    /// `fold`/`cse`/`dce` inert by construction).
    pub forceable: Option<Vec<NetId>>,
}

impl Default for OptConfig {
    fn default() -> Self {
        OptConfig {
            fold: true,
            cse: true,
            dce: true,
            renumber: true,
            forceable: None,
        }
    }
}

impl OptConfig {
    /// The default pipeline with an explicit forceable-net set, enabling
    /// the aggressive passes outside that set.
    #[must_use]
    pub fn with_forceable(nets: Vec<NetId>) -> Self {
        OptConfig {
            forceable: Some(nets),
            ..OptConfig::default()
        }
    }
}

/// What the pipeline did to one program (carried in
/// [`SimProgram::opt`], round-tripped by the wire format, and surfaced
/// by [`SimProgram::stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct OptStats {
    /// Whether the pipeline ran at all (`false` under `STEAC_OPT=0`).
    pub enabled: bool,
    /// Instructions simplified by constant folding.
    pub folded: u32,
    /// Instructions whose consumers were rewired to an identical earlier
    /// instruction.
    pub cse_merged: u32,
    /// Dead instructions removed.
    pub dce_removed: u32,
    /// Net slots parked at the cold tail (dead nets).
    pub slots_reclaimed: u32,
    /// Instruction count before the pipeline.
    pub instrs_before: u32,
    /// Instruction count after the pipeline.
    pub instrs_after: u32,
    /// The stream is verified topologically ordered, licensing the
    /// engine's single-sweep settle fast path.
    pub scheduled: bool,
}

/// Runs the configured passes over `p` in place and records the
/// resulting [`OptStats`] (plus the slot permutation) on the program.
pub fn optimize(p: &mut SimProgram, cfg: &OptConfig) {
    let mut stats = OptStats {
        enabled: true,
        instrs_before: p.comb.len() as u32,
        ..OptStats::default()
    };
    let forceable = forceable_flags(p, cfg);
    if cfg.fold {
        fold_constants(p, &forceable, &mut stats);
    }
    if cfg.cse {
        merge_common_subexprs(p, &forceable, &mut stats);
    }
    // Which nets had a combinational driver *before* DCE, so renumbering
    // can tell dead comb nets (cold tail) from never-driven nets (ports,
    // sequential outputs).
    let comb_written: Vec<bool> = {
        let mut w = vec![false; p.net_count];
        for i in &p.comb {
            w[i.out as usize] = true;
        }
        w
    };
    if cfg.dce {
        eliminate_dead(p, &forceable, &mut stats);
    }
    if cfg.renumber {
        renumber_slots(p, &comb_written, &mut stats);
    }
    stats.scheduled = stream_is_scheduled(p);
    stats.instrs_after = p.comb.len() as u32;
    p.opt = stats;
    p.rebuild_derived();
}

/// Per-net forceable flags; `None` in the config means every net.
fn forceable_flags(p: &SimProgram, cfg: &OptConfig) -> Vec<bool> {
    match &cfg.forceable {
        None => vec![true; p.net_count],
        Some(nets) => {
            let mut f = vec![false; p.net_count];
            for n in nets {
                if n.index() < p.net_count {
                    f[n.index()] = true;
                }
            }
            f
        }
    }
}

/// One reduction step on `i` given the known constants. Returns the
/// simplified instruction, or `None` when nothing applies. Every rule is
/// a per-lane identity of the packed 4-value algebra (`X`/`Z` included),
/// so rewritten programs stay bit-exact; rules that drop a *constant*
/// input edge are only reachable when that constant's net is outside the
/// forceable set (the `consts` table never records forceable nets).
fn reduce(i: &Instr, consts: &[Option<Logic>]) -> Option<Instr> {
    use SimOp::*;
    let c = |slot: u32| consts[slot as usize];
    let tie = |v: Logic, out: u32| {
        let op = match v {
            Logic::Zero => Tie0,
            Logic::One => Tie1,
            _ => Unknown,
        };
        Instr {
            op,
            ins: [NO_SLOT; 4],
            out,
        }
    };
    let unary = |op: SimOp, a: u32, out: u32| Instr {
        op,
        ins: [a, NO_SLOT, NO_SLOT, NO_SLOT],
        out,
    };
    // Shrinks an n-ary AND/NAND/OR/NOR by one input once a neutral
    // constant is found at `drop`.
    let shrink = |op: SimOp, i: &Instr, drop: usize| {
        let mut ins = [NO_SLOT; 4];
        let mut n = 0;
        for (k, &s) in i.ins.iter().enumerate().take(i.op.arity()) {
            if k != drop {
                ins[n] = s;
                n += 1;
            }
        }
        Instr {
            op,
            ins,
            out: i.out,
        }
    };
    // First constant input (if any) for the n-ary gates.
    let const_in = |i: &Instr| (0..i.op.arity()).find_map(|k| c(i.ins[k]).map(|v| (k, v)));
    match i.op {
        Inv => match c(i.ins[0])? {
            Logic::Zero => Some(tie(Logic::One, i.out)),
            Logic::One => Some(tie(Logic::Zero, i.out)),
            _ => Some(tie(Logic::X, i.out)),
        },
        Buf => match c(i.ins[0])? {
            Logic::Zero => Some(tie(Logic::Zero, i.out)),
            Logic::One => Some(tie(Logic::One, i.out)),
            _ => Some(tie(Logic::X, i.out)),
        },
        And2 | And3 => {
            let (k, v) = const_in(i)?;
            match v {
                // 0 dominates for every other lane value.
                Logic::Zero => Some(tie(Logic::Zero, i.out)),
                Logic::One if i.op == And2 => Some(unary(Buf, i.ins[1 - k], i.out)),
                Logic::One => Some(shrink(And2, i, k)),
                _ => None,
            }
        }
        Nand2 | Nand3 | Nand4 => {
            let (k, v) = const_in(i)?;
            match v {
                Logic::Zero => Some(tie(Logic::One, i.out)),
                Logic::One if i.op == Nand2 => Some(unary(Inv, i.ins[1 - k], i.out)),
                Logic::One if i.op == Nand3 => Some(shrink(Nand2, i, k)),
                Logic::One => Some(shrink(Nand3, i, k)),
                _ => None,
            }
        }
        Or2 | Or3 => {
            let (k, v) = const_in(i)?;
            match v {
                Logic::One => Some(tie(Logic::One, i.out)),
                Logic::Zero if i.op == Or2 => Some(unary(Buf, i.ins[1 - k], i.out)),
                Logic::Zero => Some(shrink(Or2, i, k)),
                _ => None,
            }
        }
        Nor2 | Nor3 => {
            let (k, v) = const_in(i)?;
            match v {
                Logic::One => Some(tie(Logic::Zero, i.out)),
                Logic::Zero if i.op == Nor2 => Some(unary(Inv, i.ins[1 - k], i.out)),
                Logic::Zero => Some(shrink(Nor2, i, k)),
                _ => None,
            }
        }
        Xor2 | Xnor2 => {
            let (k, v) = const_in(i)?;
            let other = i.ins[1 - k];
            let inverting = (i.op == Xor2) == (v == Logic::One);
            match v {
                // Any X input makes XOR/XNOR X on that lane — and a
                // constant X input makes it X on *every* lane.
                Logic::X | Logic::Z => Some(tie(Logic::X, i.out)),
                _ if inverting => Some(unary(Inv, other, i.out)),
                _ => Some(unary(Buf, other, i.out)),
            }
        }
        Mux2 => {
            let (a, b, s) = (i.ins[0], i.ins[1], i.ins[2]);
            match c(s) {
                Some(Logic::Zero) => Some(unary(Buf, a, i.out)),
                Some(Logic::One) => Some(unary(Buf, b, i.out)),
                // Unknown select: mux(v, v, s) = buf(v) for every s
                // (agreement rule), so equal constant arms still fold.
                _ => match (c(a), c(b)) {
                    (Some(va), Some(vb)) if va == vb => Some(tie(va, i.out)),
                    _ => None,
                },
            }
        }
        Tie0 | Tie1 | Unknown => None,
    }
}

/// Pass 1: constant folding. Walks the (topological) stream once,
/// reducing each instruction to fixpoint against the constants known so
/// far; constants are only *recorded* for non-forceable output nets, so
/// a potential fault site is never folded away.
fn fold_constants(p: &mut SimProgram, forceable: &[bool], stats: &mut OptStats) {
    let mut consts: Vec<Option<Logic>> = vec![None; p.slot_count];
    for i in &mut p.comb {
        let mut changed = false;
        while let Some(next) = reduce(i, &consts) {
            *i = next;
            changed = true;
        }
        if changed {
            stats.folded += 1;
        }
        if !forceable[i.out as usize] {
            consts[i.out as usize] = match i.op {
                SimOp::Tie0 => Some(Logic::Zero),
                SimOp::Tie1 => Some(Logic::One),
                SimOp::Unknown => Some(Logic::X),
                _ => None,
            };
        }
    }
}

/// Pass 2: hash-consing / CSE. Consumers of a structurally identical
/// later instruction are rewired to the first occurrence; the duplicate
/// instruction itself stays (its net may be a port) and is removed by
/// DCE if nothing reads it any more. Only non-forceable outputs merge —
/// rewiring changes which net's run-time forces a consumer sees.
fn merge_common_subexprs(p: &mut SimProgram, forceable: &[bool], stats: &mut OptStats) {
    use std::collections::HashMap;
    let net_count = p.net_count;
    // replace[slot] is the canonical slot consumers should read.
    let mut replace: Vec<u32> = (0..p.slot_count as u32).collect();
    let mut seen: HashMap<(SimOp, [u32; 4]), u32> = HashMap::new();
    for i in &mut p.comb {
        for k in 0..i.op.arity() {
            i.ins[k] = replace[i.ins[k] as usize];
        }
        let key = (i.op, i.ins);
        match seen.get(&key) {
            Some(&first) if !forceable[i.out as usize] && !forceable[first as usize] => {
                replace[i.out as usize] = first;
                stats.cse_merged += 1;
            }
            Some(_) => {}
            None => {
                seen.insert(key, i.out);
            }
        }
    }
    // Sequential side tables read nets too.
    let fix = |s: &mut u32| {
        if *s != NO_SLOT && (*s as usize) < net_count {
            *s = replace[*s as usize];
        }
    };
    for f in &mut p.flops {
        fix(&mut f.d);
        fix(&mut f.si);
        fix(&mut f.se);
        fix(&mut f.ck);
        fix(&mut f.rstn);
    }
    for l in &mut p.latches {
        fix(&mut l.d);
        fix(&mut l.en);
    }
}

/// Pass 3: dead-instruction elimination. Roots are output ports, every
/// sequential side-table read, and every forceable net (fault sites and
/// force targets stay computed); one reverse walk over the topological
/// stream then drops instructions nobody observes. Slots survive — only
/// the computation goes.
fn eliminate_dead(p: &mut SimProgram, forceable: &[bool], stats: &mut OptStats) {
    let mut live = vec![false; p.slot_count];
    for (n, &f) in forceable.iter().enumerate() {
        if f {
            live[n] = true;
        }
    }
    for port in &p.ports {
        live[port.net.index()] = true;
    }
    for n in &p.output_nets {
        live[n.index()] = true;
    }
    let mut root = |s: u32| {
        if s != NO_SLOT {
            live[s as usize] = true;
        }
    };
    for f in &p.flops {
        root(f.d);
        root(f.si);
        root(f.se);
        root(f.ck);
        root(f.rstn);
    }
    for l in &p.latches {
        root(l.d);
        root(l.en);
    }
    for i in p.comb.iter().rev() {
        if live[i.out as usize] {
            for k in 0..i.op.arity() {
                live[i.ins[k] as usize] = true;
            }
        }
    }
    let before = p.comb.len();
    p.comb.retain(|i| live[i.out as usize]);
    stats.dce_removed = (before - p.comb.len()) as u32;
}

/// Pass 4: level-aware slot renumbering. Composes the permutation into
/// [`SimProgram::net_slot`] and rewrites every slot reference `<
/// net_count`; state slots (`>= net_count`) never move.
fn renumber_slots(p: &mut SimProgram, comb_written: &[bool], stats: &mut OptStats) {
    let net_count = p.net_count;
    let mut perm = vec![NO_SLOT; net_count];
    let mut next = 0u32;
    // Hot head: nets the stream only reads (ports, flop/latch outputs).
    for (n, item) in perm.iter_mut().enumerate() {
        if !comb_written[n] {
            *item = next;
            next += 1;
        }
    }
    // Then combinational outputs in stream order, so instruction `i`
    // writes a monotonically increasing slot — sequential stores.
    for i in &p.comb {
        if perm[i.out as usize] == NO_SLOT {
            perm[i.out as usize] = next;
            next += 1;
        }
    }
    // Cold tail: nets whose producers DCE removed.
    for item in perm.iter_mut() {
        if *item == NO_SLOT {
            *item = next;
            next += 1;
            stats.slots_reclaimed += 1;
        }
    }
    debug_assert_eq!(next as usize, net_count);
    let fix = |s: &mut u32| {
        if *s != NO_SLOT && (*s as usize) < net_count {
            *s = perm[*s as usize];
        }
    };
    for i in &mut p.comb {
        for k in 0..i.op.arity() {
            fix(&mut i.ins[k]);
        }
        fix(&mut i.out);
    }
    for f in &mut p.flops {
        fix(&mut f.d);
        fix(&mut f.si);
        fix(&mut f.se);
        fix(&mut f.ck);
        fix(&mut f.rstn);
        fix(&mut f.q);
    }
    for l in &mut p.latches {
        fix(&mut l.d);
        fix(&mut l.en);
        fix(&mut l.q);
    }
    for (n, slot) in p.net_slot.iter_mut().enumerate() {
        *slot = perm[n];
    }
}

/// Final pass: proves the stream is topologically ordered (every input
/// either has no combinational driver or was written earlier), which is
/// what licenses the engine's single-sweep settle.
#[must_use]
pub(crate) fn stream_is_scheduled(p: &SimProgram) -> bool {
    let mut comb_writes = vec![false; p.slot_count];
    for i in &p.comb {
        comb_writes[i.out as usize] = true;
    }
    let mut written = vec![false; p.slot_count];
    for i in &p.comb {
        for k in 0..i.op.arity() {
            let s = i.ins[k] as usize;
            if comb_writes[s] && !written[s] {
                return false;
            }
        }
        written[i.out as usize] = true;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Simulator;
    use crate::logic::Logic;
    use std::sync::Arc;
    use steac_netlist::{GateKind, NetlistBuilder};

    /// Ties feeding a cone of foldable gates, with the ties *outside*
    /// the forceable set so folding fires.
    fn foldable_module() -> (steac_netlist::Module, Vec<NetId>) {
        let mut b = NetlistBuilder::new("fold");
        let a = b.input("a");
        let one = b.gate(GateKind::Tie1, &[]);
        let zero = b.gate(GateKind::Tie0, &[]);
        let x1 = b.gate(GateKind::And2, &[a, one]); // -> Buf(a)
        let x2 = b.gate(GateKind::Or2, &[x1, zero]); // -> Buf(x1)
        let x3 = b.gate(GateKind::Xor2, &[x2, one]); // -> Inv(x2)
        let x4 = b.gate(GateKind::And3, &[x3, one, a]); // -> And2(x3, a)
        let dead = b.gate(GateKind::Nand2, &[a, one]); // unobserved
        let _ = dead;
        b.output("y", x4);
        let m = b.finish().unwrap();
        let ports = vec![m.port("a").unwrap().net, m.port("y").unwrap().net];
        (m, ports)
    }

    #[test]
    fn folding_cse_dce_fire_with_restricted_forceable_set() {
        let (m, ports) = foldable_module();
        let p = SimProgram::compile_with(&m, &OptConfig::with_forceable(ports)).unwrap();
        assert!(p.opt.enabled && p.opt.scheduled);
        assert!(p.opt.folded >= 3, "stats: {:?}", p.opt);
        assert!(p.opt.dce_removed >= 1, "stats: {:?}", p.opt);
        assert!(p.opt.slots_reclaimed >= 1, "stats: {:?}", p.opt);
        assert!(p.opt.instrs_after < p.opt.instrs_before);
    }

    #[test]
    fn default_pipeline_keeps_every_net_forceable_and_only_renumbers() {
        let (m, _) = foldable_module();
        // compile_with, not compile: the assertion must hold at any
        // STEAC_OPT setting (CI runs the suite with the escape hatch on).
        let p = SimProgram::compile_with(&m, &OptConfig::default()).unwrap();
        // All nets forceable: fold/CSE/DCE must stay inert.
        assert_eq!(p.opt.folded, 0);
        assert_eq!(p.opt.cse_merged, 0);
        assert_eq!(p.opt.dce_removed, 0);
        assert_eq!(p.opt.instrs_before, p.opt.instrs_after);
        assert!(p.opt.scheduled);
        // Renumbering still happened and is a permutation.
        let mut seen = vec![false; p.net_count];
        for &s in &p.net_slot {
            assert!(!seen[s as usize]);
            seen[s as usize] = true;
        }
    }

    #[test]
    fn optimized_program_is_value_exact_against_unoptimized() {
        let (m, ports) = foldable_module();
        let unopt = Arc::new(SimProgram::compile_unoptimized(&m).unwrap());
        let opt =
            Arc::new(SimProgram::compile_with(&m, &OptConfig::with_forceable(ports)).unwrap());
        for v in [Logic::Zero, Logic::One, Logic::X, Logic::Z] {
            let mut s0: Simulator = Simulator::from_program(Arc::clone(&unopt));
            let mut s1: Simulator = Simulator::from_program(Arc::clone(&opt));
            for s in [&mut s0, &mut s1] {
                s.set_by_name("a", v).unwrap();
                s.settle().unwrap();
            }
            assert_eq!(s0.outputs(), s1.outputs(), "input {v}");
        }
    }

    #[test]
    fn cse_merges_identical_gates_outside_forceable_set() {
        let mut b = NetlistBuilder::new("cse");
        let a = b.input("a");
        let c = b.input("c");
        let d1 = b.gate(GateKind::Nand2, &[a, c]);
        let d2 = b.gate(GateKind::Nand2, &[a, c]);
        let y = b.gate(GateKind::Xor2, &[d1, d2]);
        b.output("y", y);
        let m = b.finish().unwrap();
        let ports: Vec<NetId> = m.ports.iter().map(|p| p.net).collect();
        let p = SimProgram::compile_with(&m, &OptConfig::with_forceable(ports)).unwrap();
        assert_eq!(p.opt.cse_merged, 1, "stats: {:?}", p.opt);
        // The duplicate's computation is dead once consumers are rewired.
        assert_eq!(p.opt.dce_removed, 1, "stats: {:?}", p.opt);
    }

    #[test]
    fn unoptimized_compile_is_identity_permutation_and_unscheduled() {
        let (m, _) = foldable_module();
        let p = SimProgram::compile_unoptimized(&m).unwrap();
        assert!(!p.opt.enabled && !p.opt.scheduled);
        assert!(p.net_slot.iter().enumerate().all(|(n, &s)| n as u32 == s));
    }
}
