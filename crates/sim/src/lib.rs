//! Bit-parallel four-value gate-level simulation for the STEAC platform.
//!
//! The paper applies cycle-based test patterns from an external ATE to the
//! fabricated DSC chip. In this reproduction the [`Simulator`] plays the
//! role of the silicon + ATE: it evaluates flattened
//! [`steac_netlist::Module`]s under 0/1/X/Z logic, detects clock edges
//! (including gated and divided clocks), applies scan shift/capture
//! sequences, and grades pattern sets against a registry of fault
//! models — stuck-at, transition/delay, and bridging (see [`models`]).
//!
//! # Compile once, optimize once, execute everywhere
//!
//! Simulation is a staged pipeline rather than a netlist interpreter:
//!
//! 1. **Compile** ([`program`]): the flat module is levelized once into a
//!    [`program::SimProgram`] — a contiguous instruction stream (opcode +
//!    input/output slot offsets) over a single flat value buffer, with
//!    flip-flops and latches lowered to side tables whose state lives in
//!    the same buffer, plus the port-name lookup tables. The program is
//!    self-contained: executors never touch the [`steac_netlist::Module`]
//!    again.
//! 2. **Optimize** ([`opt`]): a compile-time pass pipeline rewrites the
//!    instruction stream before any executor sees it — constant folding
//!    from tie cells, hash-consing CSE, dead-code elimination (fault
//!    sites and force targets declared live via [`opt::OptConfig`]), and
//!    level-aware slot renumbering for locality. Each pass records its
//!    deltas in [`opt::OptStats`] (surfaced by
//!    [`program::SimProgram::stats`] and carried on the wire), and the
//!    pipeline may only change speed, never a verdict: optimized and
//!    unoptimized programs produce byte-identical reports on every
//!    backend (proven by `tests/exec_matrix.rs` and the proptests).
//!    [`program::SimProgram::compile`] runs the pipeline by default;
//!    `STEAC_OPT=0` is the escape hatch, and
//!    [`program::SimProgram::compile_with`] /
//!    [`program::SimProgram::compile_unoptimized`] pin the choice in
//!    code.
//! 3. **Execute** ([`engine`]): a [`Simulator`] is an owned, `Send`
//!    executor over a shared `Arc<SimProgram>`
//!    ([`Simulator::from_program`]; [`Simulator::new`] is the
//!    compile-and-wrap convenience). Each pass runs the instruction
//!    stream over [`packed::PackedLogic`] words — a two-plane packed
//!    representation generic over its lane-group width `N`, carrying
//!    **`64 * N` independent simulation lanes** (`[u64; N]` per plane)
//!    whose word-parallel AND/OR/XOR/NOT/MUX are lane-exact against the
//!    scalar [`Logic`] algebra. The scalar API is the `N = 1` default;
//!    workload entry points dispatch at
//!    [`packed::DEFAULT_LANE_GROUPS`] (256 lanes) with monomorphized
//!    kernels for every width in [`SUPPORTED_LANE_GROUPS`], and reports
//!    are byte-identical at every width.
//! 4. **Dispatch** ([`exec`]): independent packed passes (fault-grading
//!    chunks, width-sized playback chunks, March walks) are *work units*
//!    behind one execution-backend value, [`Exec`]:
//!    `Exec::serial()` runs them inline, `Exec::threads(..)` fans them
//!    across a `std::thread::scope` pool ([`shard`]), and
//!    `Exec::processes(..)` serializes them ([`wire`]) to `steac-worker`
//!    processes ([`shard::ProcessPool`]). Every workload entry point
//!    takes `&Exec` and routes through [`Exec::dispatch`], so the
//!    merge-by-unit-index determinism contract — unit-order results,
//!    lowest-indexed-unit errors, **bit-identical reports on every
//!    backend** — lives in exactly one place, proven bit-for-bit by
//!    `tests/exec_matrix.rs`. Workloads whose units are *produced*
//!    rather than materialized (the streaming generate→play pipeline)
//!    describe themselves as an [`exec::StreamWork`] instead and route
//!    through [`Exec::dispatch_stream`]: units are pulled from an
//!    iterator — typically a bounded channel fed by a generator
//!    thread — played through the same backends in bounded windows,
//!    and sunk strictly in unit order, so peak memory follows pipeline
//!    depth (not stream length) while reports stay byte-identical to
//!    the materialized flow. [`Exec::from_env`] resolves the
//!    deployment knobs (`STEAC_EXEC`, then `STEAC_WORKERS`, then
//!    `STEAC_THREADS`; `STEAC_OPT` gates stage 2 independently), and
//!    [`exec::Fallback`] makes the process-failure policy explicit
//!    (recompute in-thread and record it, or fail on the
//!    lowest-indexed unit).
//! 5. **Distribute across machines** ([`remote`]): the wire format and
//!    the worker protocol are transport-agnostic — one serialized
//!    request in, one serialized response out — so
//!    `Exec::remote(RemoteFleet)` ships the *same* bytes over a
//!    pluggable [`remote::Transport`]. [`remote::TcpTransport`] keeps
//!    **one persistent, pipelined session** per `steac-worker --serve
//!    <addr>` host: the address is resolved once per session, requests
//!    are framed by a versioned envelope (v2) carrying a request id,
//!    several ride in flight under a bounded window, and responses are
//!    matched back by id. The worker keeps a content-addressed
//!    **program cache** (FNV-1a 64 over the job bytes), so the fleet
//!    ships the serialized program once per host and references it by
//!    hash after that — a worker that restarted answers "need program"
//!    and the bytes are re-shipped transparently. Streaming dispatch
//!    leans on the same ledger: the concurrent sub-runs of one job
//!    that [`Exec::dispatch_stream`] ships are serialized through a
//!    per-host prime gate, so the program still crosses the wire
//!    exactly once per host no matter how many batches race. A status
//!    request
//!    (`steac-worker --status`, [`remote::query_status`]) surfaces the
//!    cache and traffic counters. [`remote::SpawnTransport`] runs the
//!    same protocol over spawned local processes (zero network — the
//!    in-repo test rig; one-shot workers, so the job always ships
//!    inline). [`remote::RemoteFleet`] adds work-stealing across hosts
//!    and streams (units handed out from one atomic counter, idle
//!    streams steal from the global tail) and a retry/requeue policy
//!    for lost workers, while [`Exec::dispatch`] still owns the
//!    merge-by-unit-index contract — so reports stay byte-identical to
//!    Serial even under injected host loss or cache loss, proven by
//!    `tests/remote_chaos.rs`. No workload crate changed to gain this
//!    backend; that was the point of the seam. `Exec::from_env` reaches
//!    it via `STEAC_EXEC=remote:host:port,…` or `STEAC_HOSTS`.
//!
//! The scalar API below is a lane-0/broadcast view of that kernel, so
//! single-pattern callers are unchanged. Batch callers fill all lanes
//! with distinct patterns ([`Simulator::run_vectors`],
//! [`Simulator::set_lanes`]) or run PPSFP fault simulation — lane 0 good
//! machine, the remaining `64 * N - 1` lanes faulty machines via
//! per-lane forces.
//!
//! # The fault-model registry
//!
//! PPSFP grading is not a single workload but a *family*: every fault
//! model in [`models`] describes itself as an [`exec::ExecWork`] and so
//! inherits stages 1–5 above wholesale — the optimizer, the wide lane
//! groups, all five backends, and the byte-identical-reports contract.
//! Stuck-at grading ([`fault::fault_coverage`] /
//! [`fault::grade_vectors`], work-unit kind 1) is simply the founding
//! member; [`models::transition`] (kind 4) grades slow-to-rise/fall
//! faults with launch–capture vector pairs, [`models::bridging`]
//! (kind 5) grades AND/OR shorts between topologically adjacent nets,
//! and inter-cell memory coupling rides `steac-membist`'s March walks
//! (kind 3). The gate-level models can emit a **fault dictionary**
//! (per-fault detecting-pattern/output signatures,
//! [`models::dictionary`]), and [`models::dictionary::diagnose`]
//! (kind 6) consumes a dictionary plus an observed failure signature to
//! rank candidate fault sites — localization dispatched through the
//! same `Exec` seam as grading. Flows that grade "with the configured
//! model" select it via `STEAC_MODEL`
//! ([`models::ModelKind::from_env`]).
//!
//! # Example
//!
//! ```
//! use steac_netlist::{NetlistBuilder, GateKind};
//! use steac_sim::{Logic, Simulator};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = NetlistBuilder::new("toggler");
//! let ck = b.input("ck");
//! let rstn = b.input("rstn");
//! let q = b.net("q");
//! let d = b.gate(GateKind::Inv, &[q]);
//! b.gate_into(GateKind::DffR, &[d, ck, rstn], q);
//! b.output("q", q);
//! let m = b.finish()?;
//!
//! let mut sim: Simulator = Simulator::new(&m)?;
//! sim.set_by_name("rstn", Logic::Zero)?;
//! sim.settle()?;
//! sim.set_by_name("rstn", Logic::One)?;
//! sim.clock_cycle_by_name("ck")?;
//! assert_eq!(sim.get_by_name("q")?, Logic::One);
//! # Ok(())
//! # }
//! ```

pub mod engine;
pub mod exec;
pub mod fault;
pub mod logic;
pub mod models;
pub mod opt;
pub mod packed;
pub mod program;
pub mod remote;
pub mod scan;
pub mod shard;
pub mod wire;

pub use engine::Simulator;
pub use exec::{
    Backend, Dispatch, Exec, ExecWork, Fallback, SpecError, StreamDispatch, StreamWork,
    STREAM_BATCH_UNITS,
};
pub use fault::{
    enumerate_faults, fault_coverage, faults_per_pass, grade_vectors, grade_vectors_wide,
    CoverageReport, Fault, StuckAt, FAULTS_PER_PASS, SUPPORTED_LANE_GROUPS,
};
pub use logic::Logic;
pub use models::bridging::{
    enumerate_bridges, grade_bridges, grade_bridges_wide, BridgeKind, BridgingFault, BridgingReport,
};
pub use models::dictionary::{diagnose, Diagnosis, DictEntry, FaultDictionary};
pub use models::transition::{
    enumerate_transition_faults, grade_transitions, grade_transitions_wide, SlowEdge,
    TransitionFault, TransitionReport,
};
pub use models::ModelKind;
pub use opt::{OptConfig, OptStats};
pub use packed::{PackedLogic, DEFAULT_LANE_GROUPS, LANES};
pub use program::{ProgramStats, SimProgram};
pub use remote::{
    query_status, FleetStatsSnapshot, RemoteFleet, ServeHandle, SpawnTransport, TcpTransport,
    Transport, TransportError, DEFAULT_TCP_STREAMS, DEFAULT_TCP_WINDOW,
};
pub use scan::ScanPorts;
pub use shard::{JobRegistry, ProcessPool, Threads, WorkerState, WorkerStatus};
pub use wire::WireError;

use std::fmt;

/// Errors produced by simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// A referenced pin/net name does not exist in the module.
    UnknownName {
        /// The missing name.
        name: String,
    },
    /// The value of an output net never stabilised (oscillation).
    Unstable {
        /// Iteration budget that was exhausted.
        iterations: usize,
    },
    /// The underlying netlist is malformed.
    Netlist(steac_netlist::NetlistError),
    /// A vector string had the wrong length for the pin set.
    VectorLength {
        /// Expected number of pin characters.
        expected: usize,
        /// Supplied number.
        got: usize,
    },
    /// A process-pool work unit failed (the worker reported an error,
    /// died, or returned malformed results). Deterministic: always the
    /// lowest-indexed failing unit.
    Worker {
        /// Lowest-indexed failing unit.
        unit: usize,
        /// Worker- or dispatcher-provided diagnostic.
        diagnostic: String,
    },
    /// A lane-group width with no monomorphized kernel was requested
    /// (see [`fault::SUPPORTED_LANE_GROUPS`]).
    UnsupportedWidth {
        /// The requested lane-group count.
        groups: usize,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::UnknownName { name } => write!(f, "unknown pin or net `{name}`"),
            SimError::Unstable { iterations } => {
                write!(f, "netlist did not stabilise after {iterations} iterations")
            }
            SimError::Netlist(e) => write!(f, "netlist error: {e}"),
            SimError::VectorLength { expected, got } => {
                write!(f, "vector has {got} characters, pin list has {expected}")
            }
            SimError::Worker { unit, diagnostic } => {
                write!(f, "work unit {unit} failed in worker process: {diagnostic}")
            }
            SimError::UnsupportedWidth { groups } => {
                write!(f, "no simulation kernel for {groups} lane groups")
            }
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::Netlist(e) => Some(e),
            _ => None,
        }
    }
}

impl From<steac_netlist::NetlistError> for SimError {
    fn from(e: steac_netlist::NetlistError) -> Self {
        SimError::Netlist(e)
    }
}

impl From<shard::PoolError> for SimError {
    /// The one process-pool-failure mapping every workload shares:
    /// unit failures keep their index, spawn failures are pinned to
    /// unit 0 (nothing ran).
    fn from(e: shard::PoolError) -> Self {
        match e {
            shard::PoolError::Spawn { diagnostic } => SimError::Worker {
                unit: 0,
                diagnostic: format!("cannot spawn worker: {diagnostic}"),
            },
            shard::PoolError::Unit { unit, diagnostic } => SimError::Worker { unit, diagnostic },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sim_error_display() {
        let e = SimError::UnknownName {
            name: "ck".to_string(),
        };
        assert!(e.to_string().contains("ck"));
    }

    #[test]
    fn netlist_error_is_source() {
        use std::error::Error as _;
        let e = SimError::Netlist(steac_netlist::NetlistError::DuplicateName {
            name: "x".to_string(),
        });
        assert!(e.source().is_some());
    }
}
