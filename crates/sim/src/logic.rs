//! Four-valued logic algebra (IEEE 1164-style subset: 0, 1, X, Z).

use std::fmt;

/// A four-valued logic level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Logic {
    /// Strong low.
    Zero,
    /// Strong high.
    One,
    /// Unknown.
    #[default]
    X,
    /// High impedance (undriven).
    Z,
}

impl Logic {
    /// Logical NOT; `X`/`Z` map to `X`.
    // Named after the gate, like `and`/`or`/`xor`; `ops::Not` would imply
    // an involution, which the X/Z folding is not.
    #[allow(clippy::should_implement_trait)]
    #[must_use]
    pub fn not(self) -> Logic {
        match self {
            Logic::Zero => Logic::One,
            Logic::One => Logic::Zero,
            _ => Logic::X,
        }
    }

    /// Logical AND with X-pessimism (`0 AND anything = 0`).
    #[must_use]
    pub fn and(self, other: Logic) -> Logic {
        match (self, other) {
            (Logic::Zero, _) | (_, Logic::Zero) => Logic::Zero,
            (Logic::One, Logic::One) => Logic::One,
            _ => Logic::X,
        }
    }

    /// Logical OR with X-pessimism (`1 OR anything = 1`).
    #[must_use]
    pub fn or(self, other: Logic) -> Logic {
        match (self, other) {
            (Logic::One, _) | (_, Logic::One) => Logic::One,
            (Logic::Zero, Logic::Zero) => Logic::Zero,
            _ => Logic::X,
        }
    }

    /// Logical XOR; any `X`/`Z` input yields `X`.
    #[must_use]
    pub fn xor(self, other: Logic) -> Logic {
        match (self, other) {
            (Logic::Zero, Logic::Zero) | (Logic::One, Logic::One) => Logic::Zero,
            (Logic::Zero, Logic::One) | (Logic::One, Logic::Zero) => Logic::One,
            _ => Logic::X,
        }
    }

    /// 2-to-1 multiplexer: returns `a` when `sel = 0`, `b` when `sel = 1`.
    /// With an unknown select, returns the common value of `a` and `b` if
    /// they agree, `X` otherwise (standard X-optimistic mux).
    #[must_use]
    pub fn mux(a: Logic, b: Logic, sel: Logic) -> Logic {
        match sel {
            Logic::Zero => a,
            Logic::One => b,
            _ => {
                if a == b && a != Logic::Z {
                    a
                } else {
                    Logic::X
                }
            }
        }
    }

    /// `true` for `0` and `1`.
    #[must_use]
    pub fn is_known(self) -> bool {
        matches!(self, Logic::Zero | Logic::One)
    }

    /// Converts a known value to `bool`.
    #[must_use]
    pub fn to_bool(self) -> Option<bool> {
        match self {
            Logic::Zero => Some(false),
            Logic::One => Some(true),
            _ => None,
        }
    }

    /// Pattern-character representation: `0`, `1`, `X`, `Z`.
    #[must_use]
    pub fn to_char(self) -> char {
        match self {
            Logic::Zero => '0',
            Logic::One => '1',
            Logic::X => 'X',
            Logic::Z => 'Z',
        }
    }

    /// Parses a pattern character (case-insensitive; `N` — "don't care" in
    /// some ATE formats — maps to `X`).
    #[must_use]
    pub fn from_char(c: char) -> Option<Logic> {
        match c.to_ascii_uppercase() {
            '0' | 'L' => Some(Logic::Zero),
            '1' | 'H' => Some(Logic::One),
            'X' | 'N' => Some(Logic::X),
            'Z' => Some(Logic::Z),
            _ => None,
        }
    }

    /// Does an observed value `self` match an expected value? `X`/`Z`
    /// expectations match anything (masked compare, as on an ATE).
    #[must_use]
    pub fn matches_expected(self, expected: Logic) -> bool {
        !expected.is_known() || self == expected
    }
}

impl From<bool> for Logic {
    fn from(b: bool) -> Self {
        if b {
            Logic::One
        } else {
            Logic::Zero
        }
    }
}

impl fmt::Display for Logic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_char())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL: [Logic; 4] = [Logic::Zero, Logic::One, Logic::X, Logic::Z];

    #[test]
    fn not_truth_table() {
        assert_eq!(Logic::Zero.not(), Logic::One);
        assert_eq!(Logic::One.not(), Logic::Zero);
        assert_eq!(Logic::X.not(), Logic::X);
        assert_eq!(Logic::Z.not(), Logic::X);
    }

    #[test]
    fn and_controlling_value() {
        for v in ALL {
            assert_eq!(Logic::Zero.and(v), Logic::Zero);
            assert_eq!(v.and(Logic::Zero), Logic::Zero);
        }
        assert_eq!(Logic::One.and(Logic::X), Logic::X);
    }

    #[test]
    fn or_controlling_value() {
        for v in ALL {
            assert_eq!(Logic::One.or(v), Logic::One);
            assert_eq!(v.or(Logic::One), Logic::One);
        }
        assert_eq!(Logic::Zero.or(Logic::Z), Logic::X);
    }

    #[test]
    fn xor_any_unknown_is_x() {
        assert_eq!(Logic::One.xor(Logic::X), Logic::X);
        assert_eq!(Logic::One.xor(Logic::Zero), Logic::One);
        assert_eq!(Logic::One.xor(Logic::One), Logic::Zero);
    }

    #[test]
    fn mux_select_known() {
        assert_eq!(
            Logic::mux(Logic::Zero, Logic::One, Logic::Zero),
            Logic::Zero
        );
        assert_eq!(Logic::mux(Logic::Zero, Logic::One, Logic::One), Logic::One);
    }

    #[test]
    fn mux_select_unknown_optimism() {
        assert_eq!(Logic::mux(Logic::One, Logic::One, Logic::X), Logic::One);
        assert_eq!(Logic::mux(Logic::Zero, Logic::One, Logic::X), Logic::X);
    }

    #[test]
    fn char_round_trip() {
        for v in [Logic::Zero, Logic::One, Logic::X, Logic::Z] {
            assert_eq!(Logic::from_char(v.to_char()), Some(v));
        }
        assert_eq!(Logic::from_char('n'), Some(Logic::X));
        assert_eq!(Logic::from_char('?'), None);
    }

    #[test]
    fn masked_compare() {
        assert!(Logic::Zero.matches_expected(Logic::X));
        assert!(Logic::One.matches_expected(Logic::One));
        assert!(!Logic::One.matches_expected(Logic::Zero));
    }

    #[test]
    fn and_or_are_commutative() {
        for a in ALL {
            for b in ALL {
                assert_eq!(a.and(b), b.and(a));
                assert_eq!(a.or(b), b.or(a));
                assert_eq!(a.xor(b), b.xor(a));
            }
        }
    }
}
