//! Machine-level fan-out: the transport layer and host fleet behind
//! [`crate::exec::Backend::Remote`].
//!
//! The wire format ([`crate::wire`]) and the worker protocol
//! ([`crate::shard`]) are transport-agnostic: one serialized request in,
//! one serialized response out. This module makes "where the bytes go"
//! pluggable:
//!
//! * [`Transport`] is that one-request/one-response contract. A
//!   transport failure is a typed [`TransportError`] — never a panic —
//!   and is *retryable* by construction: the fleet may replay the same
//!   request on the same or another host.
//! * [`TcpTransport`] keeps **one long-lived session** per host: the
//!   target address is resolved once per session, the connection is
//!   established lazily and reconnected lazily after a loss, and
//!   multiple requests are **pipelined** in flight on the one socket
//!   under a bounded window ([`TcpTransport::with_window`]) — a
//!   dedicated reader thread routes responses back to callers by the
//!   envelope's request id, so responses may return in any order.
//! * [`SpawnTransport`] runs each request through a freshly spawned
//!   local `steac-worker` process over stdin/stdout — the
//!   [`crate::shard::ProcessPool`] piping wrapped as a transport — so
//!   the whole Remote dispatch arm is testable in-repo with zero
//!   network.
//! * [`RemoteFleet`] fans work units across N transports with
//!   work-stealing and a retry/requeue policy for lost hosts, keeping
//!   the merge-by-unit-index determinism contract of
//!   [`crate::shard::ProcessPool`]: unit `i`'s result (or the
//!   lowest-indexed unit's error) is identical no matter which host ran
//!   it, how execution interleaved, or which responses had to be
//!   retried. On transports that keep a persistent worker alive
//!   ([`Transport::caches_programs`]) the fleet references the job by
//!   its content hash after the first successful inline ship, so the
//!   serialized program crosses the wire **once per host per run**
//!   instead of once per request — a worker that lost its cache
//!   (restart, eviction) answers "need program" and the fleet
//!   transparently re-ships inline. [`RemoteFleet::stats`] counts
//!   exactly what was shipped.
//!
//! # Envelope (version 2)
//!
//! Stdin/stdout framing is the process lifetime (EOF ends the request,
//! exit ends the response), but a persistent TCP session needs explicit
//! framing — and pipelining needs each frame to say which request it
//! answers. Every payload on a stream transport travels inside the
//! envelope:
//!
//! ```text
//! magic      b"STEV"   (4 bytes)
//! version    u16       (currently 2; reject-on-mismatch, no negotiation)
//! request id u64       (echoed verbatim in the response's envelope)
//! length     u64       (payload byte count, little-endian)
//! payload    [u8; length]
//! ```
//!
//! Version 2 added the request id (version 1 frames are rejected with a
//! typed [`WireError::UnsupportedVersion`], loudly — a mixed-version
//! fleet upgrades in lock step). [`decode_envelope`] is strict —
//! truncated, corrupt or trailing bytes are typed [`WireError`]s,
//! property-tested in `tests/proptests.rs` alongside the program codec
//! sweeps. [`read_envelope`] is the streaming half used on live
//! sockets; a damaged length there surfaces as a short or over-long
//! read, which the worker-response parser rejects — either way a
//! corrupt frame is a typed error on the dispatcher side, never a
//! panic.
//!
//! # Program cache and status
//!
//! The payloads themselves are worker-protocol frames
//! ([`crate::shard`], version 3): run requests reference the job by
//! FNV-1a content hash and ship its bytes only when the worker's LRU
//! ([`crate::shard::WorkerState`]) might not hold them; a status
//! request ([`query_status`], `steac-worker --status <addr>`) returns
//! the worker's uptime and cache/traffic counters
//! ([`crate::shard::WorkerStatus`]) for fleet observability.
//! [`serve_tcp`] keeps one `WorkerState` per listener, shared by every
//! connection, and serves each request on its own thread so pipelined
//! requests complete out of order.
//!
//! # Failure model
//!
//! The fleet distinguishes two kinds of trouble:
//!
//! * **Transport-level loss** (connect refused, dead session, truncated
//!   or corrupt envelope, a response missing some of its units): the
//!   affected units are re-enqueued and stolen by other hosts, up to
//!   [`RemoteFleet::with_max_retries`] extra attempts per unit. A host
//!   that fails `max_retries + 1` calls in a row is declared lost and
//!   stops taking work. Only when a unit's retries are exhausted — or
//!   no live host remains — does the run fail, as
//!   [`PoolError::Unit`] on the **lowest-indexed** unresolved unit.
//! * **Workload-level unit errors** (the worker ran the unit and
//!   reported a typed failure, e.g. corrupt unit bytes or a program
//!   hash mismatch): deterministic, so they are *not* retried; they
//!   fail the run exactly as they do on the process backend.
//!
//! A "need program" reply is neither: it is part of the normal cache
//! protocol, answered by re-sending the same units with the job inline
//! (counted in [`FleetStats`], invisible to callers).
//!
//! What a failed run *means* is then the [`crate::exec::Fallback`]
//! policy's decision, made once in [`crate::exec::Exec::dispatch`]:
//! recompute on the in-thread pool (logged and counted) or surface the
//! workload's typed error. `tests/remote_chaos.rs` drives every one of
//! these paths with injected failures — including a worker restarted
//! mid-run (cache wiped) and a corrupted inline program.

use crate::shard::{self, PoolError, Reply, WireJob, WorkerState, WorkerStatus};
use crate::wire::{fnv1a64, WireError, WireReader, WireWriter};
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::process::{Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::time::Duration;

/// Magic bytes opening every stream-transport envelope.
pub const ENVELOPE_MAGIC: [u8; 4] = *b"STEV";

/// Envelope version; bumped on any change to the envelope layout, with
/// the same reject-on-mismatch discipline as [`crate::wire::WIRE_VERSION`].
/// Version 2 added the request id that pipelined sessions match
/// responses by.
pub const ENVELOPE_VERSION: u16 = 2;

/// Byte length of the fixed envelope header (magic + version +
/// request id + length).
pub const ENVELOPE_HEADER_LEN: usize = 22;

/// Frames a payload for a stream transport under `request_id` (see the
/// module docs for the layout). Responses echo the request's id.
/// Encoding cannot fail.
#[must_use]
pub fn encode_envelope(request_id: u64, payload: &[u8]) -> Vec<u8> {
    let mut w = WireWriter::new();
    w.reserve(ENVELOPE_HEADER_LEN + payload.len());
    w.put_bytes(&ENVELOPE_MAGIC);
    w.put_u16(ENVELOPE_VERSION);
    w.put_u64(request_id);
    w.put_block(payload);
    w.finish()
}

/// Strictly decodes one envelope from a complete buffer: the payload
/// must fill the buffer exactly. Returns `(request_id, payload)`.
///
/// # Errors
///
/// A typed [`WireError`] for truncated bytes, a bad magic, an
/// unsupported version, a length that disagrees with the buffer, or
/// trailing bytes. Never panics, never over-allocates (the length is
/// checked against the bytes actually present).
pub fn decode_envelope(bytes: &[u8]) -> Result<(u64, Vec<u8>), WireError> {
    let mut r = WireReader::new(bytes);
    r.expect_magic(&ENVELOPE_MAGIC, "envelope magic")?;
    r.expect_version(ENVELOPE_VERSION, "envelope version")?;
    let request_id = r.get_u64("envelope request id")?;
    let payload = r.get_block("envelope payload")?.to_vec();
    r.finish()?;
    Ok((request_id, payload))
}

/// Reads one envelope from a live stream: the header is read exactly,
/// then `length` payload bytes. Returns `(request_id, payload)`. The
/// allocation grows only as bytes actually arrive, so a hostile length
/// cannot balloon memory.
///
/// # Errors
///
/// [`TransportError::Envelope`] for framing damage (truncation, bad
/// magic, version mismatch), [`TransportError::Io`] for read failures.
pub fn read_envelope<R: Read>(input: &mut R) -> Result<(u64, Vec<u8>), TransportError> {
    let mut header = [0u8; ENVELOPE_HEADER_LEN];
    input.read_exact(&mut header).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            TransportError::Envelope {
                diagnostic: "truncated envelope header".to_string(),
            }
        } else {
            TransportError::Io {
                diagnostic: format!("reading envelope header: {e}"),
            }
        }
    })?;
    let mut r = WireReader::new(&header);
    let (request_id, len) = r
        .expect_magic(&ENVELOPE_MAGIC, "envelope magic")
        .and_then(|()| r.expect_version(ENVELOPE_VERSION, "envelope version"))
        .and_then(|()| r.get_u64("envelope request id"))
        .and_then(|id| r.get_usize("envelope length").map(|len| (id, len)))
        .map_err(|e| TransportError::Envelope {
            diagnostic: e.to_string(),
        })?;
    let mut payload = Vec::new();
    input
        .take(len as u64)
        .read_to_end(&mut payload)
        .map_err(|e| TransportError::Io {
            diagnostic: format!("reading envelope payload: {e}"),
        })?;
    if payload.len() != len {
        return Err(TransportError::Envelope {
            diagnostic: format!(
                "truncated envelope payload: got {} of {len} bytes",
                payload.len()
            ),
        });
    }
    Ok((request_id, payload))
}

/// Failure of a single [`Transport::call`]. Every variant is retryable
/// at the fleet level: the same request can be replayed on the same or
/// another host without changing any result (work units are pure
/// functions of their bytes).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TransportError {
    /// The host could not be reached at all (connect refused, worker
    /// binary missing). Nothing ran.
    Unreachable {
        /// The endpoint that was tried.
        endpoint: String,
        /// What failed.
        diagnostic: String,
    },
    /// The exchange died mid-flight (send/receive error, worker process
    /// exited abnormally). The request may or may not have executed.
    Io {
        /// What failed.
        diagnostic: String,
    },
    /// The response arrived but its framing was damaged (truncated or
    /// corrupt envelope, bad magic, version mismatch).
    Envelope {
        /// What failed.
        diagnostic: String,
    },
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransportError::Unreachable {
                endpoint,
                diagnostic,
            } => write!(f, "host {endpoint} unreachable: {diagnostic}"),
            TransportError::Io { diagnostic } => write!(f, "transport I/O failed: {diagnostic}"),
            TransportError::Envelope { diagnostic } => {
                write!(f, "corrupt response envelope: {diagnostic}")
            }
        }
    }
}

impl std::error::Error for TransportError {}

/// One request in, one response out — the entire contract between the
/// dispatcher and a remote `steac-worker`, with the request/response
/// bytes exactly as the stdin/stdout protocol defines them
/// ([`crate::shard`]). Implementations own connection management and
/// framing; they must be callable concurrently from fleet threads.
pub trait Transport: Send + Sync {
    /// Ships one request and returns the raw response bytes.
    ///
    /// # Errors
    ///
    /// A typed, retryable [`TransportError`]; implementations never
    /// panic on wire damage.
    fn call(&self, request: &[u8]) -> Result<Vec<u8>, TransportError>;

    /// Human-readable endpoint, used in diagnostics and
    /// `Exec` display (`remote:endpoint,endpoint`).
    fn endpoint(&self) -> String;

    /// Whether requests reach a *persistent* worker whose program cache
    /// outlives a single call. When `true` the fleet references the job
    /// by content hash after its first successful inline ship; when
    /// `false` (the default — one-shot workers like [`SpawnTransport`])
    /// every request carries the job inline.
    fn caches_programs(&self) -> bool {
        false
    }

    /// How many fleet threads should drive this transport concurrently
    /// — the request-pipelining width. The default of 1 preserves the
    /// classic one-request-at-a-time behaviour; [`TcpTransport`]
    /// returns its configured stream count.
    fn streams(&self) -> usize {
        1
    }
}

/// Default pipelining width of a [`TcpTransport`]: fleet threads
/// driving one session concurrently.
pub const DEFAULT_TCP_STREAMS: usize = 2;

/// Default bounded in-flight window of a [`TcpTransport`] session:
/// requests written but not yet answered. A caller needing a slot past
/// the window blocks until one frees — backpressure, not an unbounded
/// queue.
pub const DEFAULT_TCP_WINDOW: usize = 4;

/// The channel a caller waits on for its routed response.
type ResponseSender = mpsc::Sender<Result<Vec<u8>, TransportError>>;

/// One live pipelined session: a connected socket, the response router
/// state, and the in-flight window. Requests are written under
/// `write_lock` (frames must not interleave); a dedicated reader thread
/// ([`Session::reader_loop`]) routes each response envelope to the
/// caller registered under its request id. Any read or write failure
/// marks the whole session dead and fails every outstanding caller —
/// the owning [`TcpTransport`] then reconnects lazily on the next call.
struct Session {
    stream: TcpStream,
    write_lock: Mutex<()>,
    pending: Mutex<HashMap<u64, ResponseSender>>,
    inflight: Mutex<usize>,
    slot_freed: Condvar,
    dead: AtomicBool,
}

impl Session {
    fn new(stream: TcpStream) -> Self {
        Session {
            stream,
            write_lock: Mutex::new(()),
            pending: Mutex::new(HashMap::new()),
            inflight: Mutex::new(0),
            slot_freed: Condvar::new(),
            dead: AtomicBool::new(false),
        }
    }

    /// Marks the session dead, fails every outstanding caller with a
    /// clone of `error` (keeping its type — an envelope error stays an
    /// envelope error), and wakes anyone blocked on the window.
    fn die(&self, error: &TransportError) {
        self.dead.store(true, Ordering::SeqCst);
        let _ = self.stream.shutdown(std::net::Shutdown::Both);
        let drained: Vec<_> = self
            .pending
            .lock()
            .expect("no panics hold the lock")
            .drain()
            .collect();
        for (_, tx) in drained {
            let _ = tx.send(Err(error.clone()));
        }
        self.slot_freed.notify_all();
    }

    /// The reader half: drains response envelopes off the socket and
    /// routes them by request id until the session dies. A response to
    /// an id nobody is waiting on (a caller that already timed out) is
    /// dropped — late duplicates can never corrupt a later exchange.
    fn reader_loop(self: &Arc<Self>) {
        let mut stream = &self.stream;
        loop {
            match read_envelope(&mut stream) {
                Ok((id, payload)) => {
                    let tx = self
                        .pending
                        .lock()
                        .expect("no panics hold the lock")
                        .remove(&id);
                    if let Some(tx) = tx {
                        let _ = tx.send(Ok(payload));
                    }
                }
                Err(e) => {
                    self.die(&e);
                    return;
                }
            }
        }
    }
}

/// Releases one in-flight window slot on every exit path.
struct SlotGuard<'a>(&'a Session);

impl Drop for SlotGuard<'_> {
    fn drop(&mut self) {
        let mut inflight = self.0.inflight.lock().expect("no panics hold the lock");
        *inflight = inflight.saturating_sub(1);
        self.0.slot_freed.notify_one();
    }
}

/// Ships requests to a `steac-worker --serve <addr>` listening loop
/// over **one persistent TCP session**: the address is resolved once
/// per session, the connection is established lazily (and
/// re-established lazily after a loss — every failure stays a typed
/// [`TransportError`]), and up to [`TcpTransport::with_window`]
/// requests are pipelined in flight at a time, matched to their
/// responses by the envelope request id.
pub struct TcpTransport {
    addr: String,
    timeout: Option<Duration>,
    streams: usize,
    window: usize,
    /// Socket addresses resolved for the current session; dropped when
    /// every one of them fails to connect, so a DNS change can heal a
    /// moved host.
    resolved: Mutex<Option<Vec<SocketAddr>>>,
    /// How many times the address was actually resolved (unit-tested:
    /// a session resolves once, not once per request).
    resolutions: AtomicUsize,
    session: Mutex<Option<Arc<Session>>>,
    next_id: AtomicU64,
}

impl fmt::Debug for TcpTransport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TcpTransport")
            .field("addr", &self.addr)
            .field("timeout", &self.timeout)
            .field("streams", &self.streams)
            .field("window", &self.window)
            .finish_non_exhaustive()
    }
}

impl Clone for TcpTransport {
    /// Clones the configuration; the clone starts with a fresh (lazy)
    /// session of its own.
    fn clone(&self) -> Self {
        TcpTransport {
            addr: self.addr.clone(),
            timeout: self.timeout,
            streams: self.streams,
            window: self.window,
            resolved: Mutex::new(None),
            resolutions: AtomicUsize::new(0),
            session: Mutex::new(None),
            next_id: AtomicU64::new(0),
        }
    }
}

impl Drop for TcpTransport {
    fn drop(&mut self) {
        // Kill the live session so its reader thread exits promptly
        // instead of waiting out a read timeout.
        if let Ok(slot) = self.session.lock() {
            if let Some(session) = slot.as_ref() {
                session.die(&TransportError::Io {
                    diagnostic: "transport dropped".to_string(),
                });
            }
        }
    }
}

impl TcpTransport {
    /// A transport to `addr` (`host:port`), with the default 120 s
    /// connect/read/write timeout so a hung or blackholed host surfaces
    /// as a typed error instead of blocking a fleet thread forever, and
    /// the default pipelining width ([`DEFAULT_TCP_STREAMS`]) and
    /// in-flight window ([`DEFAULT_TCP_WINDOW`]).
    #[must_use]
    pub fn new(addr: impl Into<String>) -> Self {
        TcpTransport {
            addr: addr.into(),
            timeout: Some(Duration::from_secs(120)),
            streams: DEFAULT_TCP_STREAMS,
            window: DEFAULT_TCP_WINDOW,
            resolved: Mutex::new(None),
            resolutions: AtomicUsize::new(0),
            session: Mutex::new(None),
            next_id: AtomicU64::new(0),
        }
    }

    /// Overrides the connect/read/write timeout (`None` disables it).
    #[must_use]
    pub fn with_timeout(mut self, timeout: Option<Duration>) -> Self {
        self.timeout = timeout;
        self
    }

    /// Sets how many fleet threads drive this transport concurrently
    /// (clamped to ≥ 1; default [`DEFAULT_TCP_STREAMS`]).
    #[must_use]
    pub fn with_streams(mut self, streams: usize) -> Self {
        self.streams = streams.max(1);
        self
    }

    /// Sets the bounded in-flight window per session (clamped to ≥ 1;
    /// default [`DEFAULT_TCP_WINDOW`]). Callers past the window block
    /// until a response frees a slot.
    #[must_use]
    pub fn with_window(mut self, window: usize) -> Self {
        self.window = window.max(1);
        self
    }

    /// How many times the target address has been resolved so far —
    /// one per session, not one per request.
    #[must_use]
    pub fn resolutions(&self) -> usize {
        self.resolutions.load(Ordering::Relaxed)
    }

    fn unreachable(&self, diagnostic: String) -> TransportError {
        TransportError::Unreachable {
            endpoint: self.addr.clone(),
            diagnostic,
        }
    }

    /// The session's resolved addresses, resolving (and caching) on
    /// first use.
    fn resolve(&self) -> Result<Vec<SocketAddr>, TransportError> {
        let mut cached = self.resolved.lock().expect("no panics hold the lock");
        if let Some(addrs) = cached.as_ref() {
            return Ok(addrs.clone());
        }
        self.resolutions.fetch_add(1, Ordering::Relaxed);
        let addrs: Vec<SocketAddr> = self
            .addr
            .to_socket_addrs()
            .map_err(|e| self.unreachable(e.to_string()))?
            .collect();
        if addrs.is_empty() {
            return Err(self.unreachable("address resolved to nothing".to_string()));
        }
        *cached = Some(addrs.clone());
        Ok(addrs)
    }

    /// Connects within the configured timeout (a plain blocking connect
    /// when the timeout is disabled) — a blackholed host must surface
    /// as a typed error on our schedule, not the kernel's.
    fn connect(&self) -> Result<TcpStream, TransportError> {
        let addrs = self.resolve()?;
        let mut last = None;
        for addr in &addrs {
            let attempt = match self.timeout {
                Some(timeout) => TcpStream::connect_timeout(addr, timeout),
                None => TcpStream::connect(addr),
            };
            match attempt {
                Ok(stream) => return Ok(stream),
                Err(e) => last = Some(e.to_string()),
            }
        }
        // Every resolved address refused: forget them so the next
        // attempt re-resolves (the host may have moved).
        *self.resolved.lock().expect("no panics hold the lock") = None;
        Err(self.unreachable(last.unwrap_or_else(|| "no address to try".to_string())))
    }

    /// The current live session, lazily (re)connecting when there is
    /// none or the last one died. Concurrent callers share one
    /// reconnect instead of racing their own.
    fn ensure_session(&self) -> Result<Arc<Session>, TransportError> {
        let mut slot = self.session.lock().expect("no panics hold the lock");
        if let Some(session) = slot.as_ref() {
            if !session.dead.load(Ordering::SeqCst) {
                return Ok(Arc::clone(session));
            }
        }
        let stream = self.connect()?;
        let _ = stream.set_nodelay(true);
        let _ = stream.set_read_timeout(self.timeout);
        let _ = stream.set_write_timeout(self.timeout);
        let session = Arc::new(Session::new(stream));
        let reader = Arc::clone(&session);
        std::thread::spawn(move || reader.reader_loop());
        *slot = Some(Arc::clone(&session));
        Ok(session)
    }

    /// One attempt on one session. `Err((error, retryable))`:
    /// `retryable` is `true` only when the request was never delivered
    /// (dead session found before the write completed), so the caller
    /// may transparently try a fresh session without risking duplicate
    /// execution semantics at this layer.
    fn call_on(
        &self,
        session: &Arc<Session>,
        request: &[u8],
    ) -> Result<Vec<u8>, (TransportError, bool)> {
        // Acquire an in-flight window slot (backpressure).
        {
            let mut inflight = session.inflight.lock().expect("no panics hold the lock");
            loop {
                if session.dead.load(Ordering::SeqCst) {
                    return Err((
                        TransportError::Io {
                            diagnostic: "session died before the request was sent".to_string(),
                        },
                        true,
                    ));
                }
                if *inflight < self.window {
                    *inflight += 1;
                    break;
                }
                inflight = session
                    .slot_freed
                    .wait(inflight)
                    .expect("no panics hold the lock");
            }
        }
        let _slot = SlotGuard(session);
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let (tx, rx) = mpsc::channel();
        session
            .pending
            .lock()
            .expect("no panics hold the lock")
            .insert(id, tx);
        let framed = encode_envelope(id, request);
        let written = {
            let _write = session.write_lock.lock().expect("no panics hold the lock");
            (&session.stream)
                .write_all(&framed)
                .and_then(|()| (&session.stream).flush())
        };
        if let Err(e) = written {
            let never_sent = session
                .pending
                .lock()
                .expect("no panics hold the lock")
                .remove(&id)
                .is_some();
            let error = TransportError::Io {
                diagnostic: format!("sending request to {}: {e}", self.addr),
            };
            session.die(&error);
            return Err((error, never_sent));
        }
        let response = match self.timeout {
            Some(timeout) => rx.recv_timeout(timeout).map_err(|e| match e {
                mpsc::RecvTimeoutError::Timeout => {
                    // Give up on this exchange and the whole session: a
                    // stalled socket must not absorb further requests.
                    let _ = session
                        .pending
                        .lock()
                        .expect("no panics hold the lock")
                        .remove(&id);
                    let error = TransportError::Io {
                        diagnostic: format!("response from {} timed out", self.addr),
                    };
                    session.die(&error);
                    error
                }
                mpsc::RecvTimeoutError::Disconnected => TransportError::Io {
                    diagnostic: format!("session to {} closed", self.addr),
                },
            }),
            None => rx.recv().map_err(|_| TransportError::Io {
                diagnostic: format!("session to {} closed", self.addr),
            }),
        };
        match response {
            Ok(Ok(payload)) => Ok(payload),
            Ok(Err(e)) | Err(e) => Err((e, false)),
        }
    }
}

impl Transport for TcpTransport {
    fn call(&self, request: &[u8]) -> Result<Vec<u8>, TransportError> {
        // A session that died while idle (server restart, idle timeout)
        // is only discovered on first use: retry once, transparently,
        // when the request provably never left this machine.
        let mut last = None;
        for _ in 0..2 {
            let session = self.ensure_session()?;
            match self.call_on(&session, request) {
                Ok(response) => return Ok(response),
                Err((e, retryable)) => {
                    last = Some(e);
                    if !retryable {
                        break;
                    }
                }
            }
        }
        Err(last.expect("loop ran at least once"))
    }

    fn endpoint(&self) -> String {
        self.addr.clone()
    }

    fn caches_programs(&self) -> bool {
        true
    }

    fn streams(&self) -> usize {
        self.streams
    }
}

/// Runs each request through a freshly spawned local `steac-worker`
/// process over stdin/stdout — the [`crate::shard::ProcessPool`] piping
/// as a transport. No envelope: stdio framing is the process lifetime
/// (EOF ends the request, exit ends the response). This makes the whole
/// Remote dispatch arm — fleet, stealing, retries — testable with zero
/// network.
#[derive(Debug, Clone)]
pub struct SpawnTransport {
    binary: PathBuf,
}

impl SpawnTransport {
    /// A transport spawning the given worker binary per call.
    #[must_use]
    pub fn new(binary: PathBuf) -> Self {
        SpawnTransport { binary }
    }

    /// A transport over the default worker binary (see
    /// [`crate::shard::default_worker_binary`]); `None` when no binary
    /// can be found.
    #[must_use]
    pub fn discover() -> Option<Self> {
        shard::default_worker_binary().map(SpawnTransport::new)
    }
}

impl Transport for SpawnTransport {
    fn call(&self, request: &[u8]) -> Result<Vec<u8>, TransportError> {
        let mut child = Command::new(&self.binary)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()
            .map_err(|e| TransportError::Unreachable {
                endpoint: self.binary.display().to_string(),
                diagnostic: e.to_string(),
            })?;
        // The worker reads its whole request before writing anything, so
        // a plain write-then-wait sequence cannot deadlock. A write
        // failure (worker died early) is diagnosed from the exit status
        // below, which carries stderr.
        let write_failed = {
            let stdin = child.stdin.take().expect("stdin was piped");
            let mut stdin = stdin;
            stdin.write_all(request).is_err()
        };
        let output = child.wait_with_output().map_err(|e| TransportError::Io {
            diagnostic: format!("waiting for spawned worker: {e}"),
        })?;
        if !output.status.success() {
            let stderr = String::from_utf8_lossy(&output.stderr);
            return Err(TransportError::Io {
                diagnostic: format!(
                    "spawned worker exited abnormally ({}): {}",
                    output.status,
                    stderr.trim()
                ),
            });
        }
        if write_failed {
            return Err(TransportError::Io {
                diagnostic: "spawned worker closed stdin early".to_string(),
            });
        }
        Ok(output.stdout)
    }

    fn endpoint(&self) -> String {
        "spawn".to_string()
    }
}

/// How many chunks each work stream's share of the units is split into
/// when the fleet auto-sizes requests: small enough that idle streams
/// keep finding work to steal, large enough that the per-request header
/// amortizes over many units.
const CHUNKS_PER_STREAM: usize = 8;

/// Default extra attempts a unit gets after a transport-level loss.
pub const DEFAULT_MAX_RETRIES: usize = 2;

/// Hashes a host is remembered to hold; bounded like the worker-side
/// cache so the two cannot drift unboundedly.
const KNOWN_HASHES_PER_HOST: usize = 8;

/// One fleet host: its transport plus the program hashes its worker is
/// believed to have cached (confirmed by a successful inline ship).
/// The belief is allowed to be stale — a worker that restarted or
/// evicted answers "need program" and the fleet re-ships — so this is
/// an optimization ledger, never a correctness input.
///
/// The slot also owns the **prime gate** for each program: the first
/// caller to ship a given hash inline claims it here, and every other
/// stream — of the same run *or a concurrent one* (streaming dispatch
/// issues many small sub-runs of one job against the same fleet) —
/// waits, then proceeds by-hash. Keying the gate by hash on the slot,
/// rather than per run, is what keeps "the program crosses the wire
/// once per host" true when sub-runs overlap.
struct HostSlot {
    transport: Box<dyn Transport>,
    known: Mutex<Vec<u64>>,
    /// Hashes whose first inline ship is currently in flight.
    priming: Mutex<Vec<u64>>,
    primed: Condvar,
}

impl HostSlot {
    fn new(transport: Box<dyn Transport>) -> Self {
        HostSlot {
            transport,
            known: Mutex::new(Vec::new()),
            priming: Mutex::new(Vec::new()),
            primed: Condvar::new(),
        }
    }

    fn knows(&self, hash: u64) -> bool {
        self.known
            .lock()
            .expect("no panics hold the lock")
            .contains(&hash)
    }

    fn mark_known(&self, hash: u64) {
        let mut known = self.known.lock().expect("no panics hold the lock");
        if let Some(pos) = known.iter().position(|&h| h == hash) {
            known.remove(pos);
        }
        known.push(hash);
        if known.len() > KNOWN_HASHES_PER_HOST {
            known.remove(0);
        }
    }

    fn forget(&self, hash: u64) {
        self.known
            .lock()
            .expect("no panics hold the lock")
            .retain(|&h| h != hash);
    }

    /// Returns `true` when the caller must prime the host (ship the
    /// program inline); `false` once the host is believed to hold
    /// `hash`. Blocks while a peer's priming attempt for the same hash
    /// is in flight — if that attempt fails, the next waiter claims.
    fn claim_prime(&self, hash: u64) -> bool {
        let mut priming = self.priming.lock().expect("no panics hold the lock");
        loop {
            if self.knows(hash) {
                return false;
            }
            if !priming.contains(&hash) {
                priming.push(hash);
                return true;
            }
            priming = self.primed.wait(priming).expect("no panics hold the lock");
        }
    }

    /// Resolves a [`HostSlot::claim_prime`] claim: on success the hash
    /// enters the known ledger (waiters proceed by-hash), on failure
    /// the gate reopens for the next claimant.
    fn release_prime(&self, hash: u64, shipped: bool) {
        if shipped {
            self.mark_known(hash);
        }
        let mut priming = self.priming.lock().expect("no panics hold the lock");
        priming.retain(|&h| h != hash);
        self.primed.notify_all();
    }
}

/// Wire-traffic counters a fleet accumulates across its lifetime, split
/// so the program-cache win is measurable: `program_bytes` is what the
/// serialized job cost on the wire, `unit_bytes` what the work units
/// cost. With caching transports a multi-request run ships the program
/// once per host, so `programs_shipped` stays at the host count while
/// `requests` keeps growing.
#[derive(Debug, Default)]
pub struct FleetStats {
    requests: AtomicU64,
    program_bytes: AtomicU64,
    unit_bytes: AtomicU64,
    programs_shipped: AtomicU64,
    need_program_replies: AtomicU64,
}

impl FleetStats {
    fn count_request(&self, inline_job_bytes: Option<usize>, unit_bytes: usize) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        self.unit_bytes
            .fetch_add(unit_bytes as u64, Ordering::Relaxed);
        if let Some(job_bytes) = inline_job_bytes {
            self.program_bytes
                .fetch_add(job_bytes as u64, Ordering::Relaxed);
            self.programs_shipped.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// A point-in-time copy of the counters.
    #[must_use]
    pub fn snapshot(&self) -> FleetStatsSnapshot {
        FleetStatsSnapshot {
            requests: self.requests.load(Ordering::Relaxed),
            program_bytes: self.program_bytes.load(Ordering::Relaxed),
            unit_bytes: self.unit_bytes.load(Ordering::Relaxed),
            programs_shipped: self.programs_shipped.load(Ordering::Relaxed),
            need_program_replies: self.need_program_replies.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of a fleet's [`FleetStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FleetStatsSnapshot {
    /// Run requests sent (including cache re-ships and retries).
    pub requests: u64,
    /// Serialized-program bytes that crossed a transport.
    pub program_bytes: u64,
    /// Work-unit bytes that crossed a transport.
    pub unit_bytes: u64,
    /// Requests that carried the program inline.
    pub programs_shipped: u64,
    /// "Need program" round trips (worker cache cold or wiped).
    pub need_program_replies: u64,
}

/// A fleet of remote hosts behind [`crate::exec::Backend::Remote`]:
/// per-host work streams with work-stealing (units are handed out from
/// one atomic counter per run, so an idle host always steals from the
/// global tail) and a retry/requeue policy for lost workers.
///
/// The determinism contract is [`crate::shard::ProcessPool`]'s: results
/// merge **by unit index**, failures surface as the **lowest-indexed**
/// unresolved unit — so reports stay byte-identical to the serial
/// backend no matter how hosts raced, died or retried.
pub struct RemoteFleet {
    hosts: Vec<HostSlot>,
    max_retries: usize,
    chunk: usize,
    stats: FleetStats,
}

impl fmt::Debug for RemoteFleet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RemoteFleet")
            .field("hosts", &self.endpoints())
            .field("max_retries", &self.max_retries)
            .field("chunk", &self.chunk)
            .finish()
    }
}

impl RemoteFleet {
    /// A fleet over explicit transports, with the default retry budget
    /// ([`DEFAULT_MAX_RETRIES`]) and auto-sized request chunks.
    ///
    /// # Panics
    ///
    /// If `hosts` is empty — a fleet with nowhere to send work is a
    /// programming error, caught at construction.
    #[must_use]
    pub fn new(hosts: Vec<Box<dyn Transport>>) -> Self {
        assert!(!hosts.is_empty(), "remote fleet needs at least one host");
        RemoteFleet {
            hosts: hosts.into_iter().map(HostSlot::new).collect(),
            max_retries: DEFAULT_MAX_RETRIES,
            chunk: 0,
            stats: FleetStats::default(),
        }
    }

    /// A fleet of [`TcpTransport`]s, one per address; `None` when the
    /// iterator is empty.
    pub fn tcp<I>(addrs: I) -> Option<Self>
    where
        I: IntoIterator,
        I::Item: Into<String>,
    {
        let hosts: Vec<Box<dyn Transport>> = addrs
            .into_iter()
            .map(|a| Box::new(TcpTransport::new(a)) as Box<dyn Transport>)
            .collect();
        if hosts.is_empty() {
            None
        } else {
            Some(RemoteFleet::new(hosts))
        }
    }

    /// A fleet of `hosts` [`SpawnTransport`]s over the default worker
    /// binary — machine-level dispatch semantics with zero network.
    /// `None` when no worker binary can be found.
    #[must_use]
    pub fn spawn_local(hosts: usize) -> Option<Self> {
        let binary = shard::default_worker_binary()?;
        Some(RemoteFleet::new(
            (0..hosts.max(1))
                .map(|_| Box::new(SpawnTransport::new(binary.clone())) as Box<dyn Transport>)
                .collect(),
        ))
    }

    /// Sets how many extra attempts a unit gets after a transport-level
    /// loss before the run fails (builder style; default
    /// [`DEFAULT_MAX_RETRIES`]). A host is declared lost after
    /// `max_retries + 1` consecutive call failures.
    #[must_use]
    pub fn with_max_retries(mut self, max_retries: usize) -> Self {
        self.max_retries = max_retries;
        self
    }

    /// Pins the number of units per request (builder style; 0 — the
    /// default — auto-sizes to `units / (total streams × 8)`, clamped
    /// to ≥ 1, where a host contributes [`Transport::streams`] streams).
    #[must_use]
    pub fn with_chunk(mut self, chunk: usize) -> Self {
        self.chunk = chunk;
        self
    }

    /// Number of hosts in the fleet.
    #[must_use]
    pub fn hosts(&self) -> usize {
        self.hosts.len()
    }

    /// The configured retry budget per unit.
    #[must_use]
    pub fn max_retries(&self) -> usize {
        self.max_retries
    }

    /// The host endpoints, in fleet order.
    #[must_use]
    pub fn endpoints(&self) -> Vec<String> {
        self.hosts.iter().map(|h| h.transport.endpoint()).collect()
    }

    /// The wire-traffic counters accumulated across this fleet's runs.
    #[must_use]
    pub fn stats(&self) -> FleetStatsSnapshot {
        self.stats.snapshot()
    }

    /// Queries every host's worker status ([`query_status`]), in fleet
    /// order. Hosts that cannot answer report the failure as a string —
    /// observability must never take a fleet down.
    #[must_use]
    pub fn statuses(&self) -> Vec<(String, Result<WorkerStatus, String>)> {
        self.hosts
            .iter()
            .map(|h| (h.transport.endpoint(), query_status(h.transport.as_ref())))
            .collect()
    }

    /// Executes `units` under job `kind`/`job` across the fleet and
    /// returns the result payloads in unit order — the remote sibling of
    /// [`crate::shard::ProcessPool::run`], with the same signature and
    /// the same determinism contract.
    ///
    /// # Errors
    ///
    /// [`PoolError::Unit`] for the lowest-indexed unit that could not be
    /// resolved: a workload-level unit error (never retried), exhausted
    /// retries after transport-level losses, or no live host left.
    pub fn run(&self, kind: u16, job: &[u8], units: &[Vec<u8>]) -> Result<Vec<Vec<u8>>, PoolError> {
        if units.is_empty() {
            return Ok(Vec::new());
        }
        let total_streams: usize = self
            .hosts
            .iter()
            .map(|h| h.transport.streams().max(1))
            .sum();
        let chunk = if self.chunk > 0 {
            self.chunk
        } else {
            units
                .len()
                .div_ceil(total_streams * CHUNKS_PER_STREAM)
                .max(1)
        };
        let run = FleetRun {
            kind,
            job,
            job_hash: fnv1a64(job),
            units,
            chunk,
            max_retries: self.max_retries,
            stats: &self.stats,
            next: AtomicUsize::new(0),
            pending: AtomicUsize::new(units.len()),
            alive: (0..self.hosts.len())
                .map(|_| AtomicBool::new(true))
                .collect(),
            retries: Mutex::new(VecDeque::new()),
            slots: Mutex::new(vec![None; units.len()]),
            failures: Mutex::new(Vec::new()),
            lost_hosts: Mutex::new(Vec::new()),
        };
        std::thread::scope(|scope| {
            for (index, host) in self.hosts.iter().enumerate() {
                for _ in 0..host.transport.streams().max(1) {
                    let run = &run;
                    scope.spawn(move || run.stream_loop(index, host));
                }
            }
        });

        let slots = run.slots.into_inner().expect("no panics hold the lock");
        let mut failures = run.failures.into_inner().expect("no panics hold the lock");
        let lost = run
            .lost_hosts
            .into_inner()
            .expect("no panics hold the lock");
        for (unit, slot) in slots.iter().enumerate() {
            if slot.is_none() && !failures.iter().any(|f| f.0 == unit) {
                failures.push((
                    unit,
                    format!(
                        "no live remote host left to run this unit ({})",
                        lost.join("; ")
                    ),
                ));
            }
        }
        if let Some((unit, diagnostic)) = failures.into_iter().min_by_key(|f| f.0) {
            return Err(PoolError::Unit { unit, diagnostic });
        }
        Ok(slots
            .into_iter()
            .map(|s| s.expect("every unit resolved or failed"))
            .collect())
    }
}

/// One unit in flight or waiting to be retried.
struct Retry {
    unit: usize,
    /// Transport-level failures so far.
    attempts: usize,
    /// Hosts that have already failed this unit. Routing prefers hosts
    /// *not* in this set, so a fast-failing dead host cannot burn the
    /// unit's whole retry budget while a healthy host never sees it.
    failed: Vec<usize>,
}

impl Retry {
    fn fresh(unit: usize) -> Self {
        Retry {
            unit,
            attempts: 0,
            failed: Vec::new(),
        }
    }
}

/// Shared state of one fleet run; every host thread drives
/// [`FleetRun::host_loop`] against it.
struct FleetRun<'a> {
    kind: u16,
    job: &'a [u8],
    job_hash: u64,
    units: &'a [Vec<u8>],
    chunk: usize,
    max_retries: usize,
    stats: &'a FleetStats,
    /// Work-stealing cursor: hosts grab `chunk` fresh units at a time.
    next: AtomicUsize,
    /// Units not yet resolved (no result, no recorded failure).
    pending: AtomicUsize,
    /// One flag per host; cleared when the host is declared lost.
    alive: Vec<AtomicBool>,
    retries: Mutex<VecDeque<Retry>>,
    slots: Mutex<Vec<Option<Vec<u8>>>>,
    failures: Mutex<Vec<(usize, String)>>,
    lost_hosts: Mutex<Vec<String>>,
}

impl FleetRun<'_> {
    /// Whether every host still alive has already failed this unit —
    /// the point past which routing it to "someone else" is no longer
    /// possible and retrying anywhere (or giving up, once the budget is
    /// spent) is all that is left.
    fn covered(&self, failed: &[usize]) -> bool {
        self.alive
            .iter()
            .enumerate()
            .all(|(host, alive)| !alive.load(Ordering::Relaxed) || failed.contains(&host))
    }

    /// The next batch for host `me`: a re-enqueued unit first, else a
    /// fresh chunk off the stealing cursor. A host skips retry entries
    /// it has itself failed — unless every live host has already failed
    /// the entry, at which point anyone may take it (pure transience,
    /// e.g. a fleet where every host is flaky) — so retries route to
    /// hosts with a chance of succeeding. `None` when no work is
    /// currently available.
    fn next_batch(&self, me: usize) -> Option<Vec<Retry>> {
        {
            let mut queue = self.retries.lock().expect("no panics hold the lock");
            for _ in 0..queue.len() {
                let entry = queue.pop_front().expect("len checked");
                if entry.failed.contains(&me) && !self.covered(&entry.failed) {
                    queue.push_back(entry);
                } else {
                    return Some(vec![entry]);
                }
            }
        }
        let start = self.next.fetch_add(self.chunk, Ordering::Relaxed);
        if start >= self.units.len() {
            return None;
        }
        let end = (start + self.chunk).min(self.units.len());
        Some((start..end).map(Retry::fresh).collect())
    }

    /// Re-enqueues transport-lost units, or records their permanent
    /// failure once the retry budget is spent **and** every host still
    /// alive has had (at least) one shot at them — exhausting a unit
    /// while an untried healthy host exists would fail runs a live
    /// fleet could finish.
    fn requeue(&self, me: usize, lost: Vec<Retry>, diagnostic: &str) {
        let mut queue = self.retries.lock().expect("no panics hold the lock");
        let mut failures = self.failures.lock().expect("no panics hold the lock");
        for mut entry in lost {
            entry.attempts += 1;
            if !entry.failed.contains(&me) {
                entry.failed.push(me);
            }
            if entry.attempts > self.max_retries && self.covered(&entry.failed) {
                failures.push((
                    entry.unit,
                    format!(
                        "lost in transit {} times across {} host(s), retries exhausted: \
                         {diagnostic}",
                        entry.attempts,
                        entry.failed.len()
                    ),
                ));
                self.pending.fetch_sub(1, Ordering::Relaxed);
            } else {
                queue.push_back(entry);
            }
        }
    }

    /// Records one response against a batch and returns the entries the
    /// response did **not** resolve (transport-level loss candidates).
    /// Duplicate results — same unit delivered twice — are idempotent:
    /// the first write wins, so replays after a lost response can never
    /// change a merge.
    fn record(
        &self,
        batch: Vec<Retry>,
        response: Vec<(usize, Result<Vec<u8>, String>)>,
    ) -> Vec<Retry> {
        let mut slots = self.slots.lock().expect("no panics hold the lock");
        let mut failures = self.failures.lock().expect("no panics hold the lock");
        for (unit, result) in response {
            if !batch.iter().any(|e| e.unit == unit) {
                // A unit this batch never asked for (damaged or
                // duplicated frame): ignoring it keeps the merge exact.
                continue;
            }
            match result {
                Ok(bytes) => {
                    if slots[unit].is_none() {
                        slots[unit] = Some(bytes);
                        self.pending.fetch_sub(1, Ordering::Relaxed);
                    }
                }
                Err(diagnostic) => {
                    // Workload-level unit error: deterministic, final.
                    if slots[unit].is_none() && !failures.iter().any(|f| f.0 == unit) {
                        failures.push((unit, diagnostic));
                        self.pending.fetch_sub(1, Ordering::Relaxed);
                    }
                }
            }
        }
        batch
            .into_iter()
            .filter(|e| slots[e.unit].is_none() && !failures.iter().any(|f| f.0 == e.unit))
            .collect()
    }

    /// Total unit payload bytes a batch of `indices` puts on the wire.
    fn unit_payload_bytes(&self, indices: &[usize]) -> usize {
        indices.iter().map(|&i| self.units[i].len()).sum()
    }

    /// Ships one batch inline (program bytes included) and parses the
    /// reply. The worker has everything it needs, so a `NeedProgram`
    /// answer here is a protocol violation, not a cache miss.
    fn exchange_inline(
        &self,
        transport: &dyn Transport,
        indices: &[usize],
    ) -> Result<RunReply, String> {
        let request = shard::encode_request(
            self.kind,
            Some(self.job),
            self.job_hash,
            indices,
            self.units,
        );
        self.stats
            .count_request(Some(self.job.len()), self.unit_payload_bytes(indices));
        let response = transport.call(&request).map_err(|e| e.to_string())?;
        match shard::parse_reply(&response, self.units.len()) {
            Reply::Results(items, damage) => Ok((items, damage)),
            Reply::NeedProgram(_) => {
                Err("worker requested the program despite an inline ship".to_string())
            }
            Reply::Status(_) => {
                Err("worker answered a run request with a status reply".to_string())
            }
        }
    }

    /// Ships one batch to a caching host, deciding inline vs by-hash
    /// from the slot's ledger and per-hash prime gate (which serializes
    /// the first inline ship across every stream and every concurrent
    /// sub-run of this job). A `NeedProgram` reply (worker restarted,
    /// or its LRU evicted us) is healed transparently with one inline
    /// re-ship of the same batch.
    fn exchange_cached(&self, slot: &HostSlot, indices: &[usize]) -> Result<RunReply, String> {
        let transport = slot.transport.as_ref();
        if slot.claim_prime(self.job_hash) {
            let result = self.exchange_inline(transport, indices);
            slot.release_prime(self.job_hash, result.is_ok());
            return result;
        }
        let request = shard::encode_request(self.kind, None, self.job_hash, indices, self.units);
        self.stats
            .count_request(None, self.unit_payload_bytes(indices));
        let response = transport.call(&request).map_err(|e| e.to_string())?;
        match shard::parse_reply(&response, self.units.len()) {
            Reply::Results(items, damage) => Ok((items, damage)),
            Reply::NeedProgram(_) => {
                // The ledger was stale — the worker lost the program.
                // Re-ship inline once; the batch is identical, so the
                // merge cannot drift.
                self.stats
                    .need_program_replies
                    .fetch_add(1, Ordering::Relaxed);
                slot.forget(self.job_hash);
                let result = self.exchange_inline(transport, indices);
                if result.is_ok() {
                    slot.mark_known(self.job_hash);
                }
                result
            }
            Reply::Status(_) => {
                Err("worker answered a run request with a status reply".to_string())
            }
        }
    }

    /// One stream's work loop: steal a batch, ship it (by hash when the
    /// host caches programs and already holds this one), record the
    /// response; requeue what was lost. The stream stops when every
    /// unit is resolved, when a sibling stream declares the host lost,
    /// or after `max_retries + 1` consecutive call failures of its own
    /// (its in-flight units having been requeued for the survivors).
    fn stream_loop(&self, me: usize, slot: &HostSlot) {
        let transport = slot.transport.as_ref();
        let mut strikes = 0usize;
        while self.pending.load(Ordering::Relaxed) > 0 {
            if !self.alive[me].load(Ordering::Relaxed) {
                return;
            }
            let Some(batch) = self.next_batch(me) else {
                // Units are in flight on other hosts; wait for them to
                // resolve (or fail and requeue).
                std::thread::sleep(Duration::from_millis(1));
                continue;
            };
            let indices: Vec<usize> = batch.iter().map(|e| e.unit).collect();
            let reply = if transport.caches_programs() {
                self.exchange_cached(slot, &indices)
            } else {
                self.exchange_inline(transport, &indices)
            };
            let (lost, diagnostic) = match reply {
                Ok((items, damage)) => {
                    let lost = self.record(batch, items);
                    if lost.is_empty() {
                        strikes = 0;
                        continue;
                    }
                    let diagnostic = match damage {
                        Some(e) => format!("response damaged: {e}"),
                        None => "response missing unit results".to_string(),
                    };
                    (lost, diagnostic)
                }
                Err(e) => (batch, e),
            };
            strikes += 1;
            let dying = strikes > self.max_retries;
            // Declare the loss before requeueing the in-flight units,
            // so their routing immediately stops counting this host as
            // a viable destination. `swap` elects exactly one stream to
            // write the host's obituary.
            let first_to_declare = dying && self.alive[me].swap(false, Ordering::Relaxed);
            self.requeue(me, lost, &diagnostic);
            if dying {
                if first_to_declare {
                    let lost_line = format!(
                        "host {me} ({}) lost after {strikes} consecutive failures: {diagnostic}",
                        transport.endpoint()
                    );
                    eprintln!("steac remote: {lost_line}");
                    self.lost_hosts
                        .lock()
                        .expect("no panics hold the lock")
                        .push(lost_line);
                }
                return;
            }
        }
    }
}

/// Unit results plus the optional damage diagnostic from one shipped
/// batch — the payload of a successful run exchange.
type RunReply = (Vec<(usize, Result<Vec<u8>, String>)>, Option<String>);

/// Asks a worker for its status counters over `transport` (see
/// [`WorkerStatus`]). Used by `steac-worker --status` and the scaling
/// harness to surface cache behaviour after a run.
///
/// # Errors
///
/// A diagnostic when the transport fails or the worker answers with
/// anything but a status reply.
pub fn query_status(transport: &dyn Transport) -> Result<WorkerStatus, String> {
    let request = shard::encode_status_request();
    let response = transport.call(&request).map_err(|e| e.to_string())?;
    match shard::parse_reply(&response, 0) {
        Reply::Status(status) => Ok(status),
        Reply::Results(_, damage) => Err(match damage {
            Some(e) => format!("status reply damaged: {e}"),
            None => "worker answered a status request with run results".to_string(),
        }),
        Reply::NeedProgram(_) => {
            Err("worker answered a status request with a program request".to_string())
        }
    }
}

/// The TCP serving loop behind `steac-worker --serve <addr>`: accepts
/// connections forever and serves each on its own thread. Every
/// connection is a **session**: frames are read in a loop until the
/// client closes, each request runs on its own thread through the same
/// [`crate::shard::process_request_with`] core as the stdio worker
/// (with `open` routing the job kind — the worker binary passes its
/// [`crate::shard::JobRegistry`]), and responses are written back under
/// a per-connection write lock as they finish — possibly out of request
/// order, which is what the envelope's request id is for.
///
/// One [`WorkerState`] is shared by every connection the listener ever
/// accepts, so the program cache survives reconnects and its counters
/// describe the whole process lifetime — exactly what the status
/// request reports.
///
/// Connection-level trouble (damaged envelope, unreadable request, dead
/// peer) is logged to stderr and closes only that connection — a
/// misbehaving client can never take the server down, which
/// `tests/remote_chaos.rs` relies on.
///
/// # Errors
///
/// Only a broken listener (accept failure) ends the loop.
pub fn serve_tcp<F>(listener: TcpListener, open: F) -> Result<(), String>
where
    F: Fn(u16, &[u8]) -> Result<Box<dyn WireJob>, String> + Send + Sync + 'static,
{
    serve_tcp_with_state(listener, open, Arc::new(WorkerState::new()))
}

/// [`serve_tcp`] over an explicit [`WorkerState`] — the hook behind
/// `steac-worker --serve --cache-cap N` / `STEAC_CACHE_CAP`, which
/// builds the state with [`WorkerState::with_cache_capacity`] so an
/// interleaved streaming workload mix (grading + playback + March
/// against one fleet) stops thrashing the default 8-entry program
/// cache.
///
/// # Errors
///
/// Only a broken listener (accept failure) ends the loop.
pub fn serve_tcp_with_state<F>(
    listener: TcpListener,
    open: F,
    state: Arc<WorkerState>,
) -> Result<(), String>
where
    F: Fn(u16, &[u8]) -> Result<Box<dyn WireJob>, String> + Send + Sync + 'static,
{
    let open = Arc::new(open);
    loop {
        let (stream, peer) = listener
            .accept()
            .map_err(|e| format!("accepting connection: {e}"))?;
        let open = Arc::clone(&open);
        let state = Arc::clone(&state);
        std::thread::spawn(move || {
            if let Err(e) = serve_connection(stream, &open, &state) {
                eprintln!("steac-worker: connection from {peer}: {e}");
            }
        });
    }
}

/// Serves one session: envelope-framed requests in a loop until the
/// client closes the connection at a frame boundary (clean EOF) or a
/// frame proves unreadable (the stream is desynchronized beyond repair,
/// so the connection is dropped and the client's retry path takes
/// over). Each request is answered on its own thread; the shared write
/// lock keeps concurrently finishing responses from interleaving
/// mid-frame.
fn serve_connection<F>(
    stream: TcpStream,
    open: &Arc<F>,
    state: &Arc<WorkerState>,
) -> Result<(), String>
where
    F: Fn(u16, &[u8]) -> Result<Box<dyn WireJob>, String> + Send + Sync + 'static,
{
    let _ = stream.set_nodelay(true);
    // A client that stalls mid-request must not pin this thread forever.
    let _ = stream.set_read_timeout(Some(Duration::from_secs(300)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(300)));
    let stream = Arc::new(stream);
    let write_lock = Arc::new(Mutex::new(()));
    loop {
        // Peek the first byte by hand so a close between frames reads
        // as a clean end-of-session rather than a truncated envelope.
        let mut first = [0u8; 1];
        match (&*stream).read(&mut first) {
            Ok(0) => return Ok(()),
            Ok(_) => {}
            Err(e) => return Err(format!("reading request: {e}")),
        }
        let (request_id, request) = read_envelope(&mut (&first[..]).chain(&*stream))
            .map_err(|e| format!("request frame: {e}"))?;
        let open = Arc::clone(open);
        let state = Arc::clone(state);
        let stream = Arc::clone(&stream);
        let write_lock = Arc::clone(&write_lock);
        std::thread::spawn(move || {
            let outcome =
                shard::process_request_with(&request, |kind, job| open(kind, job), &state)
                    .and_then(|response| {
                        let frame = encode_envelope(request_id, &response);
                        let _guard = write_lock.lock().expect("no panics hold the lock");
                        (&*stream)
                            .write_all(&frame)
                            .and_then(|()| (&*stream).flush())
                            .map_err(|e| format!("writing response: {e}"))
                    });
            if let Err(e) = outcome {
                // An unanswerable request would strand the client's
                // pending entry until its timeout; dropping the whole
                // connection fails it over to the retry path instead.
                eprintln!("steac-worker: request {request_id}: {e}");
                let _ = stream.shutdown(std::net::Shutdown::Both);
            }
        });
    }
}

/// A locally spawned `steac-worker --serve` process: the child plus the
/// address it announced. Killed (and reaped) on drop. The launch-side
/// counterpart of [`serve_tcp`], shared by the test batteries and the
/// scaling harness so the announce-line scraping lives in one place.
#[derive(Debug)]
pub struct ServeHandle {
    child: std::process::Child,
    addr: String,
}

impl ServeHandle {
    /// The `host:port` the worker announced it is listening on.
    #[must_use]
    pub fn addr(&self) -> &str {
        &self.addr
    }
}

impl Drop for ServeHandle {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Spawns `binary --serve 127.0.0.1:0` and scrapes the announced
/// ephemeral address from its first stdout line.
///
/// # Errors
///
/// A diagnostic when the process cannot be spawned or does not announce
/// an address.
pub fn spawn_serve_process(binary: &std::path::Path) -> Result<ServeHandle, String> {
    spawn_serve_process_at(binary, "127.0.0.1:0")
}

/// [`spawn_serve_process`] with an explicit bind address — port 0 for
/// ephemeral, or a concrete port to restart a worker on the address a
/// fleet already points at (the cache-loss drill).
///
/// # Errors
///
/// A diagnostic when the process cannot be spawned or does not announce
/// an address.
pub fn spawn_serve_process_at(binary: &std::path::Path, bind: &str) -> Result<ServeHandle, String> {
    use std::io::BufRead as _;
    let mut child = Command::new(binary)
        .args(["--serve", bind])
        .stdin(Stdio::null())
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .map_err(|e| format!("spawning {} --serve: {e}", binary.display()))?;
    let stdout = child.stdout.take().expect("stdout was piped");
    let mut line = String::new();
    let announced = std::io::BufReader::new(stdout)
        .read_line(&mut line)
        .map_err(|e| format!("reading the serve announcement: {e}"));
    let addr = announced.and_then(|_| {
        line.trim()
            .rsplit(' ')
            .next()
            .filter(|a| a.contains(':'))
            .map(str::to_string)
            .ok_or_else(|| format!("unexpected serve announcement: {line:?}"))
    });
    match addr {
        Ok(addr) => Ok(ServeHandle { child, addr }),
        Err(e) => {
            let _ = child.kill();
            let _ = child.wait();
            Err(e)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // ---------- envelope codec ----------

    #[test]
    fn envelope_round_trip_is_identity() {
        for (id, payload) in [
            (0u64, &b""[..]),
            (1, b"x"),
            (u64::MAX, b"hello envelope"),
            (42, &[0u8; 300]),
        ] {
            let framed = encode_envelope(id, payload);
            assert_eq!(framed.len(), ENVELOPE_HEADER_LEN + payload.len());
            assert_eq!(decode_envelope(&framed).unwrap(), (id, payload.to_vec()));
            let mut cursor = &framed[..];
            assert_eq!(read_envelope(&mut cursor).unwrap(), (id, payload.to_vec()));
        }
    }

    #[test]
    fn envelope_truncation_always_errors() {
        let framed = encode_envelope(9, b"some payload bytes");
        for cut in 0..framed.len() {
            assert!(decode_envelope(&framed[..cut]).is_err(), "prefix {cut}");
            let mut cursor = &framed[..cut];
            assert!(read_envelope(&mut cursor).is_err(), "stream prefix {cut}");
        }
    }

    /// Corrupting the magic, version, or length always errors; the
    /// request-id bytes (6..14) are payload-like — a flip there decodes
    /// cleanly but under a *different* id, which the session router
    /// drops (nobody is pending under it), so it still cannot corrupt
    /// an exchange.
    #[test]
    fn envelope_header_corruption_is_detected_or_changes_only_the_id() {
        let framed = encode_envelope(7, b"payload");
        for pos in 0..ENVELOPE_HEADER_LEN {
            for flip in [0x01u8, 0x80, 0xFF] {
                let mut corrupt = framed.clone();
                corrupt[pos] ^= flip;
                let decoded = decode_envelope(&corrupt);
                if (6..14).contains(&pos) {
                    let (id, payload) = decoded.expect("id flips still decode");
                    assert_ne!(id, 7, "header byte {pos} flip {flip:#x}");
                    assert_eq!(payload, b"payload");
                } else {
                    assert!(decoded.is_err(), "header byte {pos} flip {flip:#x}");
                }
            }
        }
    }

    #[test]
    fn envelope_version_and_magic_are_typed() {
        let mut framed = encode_envelope(0, b"p");
        framed[0] = b'X';
        assert!(matches!(
            decode_envelope(&framed),
            Err(WireError::BadMagic { .. })
        ));
        let mut framed = encode_envelope(0, b"p");
        framed[4] = framed[4].wrapping_add(1);
        assert!(matches!(
            decode_envelope(&framed),
            Err(WireError::UnsupportedVersion { .. })
        ));
        let mut framed = encode_envelope(0, b"p");
        framed.push(0);
        assert!(matches!(
            decode_envelope(&framed),
            Err(WireError::Trailing { .. })
        ));
    }

    /// A v1 envelope (no request id; length directly after the version)
    /// must be rejected loudly, not misparsed.
    #[test]
    fn envelope_v1_frames_are_rejected() {
        let payload = b"old-style";
        let mut framed = Vec::new();
        framed.extend_from_slice(&ENVELOPE_MAGIC);
        framed.extend_from_slice(&1u16.to_le_bytes());
        framed.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        framed.extend_from_slice(payload);
        assert!(matches!(
            decode_envelope(&framed),
            Err(WireError::UnsupportedVersion { .. })
        ));
        let mut cursor = &framed[..];
        assert!(matches!(
            read_envelope(&mut cursor),
            Err(TransportError::Envelope { .. })
        ));
    }

    #[test]
    fn read_envelope_rejects_hostile_length_without_allocating_it() {
        let mut framed = encode_envelope(3, b"tiny");
        framed[14..22].copy_from_slice(&u64::MAX.to_le_bytes());
        let mut cursor = &framed[..];
        assert!(matches!(
            read_envelope(&mut cursor),
            Err(TransportError::Envelope { .. })
        ));
    }

    // ---------- fleet over an in-memory transport ----------

    /// Runs requests through the real worker-protocol core in-process,
    /// against a job that echoes each unit's bytes. Failure behaviour is
    /// injected per call index.
    struct Loopback<S: Fn(usize) -> Option<TransportError> + Send + Sync> {
        calls: AtomicUsize,
        inject: S,
    }

    struct EchoJob;
    impl WireJob for EchoJob {
        fn run_unit(&mut self, unit: &[u8]) -> Result<Vec<u8>, String> {
            if unit == b"poison" {
                Err("poisoned unit".to_string())
            } else {
                Ok(unit.to_vec())
            }
        }
    }

    impl<S: Fn(usize) -> Option<TransportError> + Send + Sync> Transport for Loopback<S> {
        fn call(&self, request: &[u8]) -> Result<Vec<u8>, TransportError> {
            let call = self.calls.fetch_add(1, Ordering::Relaxed);
            if let Some(e) = (self.inject)(call) {
                return Err(e);
            }
            shard::process_request(request, |_, _| Ok(Box::new(EchoJob)))
                .map_err(|diagnostic| TransportError::Io { diagnostic })
        }
        fn endpoint(&self) -> String {
            "loopback".to_string()
        }
    }

    fn loopback<S: Fn(usize) -> Option<TransportError> + Send + Sync>(
        inject: S,
    ) -> Box<Loopback<S>> {
        Box::new(Loopback {
            calls: AtomicUsize::new(0),
            inject,
        })
    }

    fn units(n: usize) -> Vec<Vec<u8>> {
        (0..n).map(|i| format!("unit-{i}").into_bytes()).collect()
    }

    #[test]
    fn fleet_merges_by_unit_index_across_host_counts() {
        let expected = units(97);
        for hosts in 1..=4 {
            let fleet = RemoteFleet::new(
                (0..hosts)
                    .map(|_| loopback(|_| None) as Box<dyn Transport>)
                    .collect(),
            );
            let got = fleet.run(7, b"job", &expected).unwrap();
            assert_eq!(got, expected, "{hosts} hosts");
        }
    }

    #[test]
    fn transient_failures_are_retried_to_an_identical_merge() {
        let expected = units(40);
        let fleet = RemoteFleet::new(vec![
            loopback(|call| {
                (call % 3 == 1).then(|| TransportError::Io {
                    diagnostic: "injected".to_string(),
                })
            }) as Box<dyn Transport>,
            loopback(|_| None) as Box<dyn Transport>,
        ])
        .with_chunk(2);
        let got = fleet.run(7, b"job", &expected).unwrap();
        assert_eq!(got, expected);
    }

    #[test]
    fn dead_host_requeues_onto_the_survivor() {
        let expected = units(30);
        let fleet = RemoteFleet::new(vec![
            loopback(|_| {
                Some(TransportError::Unreachable {
                    endpoint: "dead".to_string(),
                    diagnostic: "injected".to_string(),
                })
            }) as Box<dyn Transport>,
            loopback(|_| None) as Box<dyn Transport>,
        ])
        .with_chunk(3);
        let got = fleet.run(7, b"job", &expected).unwrap();
        assert_eq!(got, expected);
    }

    /// Regression: fast-failing dead hosts poll the retry queue far
    /// more often than a busy healthy host, but they must never burn a
    /// unit's whole retry budget between them — a unit is only
    /// exhausted once every live host has failed it. Two instant-fail
    /// hosts plus one healthy host, with the tightest budget, must
    /// still complete.
    #[test]
    fn dead_majority_cannot_exhaust_a_unit_the_healthy_host_never_saw() {
        let dead = || {
            loopback(|_| {
                Some(TransportError::Unreachable {
                    endpoint: "dead".to_string(),
                    diagnostic: "injected".to_string(),
                })
            }) as Box<dyn Transport>
        };
        let expected = units(40);
        for _ in 0..10 {
            let fleet = RemoteFleet::new(vec![dead(), dead(), loopback(|_| None)])
                .with_max_retries(1)
                .with_chunk(2);
            let got = fleet.run(7, b"job", &expected).unwrap();
            assert_eq!(got, expected);
        }
    }

    #[test]
    fn all_hosts_dead_is_a_lowest_indexed_unit_error() {
        let dead = || {
            loopback(|_| {
                Some(TransportError::Unreachable {
                    endpoint: "dead".to_string(),
                    diagnostic: "injected".to_string(),
                })
            }) as Box<dyn Transport>
        };
        let fleet = RemoteFleet::new(vec![dead(), dead()]).with_chunk(4);
        match fleet.run(7, b"job", &units(20)).unwrap_err() {
            PoolError::Unit { unit, diagnostic } => {
                assert_eq!(unit, 0, "lowest-indexed unit wins");
                assert!(!diagnostic.is_empty());
            }
            other => panic!("expected PoolError::Unit, got {other:?}"),
        }
    }

    #[test]
    fn workload_unit_errors_are_final_and_never_retried() {
        let calls = Arc::new(AtomicUsize::new(0));
        let seen = Arc::clone(&calls);
        let host = Box::new(Loopback {
            calls: AtomicUsize::new(0),
            inject: move |_| {
                seen.fetch_add(1, Ordering::Relaxed);
                None
            },
        });
        let fleet = RemoteFleet::new(vec![host]).with_chunk(64);
        let mut work = units(5);
        work[3] = b"poison".to_vec();
        match fleet.run(7, b"job", &work).unwrap_err() {
            PoolError::Unit { unit, diagnostic } => {
                assert_eq!(unit, 3);
                assert!(diagnostic.contains("poisoned unit"), "{diagnostic}");
            }
            other => panic!("expected PoolError::Unit, got {other:?}"),
        }
        assert_eq!(calls.load(Ordering::Relaxed), 1, "no retry of a unit error");
    }

    #[test]
    fn empty_unit_list_never_touches_a_host() {
        let touched = Arc::new(AtomicBool::new(false));
        let seen = Arc::clone(&touched);
        let host = Box::new(Loopback {
            calls: AtomicUsize::new(0),
            inject: move |_| {
                seen.store(true, Ordering::Relaxed);
                None
            },
        });
        let fleet = RemoteFleet::new(vec![host]);
        assert!(fleet.run(7, b"job", &[]).unwrap().is_empty());
        assert!(!touched.load(Ordering::Relaxed));
    }

    #[test]
    #[should_panic(expected = "at least one host")]
    fn empty_fleet_is_a_construction_error() {
        let _ = RemoteFleet::new(Vec::new());
    }

    // ---------- TCP transport negative paths ----------

    #[test]
    fn tcp_connect_refused_is_unreachable() {
        // Bind then drop to learn a port that is (momentarily) free.
        let addr = {
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            listener.local_addr().unwrap()
        };
        let t = TcpTransport::new(addr.to_string());
        assert!(matches!(
            t.call(b"request"),
            Err(TransportError::Unreachable { .. })
        ));
    }

    #[test]
    fn tcp_rogue_server_is_a_typed_envelope_error() {
        // A server that answers with garbage, then one that slams the
        // connection shut: both must be typed errors, never panics.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            for (i, stream) in listener.incoming().take(2).enumerate() {
                let mut stream = stream.unwrap();
                if i == 0 {
                    let _ = read_envelope(&mut stream);
                    let _ = stream.write_all(b"this is not an envelope at all!!");
                }
                // i == 1: drop the connection without reading or replying.
            }
        });
        let t = TcpTransport::new(addr).with_timeout(Some(Duration::from_secs(10)));
        assert!(matches!(
            t.call(b"request"),
            Err(TransportError::Envelope { .. })
        ));
        // The slammed connection may race the write: when the request
        // provably never left, `call` transparently retries on a fresh
        // connection — and by then the `take(2)` listener is gone, so
        // the retry can legitimately land on `Unreachable`.
        match t.call(b"request") {
            Err(
                TransportError::Envelope { .. }
                | TransportError::Io { .. }
                | TransportError::Unreachable { .. },
            ) => {}
            other => panic!("expected a typed transport error, got {other:?}"),
        }
        server.join().unwrap();
    }

    #[test]
    fn serve_tcp_round_trips_through_the_echo_job() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        std::thread::spawn(move || {
            let _ = serve_tcp(listener, |_, _| Ok(Box::new(EchoJob)));
        });
        let fleet = RemoteFleet::tcp([addr]).unwrap();
        let expected = units(12);
        let got = fleet.run(7, b"job", &expected).unwrap();
        assert_eq!(got, expected);
    }

    // ---------- program cache + session semantics ----------

    /// A loopback transport backed by a *persistent* [`WorkerState`],
    /// so by-hash requests exercise the real cache path in-process. The
    /// state handle is shared with the test, which can swap in a fresh
    /// one to simulate a worker restart.
    struct CachingLoopback {
        state: Arc<Mutex<Arc<WorkerState>>>,
        streams: usize,
    }

    impl CachingLoopback {
        fn new(streams: usize) -> (Box<Self>, Arc<Mutex<Arc<WorkerState>>>) {
            let state = Arc::new(Mutex::new(Arc::new(WorkerState::new())));
            let transport = Box::new(CachingLoopback {
                state: Arc::clone(&state),
                streams,
            });
            (transport, state)
        }
    }

    impl Transport for CachingLoopback {
        fn call(&self, request: &[u8]) -> Result<Vec<u8>, TransportError> {
            let state = Arc::clone(&self.state.lock().expect("no panics hold the lock"));
            shard::process_request_with(request, |_, _| Ok(Box::new(EchoJob)), &state)
                .map_err(|diagnostic| TransportError::Io { diagnostic })
        }
        fn endpoint(&self) -> String {
            "caching-loopback".to_string()
        }
        fn caches_programs(&self) -> bool {
            true
        }
        fn streams(&self) -> usize {
            self.streams
        }
    }

    #[test]
    fn caching_transport_ships_the_program_once_then_goes_by_hash() {
        let job = b"a-reasonably-long-program-blob".to_vec();
        let expected = units(40);
        let (host, _state) = CachingLoopback::new(2);
        let fleet = RemoteFleet::new(vec![host]).with_chunk(2);
        let got = fleet.run(7, &job, &expected).unwrap();
        assert_eq!(got, expected);
        let stats = fleet.stats();
        assert!(stats.requests >= 20, "chunk 2 over 40 units: {stats:?}");
        assert_eq!(stats.programs_shipped, 1, "{stats:?}");
        assert_eq!(stats.program_bytes, job.len() as u64, "{stats:?}");
        assert_eq!(stats.need_program_replies, 0, "{stats:?}");
        assert!(stats.unit_bytes > 0, "{stats:?}");
    }

    /// Streaming dispatch issues many small sub-runs of one job
    /// against the same fleet, possibly overlapping in time. The prime
    /// gate lives on the host slot keyed by job hash — not per run —
    /// precisely so racing sub-runs on a cold host cannot each decide
    /// to ship the program inline.
    #[test]
    fn concurrent_sub_runs_of_one_job_still_ship_the_program_once() {
        let job = b"shared-program-blob".to_vec();
        let (host, _state) = CachingLoopback::new(2);
        let fleet = RemoteFleet::new(vec![host]).with_chunk(2);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let (fleet, job) = (&fleet, &job);
                scope.spawn(move || {
                    let expected = units(12);
                    let got = fleet.run(7, job, &expected).unwrap();
                    assert_eq!(got, expected);
                });
            }
        });
        let stats = fleet.stats();
        assert_eq!(stats.programs_shipped, 1, "{stats:?}");
        assert_eq!(stats.program_bytes, job.len() as u64, "{stats:?}");
        assert_eq!(stats.need_program_replies, 0, "{stats:?}");
    }

    #[test]
    fn worker_restart_mid_run_heals_via_need_program() {
        let expected = units(60);
        let (host, state) = CachingLoopback::new(1);
        let fleet = RemoteFleet::new(vec![host]).with_chunk(2);
        // Prime the cache with a first run, restart the "worker", then
        // run again: the fleet's ledger is now stale and must heal.
        let got = fleet.run(7, b"job-bytes", &expected).unwrap();
        assert_eq!(got, expected);
        assert_eq!(fleet.stats().programs_shipped, 1);
        *state.lock().unwrap() = Arc::new(WorkerState::new());
        let got = fleet.run(7, b"job-bytes", &expected).unwrap();
        assert_eq!(got, expected);
        let stats = fleet.stats();
        assert_eq!(
            stats.need_program_replies, 1,
            "stale ledger must surface as NeedProgram: {stats:?}"
        );
        assert_eq!(stats.programs_shipped, 2, "one re-ship heals it: {stats:?}");
    }

    #[test]
    fn non_caching_transport_always_ships_inline() {
        let expected = units(10);
        let fleet = RemoteFleet::new(vec![loopback(|_| None)]).with_chunk(5);
        let got = fleet.run(7, b"job", &expected).unwrap();
        assert_eq!(got, expected);
        let stats = fleet.stats();
        assert_eq!(stats.programs_shipped, stats.requests, "{stats:?}");
    }

    /// The whole point of persistent sessions: a fleet run over a
    /// 2-stream TCP transport uses exactly one connection.
    #[test]
    fn tcp_fleet_run_uses_one_connection_per_transport() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let accepts = Arc::new(AtomicUsize::new(0));
        let seen = Arc::clone(&accepts);
        std::thread::spawn(move || {
            let open = Arc::new(|_: u16, _: &[u8]| Ok(Box::new(EchoJob) as Box<dyn WireJob>));
            let state = Arc::new(WorkerState::new());
            for stream in listener.incoming() {
                let Ok(stream) = stream else { break };
                seen.fetch_add(1, Ordering::Relaxed);
                let open = Arc::clone(&open);
                let state = Arc::clone(&state);
                std::thread::spawn(move || {
                    let _ = serve_connection(stream, &open, &state);
                });
            }
        });
        let fleet = RemoteFleet::tcp([addr]).unwrap().with_chunk(2);
        let expected = units(30);
        let got = fleet.run(7, b"job", &expected).unwrap();
        assert_eq!(got, expected);
        assert_eq!(accepts.load(Ordering::Relaxed), 1);
        let stats = fleet.stats();
        assert_eq!(stats.programs_shipped, 1, "{stats:?}");
    }

    #[test]
    fn tcp_transport_reconnects_lazily_after_a_session_loss() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        std::thread::spawn(move || {
            let state = Arc::new(WorkerState::new());
            for (i, stream) in listener.incoming().enumerate() {
                let Ok(stream) = stream else { break };
                if i == 0 {
                    // First session: answer one frame, then slam the
                    // connection shut.
                    let mut reader = stream.try_clone().unwrap();
                    if let Ok((id, payload)) = read_envelope(&mut reader) {
                        let response =
                            shard::process_request(&payload, |_, _| Ok(Box::new(EchoJob))).unwrap();
                        let mut w = &stream;
                        let _ = w.write_all(&encode_envelope(id, &response));
                    }
                    drop(stream);
                } else {
                    let open =
                        Arc::new(|_: u16, _: &[u8]| Ok(Box::new(EchoJob) as Box<dyn WireJob>));
                    let state = Arc::clone(&state);
                    std::thread::spawn(move || {
                        let _ = serve_connection(stream, &open, &state);
                    });
                }
            }
        });
        let t = TcpTransport::new(addr).with_timeout(Some(Duration::from_secs(10)));
        let request = shard::encode_request(7, Some(b"job"), fnv1a64(b"job"), &[0], &units(1));
        assert!(t.call(&request).is_ok(), "first session works");
        // Give the reader thread a moment to notice the server-side
        // close, then call again: the transport must reconnect on its
        // own rather than erroring or panicking.
        std::thread::sleep(Duration::from_millis(100));
        assert!(t.call(&request).is_ok(), "reconnected session works");
    }

    #[test]
    fn hostname_targets_resolve_once_per_session() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let port = listener.local_addr().unwrap().port();
        std::thread::spawn(move || {
            let _ = serve_tcp(listener, |_, _| Ok(Box::new(EchoJob)));
        });
        // A *hostname* target (not a literal IP), so `to_socket_addrs`
        // does real resolution work worth caching.
        let t = TcpTransport::new(format!("localhost:{port}"));
        assert_eq!(t.resolutions(), 0, "resolution is lazy");
        let request = shard::encode_request(7, Some(b"job"), fnv1a64(b"job"), &[0], &units(1));
        for _ in 0..3 {
            t.call(&request).unwrap();
        }
        assert_eq!(t.resolutions(), 1, "one session, one resolution");
    }

    #[test]
    fn status_round_trips_over_tcp_and_counts_the_cache() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        std::thread::spawn(move || {
            let _ = serve_tcp(listener, |_, _| Ok(Box::new(EchoJob)));
        });
        let fleet = RemoteFleet::tcp([addr]).unwrap().with_chunk(4);
        let expected = units(12);
        assert_eq!(fleet.run(7, b"job", &expected).unwrap(), expected);
        let statuses = fleet.statuses();
        assert_eq!(statuses.len(), 1);
        let status = statuses[0].1.as_ref().expect("status reply");
        assert_eq!(status.units_served, 12, "{status:?}");
        assert_eq!(status.cache_entries, 1, "{status:?}");
        assert!(status.requests_served >= 1, "{status:?}");
        assert!(status.bytes_received > 0, "{status:?}");
    }
}
