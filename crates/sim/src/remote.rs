//! Machine-level fan-out: the transport layer and host fleet behind
//! [`crate::exec::Backend::Remote`].
//!
//! The wire format ([`crate::wire`]) and the worker protocol
//! ([`crate::shard`]) are transport-agnostic: one serialized request in,
//! one serialized response out. This module makes "where the bytes go"
//! pluggable:
//!
//! * [`Transport`] is that one-request/one-response contract. A
//!   transport failure is a typed [`TransportError`] — never a panic —
//!   and is *retryable* by construction: the fleet may replay the same
//!   request on the same or another host.
//! * [`TcpTransport`] ships each request to a `steac-worker --serve
//!   <addr>` listening loop ([`serve_tcp`]) over one TCP connection,
//!   framed by the length-prefixed, versioned **envelope** below.
//! * [`SpawnTransport`] runs each request through a freshly spawned
//!   local `steac-worker` process over stdin/stdout — today's
//!   [`crate::shard::ProcessPool`] piping wrapped as a transport — so
//!   the whole Remote dispatch arm is testable in-repo with zero
//!   network.
//! * [`RemoteFleet`] fans work units across N transports with
//!   work-stealing and a retry/requeue policy for lost hosts, keeping
//!   the merge-by-unit-index determinism contract of
//!   [`crate::shard::ProcessPool`]: unit `i`'s result (or the
//!   lowest-indexed unit's error) is identical no matter which host ran
//!   it, how execution interleaved, or which responses had to be
//!   retried.
//!
//! # Envelope
//!
//! Stdin/stdout framing is the process lifetime (EOF ends the request,
//! exit ends the response), but a persistent TCP connection needs
//! explicit framing. Every payload on a stream transport travels inside
//! the envelope:
//!
//! ```text
//! magic   b"STEV"   (4 bytes)
//! version u16       (currently 1; reject-on-mismatch, no negotiation)
//! length  u64       (payload byte count, little-endian)
//! payload [u8; length]
//! ```
//!
//! [`decode_envelope`] is strict — truncated, corrupt or trailing bytes
//! are typed [`WireError`]s, property-tested in `tests/proptests.rs`
//! alongside the program codec sweeps. [`read_envelope`] is the
//! streaming half used on live sockets; a damaged length there surfaces
//! as a short or over-long read, which the worker-response parser
//! rejects — either way a corrupt frame is a typed error on the
//! dispatcher side, never a panic.
//!
//! # Failure model
//!
//! The fleet distinguishes two kinds of trouble:
//!
//! * **Transport-level loss** (connect refused, dead pipe, truncated or
//!   corrupt envelope, a response missing some of its units): the
//!   affected units are re-enqueued and stolen by other hosts, up to
//!   [`RemoteFleet::with_max_retries`] extra attempts per unit. A host
//!   that fails `max_retries + 1` calls in a row is declared lost and
//!   stops taking work. Only when a unit's retries are exhausted — or
//!   no live host remains — does the run fail, as
//!   [`PoolError::Unit`] on the **lowest-indexed** unresolved unit.
//! * **Workload-level unit errors** (the worker ran the unit and
//!   reported a typed failure, e.g. corrupt unit bytes): deterministic,
//!   so they are *not* retried; they fail the run exactly as they do on
//!   the process backend.
//!
//! What a failed run *means* is then the [`crate::exec::Fallback`]
//! policy's decision, made once in [`crate::exec::Exec::dispatch`]:
//! recompute on the in-thread pool (logged and counted) or surface the
//! workload's typed error. `tests/remote_chaos.rs` drives every one of
//! these paths with injected failures.

use crate::shard::{self, PoolError, WireJob};
use crate::wire::{WireError, WireReader, WireWriter};
use std::collections::VecDeque;
use std::fmt;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::process::{Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Magic bytes opening every stream-transport envelope.
pub const ENVELOPE_MAGIC: [u8; 4] = *b"STEV";

/// Envelope version; bumped on any change to the envelope layout, with
/// the same reject-on-mismatch discipline as [`crate::wire::WIRE_VERSION`].
pub const ENVELOPE_VERSION: u16 = 1;

/// Byte length of the fixed envelope header (magic + version + length).
pub const ENVELOPE_HEADER_LEN: usize = 14;

/// Frames a payload for a stream transport (see the module docs for the
/// layout). Encoding cannot fail.
#[must_use]
pub fn encode_envelope(payload: &[u8]) -> Vec<u8> {
    let mut w = WireWriter::new();
    w.put_bytes(&ENVELOPE_MAGIC);
    w.put_u16(ENVELOPE_VERSION);
    w.put_block(payload);
    w.finish()
}

/// Strictly decodes one envelope from a complete buffer: the payload
/// must fill the buffer exactly.
///
/// # Errors
///
/// A typed [`WireError`] for truncated bytes, a bad magic, an
/// unsupported version, a length that disagrees with the buffer, or
/// trailing bytes. Never panics, never over-allocates (the length is
/// checked against the bytes actually present).
pub fn decode_envelope(bytes: &[u8]) -> Result<Vec<u8>, WireError> {
    let mut r = WireReader::new(bytes);
    r.expect_magic(&ENVELOPE_MAGIC, "envelope magic")?;
    r.expect_version(ENVELOPE_VERSION, "envelope version")?;
    let payload = r.get_block("envelope payload")?.to_vec();
    r.finish()?;
    Ok(payload)
}

/// Reads one envelope from a live stream: the header is read exactly,
/// then `length` payload bytes. The allocation grows only as bytes
/// actually arrive, so a hostile length cannot balloon memory.
///
/// # Errors
///
/// [`TransportError::Envelope`] for framing damage (truncation, bad
/// magic, version mismatch), [`TransportError::Io`] for read failures.
pub fn read_envelope<R: Read>(input: &mut R) -> Result<Vec<u8>, TransportError> {
    let mut header = [0u8; ENVELOPE_HEADER_LEN];
    input.read_exact(&mut header).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            TransportError::Envelope {
                diagnostic: "truncated envelope header".to_string(),
            }
        } else {
            TransportError::Io {
                diagnostic: format!("reading envelope header: {e}"),
            }
        }
    })?;
    let mut r = WireReader::new(&header);
    let len = r
        .expect_magic(&ENVELOPE_MAGIC, "envelope magic")
        .and_then(|()| r.expect_version(ENVELOPE_VERSION, "envelope version"))
        .and_then(|()| r.get_usize("envelope length"))
        .map_err(|e| TransportError::Envelope {
            diagnostic: e.to_string(),
        })?;
    let mut payload = Vec::new();
    input
        .take(len as u64)
        .read_to_end(&mut payload)
        .map_err(|e| TransportError::Io {
            diagnostic: format!("reading envelope payload: {e}"),
        })?;
    if payload.len() != len {
        return Err(TransportError::Envelope {
            diagnostic: format!(
                "truncated envelope payload: got {} of {len} bytes",
                payload.len()
            ),
        });
    }
    Ok(payload)
}

/// Failure of a single [`Transport::call`]. Every variant is retryable
/// at the fleet level: the same request can be replayed on the same or
/// another host without changing any result (work units are pure
/// functions of their bytes).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TransportError {
    /// The host could not be reached at all (connect refused, worker
    /// binary missing). Nothing ran.
    Unreachable {
        /// The endpoint that was tried.
        endpoint: String,
        /// What failed.
        diagnostic: String,
    },
    /// The exchange died mid-flight (send/receive error, worker process
    /// exited abnormally). The request may or may not have executed.
    Io {
        /// What failed.
        diagnostic: String,
    },
    /// The response arrived but its framing was damaged (truncated or
    /// corrupt envelope, bad magic, version mismatch).
    Envelope {
        /// What failed.
        diagnostic: String,
    },
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransportError::Unreachable {
                endpoint,
                diagnostic,
            } => write!(f, "host {endpoint} unreachable: {diagnostic}"),
            TransportError::Io { diagnostic } => write!(f, "transport I/O failed: {diagnostic}"),
            TransportError::Envelope { diagnostic } => {
                write!(f, "corrupt response envelope: {diagnostic}")
            }
        }
    }
}

impl std::error::Error for TransportError {}

/// One request in, one response out — the entire contract between the
/// dispatcher and a remote `steac-worker`, with the request/response
/// bytes exactly as the stdin/stdout protocol defines them
/// ([`crate::shard`]). Implementations own connection management and
/// framing; they must be callable concurrently from fleet threads.
pub trait Transport: Send + Sync {
    /// Ships one request and returns the raw response bytes.
    ///
    /// # Errors
    ///
    /// A typed, retryable [`TransportError`]; implementations never
    /// panic on wire damage.
    fn call(&self, request: &[u8]) -> Result<Vec<u8>, TransportError>;

    /// Human-readable endpoint, used in diagnostics and
    /// `Exec` display (`remote:endpoint,endpoint`).
    fn endpoint(&self) -> String;
}

/// Ships requests to a `steac-worker --serve <addr>` listening loop:
/// one TCP connection per request, envelope-framed in both directions.
#[derive(Debug, Clone)]
pub struct TcpTransport {
    addr: String,
    timeout: Option<Duration>,
}

impl TcpTransport {
    /// A transport to `addr` (`host:port`), with the default 120 s
    /// connect/read/write timeout so a hung or blackholed host surfaces
    /// as a typed error instead of blocking a fleet thread forever.
    #[must_use]
    pub fn new(addr: impl Into<String>) -> Self {
        TcpTransport {
            addr: addr.into(),
            timeout: Some(Duration::from_secs(120)),
        }
    }

    /// Overrides the connect/read/write timeout (`None` disables it).
    #[must_use]
    pub fn with_timeout(mut self, timeout: Option<Duration>) -> Self {
        self.timeout = timeout;
        self
    }
}

impl TcpTransport {
    /// Connects within the configured timeout (a plain blocking connect
    /// when the timeout is disabled) — a blackholed host must surface
    /// as a typed error on our schedule, not the kernel's.
    fn connect(&self) -> Result<TcpStream, TransportError> {
        let unreachable = |diagnostic: String| TransportError::Unreachable {
            endpoint: self.addr.clone(),
            diagnostic,
        };
        let Some(timeout) = self.timeout else {
            return TcpStream::connect(&self.addr).map_err(|e| unreachable(e.to_string()));
        };
        let addrs = self
            .addr
            .to_socket_addrs()
            .map_err(|e| unreachable(e.to_string()))?;
        let mut last = None;
        for addr in addrs {
            match TcpStream::connect_timeout(&addr, timeout) {
                Ok(stream) => return Ok(stream),
                Err(e) => last = Some(e.to_string()),
            }
        }
        Err(unreachable(last.unwrap_or_else(|| {
            "address resolved to nothing".to_string()
        })))
    }
}

impl Transport for TcpTransport {
    fn call(&self, request: &[u8]) -> Result<Vec<u8>, TransportError> {
        let mut stream = self.connect()?;
        let _ = stream.set_nodelay(true);
        let _ = stream.set_read_timeout(self.timeout);
        let _ = stream.set_write_timeout(self.timeout);
        stream
            .write_all(&encode_envelope(request))
            .and_then(|()| stream.flush())
            .map_err(|e| TransportError::Io {
                diagnostic: format!("sending request to {}: {e}", self.addr),
            })?;
        read_envelope(&mut stream)
    }

    fn endpoint(&self) -> String {
        self.addr.clone()
    }
}

/// Runs each request through a freshly spawned local `steac-worker`
/// process over stdin/stdout — the [`crate::shard::ProcessPool`] piping
/// as a transport. No envelope: stdio framing is the process lifetime
/// (EOF ends the request, exit ends the response). This makes the whole
/// Remote dispatch arm — fleet, stealing, retries — testable with zero
/// network.
#[derive(Debug, Clone)]
pub struct SpawnTransport {
    binary: PathBuf,
}

impl SpawnTransport {
    /// A transport spawning the given worker binary per call.
    #[must_use]
    pub fn new(binary: PathBuf) -> Self {
        SpawnTransport { binary }
    }

    /// A transport over the default worker binary (see
    /// [`crate::shard::default_worker_binary`]); `None` when no binary
    /// can be found.
    #[must_use]
    pub fn discover() -> Option<Self> {
        shard::default_worker_binary().map(SpawnTransport::new)
    }
}

impl Transport for SpawnTransport {
    fn call(&self, request: &[u8]) -> Result<Vec<u8>, TransportError> {
        let mut child = Command::new(&self.binary)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()
            .map_err(|e| TransportError::Unreachable {
                endpoint: self.binary.display().to_string(),
                diagnostic: e.to_string(),
            })?;
        // The worker reads its whole request before writing anything, so
        // a plain write-then-wait sequence cannot deadlock. A write
        // failure (worker died early) is diagnosed from the exit status
        // below, which carries stderr.
        let write_failed = {
            let stdin = child.stdin.take().expect("stdin was piped");
            let mut stdin = stdin;
            stdin.write_all(request).is_err()
        };
        let output = child.wait_with_output().map_err(|e| TransportError::Io {
            diagnostic: format!("waiting for spawned worker: {e}"),
        })?;
        if !output.status.success() {
            let stderr = String::from_utf8_lossy(&output.stderr);
            return Err(TransportError::Io {
                diagnostic: format!(
                    "spawned worker exited abnormally ({}): {}",
                    output.status,
                    stderr.trim()
                ),
            });
        }
        if write_failed {
            return Err(TransportError::Io {
                diagnostic: "spawned worker closed stdin early".to_string(),
            });
        }
        Ok(output.stdout)
    }

    fn endpoint(&self) -> String {
        "spawn".to_string()
    }
}

/// How many chunks each host's share of the units is split into when the
/// fleet auto-sizes requests: small enough that idle hosts keep finding
/// work to steal, large enough that the job block (shipped once per
/// request) amortizes over many units.
const CHUNKS_PER_HOST: usize = 8;

/// Default extra attempts a unit gets after a transport-level loss.
pub const DEFAULT_MAX_RETRIES: usize = 2;

/// A fleet of remote hosts behind [`crate::exec::Backend::Remote`]:
/// per-host work streams with work-stealing (units are handed out from
/// one atomic counter per run, so an idle host always steals from the
/// global tail) and a retry/requeue policy for lost workers.
///
/// The determinism contract is [`crate::shard::ProcessPool`]'s: results
/// merge **by unit index**, failures surface as the **lowest-indexed**
/// unresolved unit — so reports stay byte-identical to the serial
/// backend no matter how hosts raced, died or retried.
pub struct RemoteFleet {
    hosts: Vec<Box<dyn Transport>>,
    max_retries: usize,
    chunk: usize,
}

impl fmt::Debug for RemoteFleet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RemoteFleet")
            .field("hosts", &self.endpoints())
            .field("max_retries", &self.max_retries)
            .field("chunk", &self.chunk)
            .finish()
    }
}

impl RemoteFleet {
    /// A fleet over explicit transports, with the default retry budget
    /// ([`DEFAULT_MAX_RETRIES`]) and auto-sized request chunks.
    ///
    /// # Panics
    ///
    /// If `hosts` is empty — a fleet with nowhere to send work is a
    /// programming error, caught at construction.
    #[must_use]
    pub fn new(hosts: Vec<Box<dyn Transport>>) -> Self {
        assert!(!hosts.is_empty(), "remote fleet needs at least one host");
        RemoteFleet {
            hosts,
            max_retries: DEFAULT_MAX_RETRIES,
            chunk: 0,
        }
    }

    /// A fleet of [`TcpTransport`]s, one per address; `None` when the
    /// iterator is empty.
    pub fn tcp<I>(addrs: I) -> Option<Self>
    where
        I: IntoIterator,
        I::Item: Into<String>,
    {
        let hosts: Vec<Box<dyn Transport>> = addrs
            .into_iter()
            .map(|a| Box::new(TcpTransport::new(a)) as Box<dyn Transport>)
            .collect();
        if hosts.is_empty() {
            None
        } else {
            Some(RemoteFleet::new(hosts))
        }
    }

    /// A fleet of `hosts` [`SpawnTransport`]s over the default worker
    /// binary — machine-level dispatch semantics with zero network.
    /// `None` when no worker binary can be found.
    #[must_use]
    pub fn spawn_local(hosts: usize) -> Option<Self> {
        let binary = shard::default_worker_binary()?;
        Some(RemoteFleet::new(
            (0..hosts.max(1))
                .map(|_| Box::new(SpawnTransport::new(binary.clone())) as Box<dyn Transport>)
                .collect(),
        ))
    }

    /// Sets how many extra attempts a unit gets after a transport-level
    /// loss before the run fails (builder style; default
    /// [`DEFAULT_MAX_RETRIES`]). A host is declared lost after
    /// `max_retries + 1` consecutive call failures.
    #[must_use]
    pub fn with_max_retries(mut self, max_retries: usize) -> Self {
        self.max_retries = max_retries;
        self
    }

    /// Pins the number of units per request (builder style; 0 — the
    /// default — auto-sizes to `units / (hosts × 8)`, clamped to ≥ 1).
    #[must_use]
    pub fn with_chunk(mut self, chunk: usize) -> Self {
        self.chunk = chunk;
        self
    }

    /// Number of hosts in the fleet.
    #[must_use]
    pub fn hosts(&self) -> usize {
        self.hosts.len()
    }

    /// The configured retry budget per unit.
    #[must_use]
    pub fn max_retries(&self) -> usize {
        self.max_retries
    }

    /// The host endpoints, in fleet order.
    #[must_use]
    pub fn endpoints(&self) -> Vec<String> {
        self.hosts.iter().map(|h| h.endpoint()).collect()
    }

    /// Executes `units` under job `kind`/`job` across the fleet and
    /// returns the result payloads in unit order — the remote sibling of
    /// [`crate::shard::ProcessPool::run`], with the same signature and
    /// the same determinism contract.
    ///
    /// # Errors
    ///
    /// [`PoolError::Unit`] for the lowest-indexed unit that could not be
    /// resolved: a workload-level unit error (never retried), exhausted
    /// retries after transport-level losses, or no live host left.
    pub fn run(&self, kind: u16, job: &[u8], units: &[Vec<u8>]) -> Result<Vec<Vec<u8>>, PoolError> {
        if units.is_empty() {
            return Ok(Vec::new());
        }
        let chunk = if self.chunk > 0 {
            self.chunk
        } else {
            units
                .len()
                .div_ceil(self.hosts.len() * CHUNKS_PER_HOST)
                .max(1)
        };
        let run = FleetRun {
            kind,
            job,
            units,
            chunk,
            max_retries: self.max_retries,
            next: AtomicUsize::new(0),
            pending: AtomicUsize::new(units.len()),
            alive: (0..self.hosts.len())
                .map(|_| AtomicBool::new(true))
                .collect(),
            retries: Mutex::new(VecDeque::new()),
            slots: Mutex::new(vec![None; units.len()]),
            failures: Mutex::new(Vec::new()),
            lost_hosts: Mutex::new(Vec::new()),
        };
        std::thread::scope(|scope| {
            for (index, host) in self.hosts.iter().enumerate() {
                let run = &run;
                scope.spawn(move || run.host_loop(index, host.as_ref()));
            }
        });

        let slots = run.slots.into_inner().expect("no panics hold the lock");
        let mut failures = run.failures.into_inner().expect("no panics hold the lock");
        let lost = run
            .lost_hosts
            .into_inner()
            .expect("no panics hold the lock");
        for (unit, slot) in slots.iter().enumerate() {
            if slot.is_none() && !failures.iter().any(|f| f.0 == unit) {
                failures.push((
                    unit,
                    format!(
                        "no live remote host left to run this unit ({})",
                        lost.join("; ")
                    ),
                ));
            }
        }
        if let Some((unit, diagnostic)) = failures.into_iter().min_by_key(|f| f.0) {
            return Err(PoolError::Unit { unit, diagnostic });
        }
        Ok(slots
            .into_iter()
            .map(|s| s.expect("every unit resolved or failed"))
            .collect())
    }
}

/// One unit in flight or waiting to be retried.
struct Retry {
    unit: usize,
    /// Transport-level failures so far.
    attempts: usize,
    /// Hosts that have already failed this unit. Routing prefers hosts
    /// *not* in this set, so a fast-failing dead host cannot burn the
    /// unit's whole retry budget while a healthy host never sees it.
    failed: Vec<usize>,
}

impl Retry {
    fn fresh(unit: usize) -> Self {
        Retry {
            unit,
            attempts: 0,
            failed: Vec::new(),
        }
    }
}

/// Shared state of one fleet run; every host thread drives
/// [`FleetRun::host_loop`] against it.
struct FleetRun<'a> {
    kind: u16,
    job: &'a [u8],
    units: &'a [Vec<u8>],
    chunk: usize,
    max_retries: usize,
    /// Work-stealing cursor: hosts grab `chunk` fresh units at a time.
    next: AtomicUsize,
    /// Units not yet resolved (no result, no recorded failure).
    pending: AtomicUsize,
    /// One flag per host; cleared when the host is declared lost.
    alive: Vec<AtomicBool>,
    retries: Mutex<VecDeque<Retry>>,
    slots: Mutex<Vec<Option<Vec<u8>>>>,
    failures: Mutex<Vec<(usize, String)>>,
    lost_hosts: Mutex<Vec<String>>,
}

impl FleetRun<'_> {
    /// Whether every host still alive has already failed this unit —
    /// the point past which routing it to "someone else" is no longer
    /// possible and retrying anywhere (or giving up, once the budget is
    /// spent) is all that is left.
    fn covered(&self, failed: &[usize]) -> bool {
        self.alive
            .iter()
            .enumerate()
            .all(|(host, alive)| !alive.load(Ordering::Relaxed) || failed.contains(&host))
    }

    /// The next batch for host `me`: a re-enqueued unit first, else a
    /// fresh chunk off the stealing cursor. A host skips retry entries
    /// it has itself failed — unless every live host has already failed
    /// the entry, at which point anyone may take it (pure transience,
    /// e.g. a fleet where every host is flaky) — so retries route to
    /// hosts with a chance of succeeding. `None` when no work is
    /// currently available.
    fn next_batch(&self, me: usize) -> Option<Vec<Retry>> {
        {
            let mut queue = self.retries.lock().expect("no panics hold the lock");
            for _ in 0..queue.len() {
                let entry = queue.pop_front().expect("len checked");
                if entry.failed.contains(&me) && !self.covered(&entry.failed) {
                    queue.push_back(entry);
                } else {
                    return Some(vec![entry]);
                }
            }
        }
        let start = self.next.fetch_add(self.chunk, Ordering::Relaxed);
        if start >= self.units.len() {
            return None;
        }
        let end = (start + self.chunk).min(self.units.len());
        Some((start..end).map(Retry::fresh).collect())
    }

    /// Re-enqueues transport-lost units, or records their permanent
    /// failure once the retry budget is spent **and** every host still
    /// alive has had (at least) one shot at them — exhausting a unit
    /// while an untried healthy host exists would fail runs a live
    /// fleet could finish.
    fn requeue(&self, me: usize, lost: Vec<Retry>, diagnostic: &str) {
        let mut queue = self.retries.lock().expect("no panics hold the lock");
        let mut failures = self.failures.lock().expect("no panics hold the lock");
        for mut entry in lost {
            entry.attempts += 1;
            if !entry.failed.contains(&me) {
                entry.failed.push(me);
            }
            if entry.attempts > self.max_retries && self.covered(&entry.failed) {
                failures.push((
                    entry.unit,
                    format!(
                        "lost in transit {} times across {} host(s), retries exhausted: \
                         {diagnostic}",
                        entry.attempts,
                        entry.failed.len()
                    ),
                ));
                self.pending.fetch_sub(1, Ordering::Relaxed);
            } else {
                queue.push_back(entry);
            }
        }
    }

    /// Records one response against a batch and returns the entries the
    /// response did **not** resolve (transport-level loss candidates).
    /// Duplicate results — same unit delivered twice — are idempotent:
    /// the first write wins, so replays after a lost response can never
    /// change a merge.
    fn record(
        &self,
        batch: Vec<Retry>,
        response: Vec<(usize, Result<Vec<u8>, String>)>,
    ) -> Vec<Retry> {
        let mut slots = self.slots.lock().expect("no panics hold the lock");
        let mut failures = self.failures.lock().expect("no panics hold the lock");
        for (unit, result) in response {
            if !batch.iter().any(|e| e.unit == unit) {
                // A unit this batch never asked for (damaged or
                // duplicated frame): ignoring it keeps the merge exact.
                continue;
            }
            match result {
                Ok(bytes) => {
                    if slots[unit].is_none() {
                        slots[unit] = Some(bytes);
                        self.pending.fetch_sub(1, Ordering::Relaxed);
                    }
                }
                Err(diagnostic) => {
                    // Workload-level unit error: deterministic, final.
                    if slots[unit].is_none() && !failures.iter().any(|f| f.0 == unit) {
                        failures.push((unit, diagnostic));
                        self.pending.fetch_sub(1, Ordering::Relaxed);
                    }
                }
            }
        }
        batch
            .into_iter()
            .filter(|e| slots[e.unit].is_none() && !failures.iter().any(|f| f.0 == e.unit))
            .collect()
    }

    /// One host's work loop: steal a batch, ship it, record the
    /// response; requeue what was lost. The host stops when every unit
    /// is resolved, or declares itself lost after `max_retries + 1`
    /// consecutive call failures (its in-flight units having been
    /// requeued for the surviving hosts).
    fn host_loop(&self, me: usize, transport: &dyn Transport) {
        let mut strikes = 0usize;
        while self.pending.load(Ordering::Relaxed) > 0 {
            let Some(batch) = self.next_batch(me) else {
                // Units are in flight on other hosts; wait for them to
                // resolve (or fail and requeue).
                std::thread::sleep(Duration::from_millis(1));
                continue;
            };
            let indices: Vec<usize> = batch.iter().map(|e| e.unit).collect();
            let request = shard::encode_request(self.kind, self.job, &indices, self.units);
            let (lost, diagnostic) = match transport.call(&request) {
                Ok(response) => {
                    let (items, damage) = shard::parse_response(&response, self.units.len());
                    let lost = self.record(batch, items);
                    if lost.is_empty() {
                        strikes = 0;
                        continue;
                    }
                    let diagnostic = match damage {
                        Some(e) => format!("response damaged: {e}"),
                        None => "response missing unit results".to_string(),
                    };
                    (lost, diagnostic)
                }
                Err(e) => (batch, e.to_string()),
            };
            strikes += 1;
            let dying = strikes > self.max_retries;
            if dying {
                // Declare the loss before requeueing the in-flight
                // units, so their routing immediately stops counting
                // this host as a viable destination.
                self.alive[me].store(false, Ordering::Relaxed);
            }
            self.requeue(me, lost, &diagnostic);
            if dying {
                let lost_line = format!(
                    "host {me} ({}) lost after {strikes} consecutive failures: {diagnostic}",
                    transport.endpoint()
                );
                eprintln!("steac remote: {lost_line}");
                self.lost_hosts
                    .lock()
                    .expect("no panics hold the lock")
                    .push(lost_line);
                return;
            }
        }
    }
}

/// The TCP serving loop behind `steac-worker --serve <addr>`: accepts
/// connections forever, and for each one reads a single
/// envelope-framed request, runs it through the same
/// [`crate::shard::process_request`] core as the stdio worker (with
/// `open` routing the job kind — the worker binary passes its
/// [`crate::shard::JobRegistry`]), and writes the envelope-framed
/// response. Each connection is served on its own thread, so several
/// dispatchers can share one worker host.
///
/// Connection-level trouble (damaged envelope, unreadable request, dead
/// peer) is logged to stderr and closes only that connection — a
/// misbehaving client can never take the server down, which
/// `tests/remote_chaos.rs` relies on.
///
/// # Errors
///
/// Only a broken listener (accept failure) ends the loop.
pub fn serve_tcp<F>(listener: TcpListener, open: F) -> Result<(), String>
where
    F: Fn(u16, &[u8]) -> Result<Box<dyn WireJob>, String> + Send + Sync + 'static,
{
    let open = Arc::new(open);
    loop {
        let (stream, peer) = listener
            .accept()
            .map_err(|e| format!("accepting connection: {e}"))?;
        let open = Arc::clone(&open);
        std::thread::spawn(move || {
            if let Err(e) = serve_connection(stream, open.as_ref()) {
                eprintln!("steac-worker: connection from {peer}: {e}");
            }
        });
    }
}

/// Serves one envelope-framed request/response exchange on an accepted
/// connection.
fn serve_connection<F>(mut stream: TcpStream, open: &F) -> Result<(), String>
where
    F: Fn(u16, &[u8]) -> Result<Box<dyn WireJob>, String>,
{
    let _ = stream.set_nodelay(true);
    // A client that stalls mid-request must not pin this thread forever.
    let _ = stream.set_read_timeout(Some(Duration::from_secs(300)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(300)));
    let request = read_envelope(&mut stream).map_err(|e| e.to_string())?;
    let response = shard::process_request(&request, |kind, job| open(kind, job))?;
    stream
        .write_all(&encode_envelope(&response))
        .and_then(|()| stream.flush())
        .map_err(|e| format!("writing response: {e}"))
}

/// A locally spawned `steac-worker --serve` process: the child plus the
/// address it announced. Killed (and reaped) on drop. The launch-side
/// counterpart of [`serve_tcp`], shared by the test batteries and the
/// scaling harness so the announce-line scraping lives in one place.
#[derive(Debug)]
pub struct ServeHandle {
    child: std::process::Child,
    addr: String,
}

impl ServeHandle {
    /// The `host:port` the worker announced it is listening on.
    #[must_use]
    pub fn addr(&self) -> &str {
        &self.addr
    }
}

impl Drop for ServeHandle {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Spawns `binary --serve 127.0.0.1:0` and scrapes the announced
/// ephemeral address from its first stdout line.
///
/// # Errors
///
/// A diagnostic when the process cannot be spawned or does not announce
/// an address.
pub fn spawn_serve_process(binary: &std::path::Path) -> Result<ServeHandle, String> {
    use std::io::BufRead as _;
    let mut child = Command::new(binary)
        .args(["--serve", "127.0.0.1:0"])
        .stdin(Stdio::null())
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .map_err(|e| format!("spawning {} --serve: {e}", binary.display()))?;
    let stdout = child.stdout.take().expect("stdout was piped");
    let mut line = String::new();
    let announced = std::io::BufReader::new(stdout)
        .read_line(&mut line)
        .map_err(|e| format!("reading the serve announcement: {e}"));
    let addr = announced.and_then(|_| {
        line.trim()
            .rsplit(' ')
            .next()
            .filter(|a| a.contains(':'))
            .map(str::to_string)
            .ok_or_else(|| format!("unexpected serve announcement: {line:?}"))
    });
    match addr {
        Ok(addr) => Ok(ServeHandle { child, addr }),
        Err(e) => {
            let _ = child.kill();
            let _ = child.wait();
            Err(e)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // ---------- envelope codec ----------

    #[test]
    fn envelope_round_trip_is_identity() {
        for payload in [&b""[..], b"x", b"hello envelope", &[0u8; 300]] {
            let framed = encode_envelope(payload);
            assert_eq!(framed.len(), ENVELOPE_HEADER_LEN + payload.len());
            assert_eq!(decode_envelope(&framed).unwrap(), payload);
            let mut cursor = &framed[..];
            assert_eq!(read_envelope(&mut cursor).unwrap(), payload);
        }
    }

    #[test]
    fn envelope_truncation_always_errors() {
        let framed = encode_envelope(b"some payload bytes");
        for cut in 0..framed.len() {
            assert!(decode_envelope(&framed[..cut]).is_err(), "prefix {cut}");
            let mut cursor = &framed[..cut];
            assert!(read_envelope(&mut cursor).is_err(), "stream prefix {cut}");
        }
    }

    #[test]
    fn envelope_header_corruption_always_errors() {
        let framed = encode_envelope(b"payload");
        for pos in 0..ENVELOPE_HEADER_LEN {
            for flip in [0x01u8, 0x80, 0xFF] {
                let mut corrupt = framed.clone();
                corrupt[pos] ^= flip;
                assert!(
                    decode_envelope(&corrupt).is_err(),
                    "header byte {pos} flip {flip:#x}"
                );
            }
        }
    }

    #[test]
    fn envelope_version_and_magic_are_typed() {
        let mut framed = encode_envelope(b"p");
        framed[0] = b'X';
        assert!(matches!(
            decode_envelope(&framed),
            Err(WireError::BadMagic { .. })
        ));
        let mut framed = encode_envelope(b"p");
        framed[4] = framed[4].wrapping_add(1);
        assert!(matches!(
            decode_envelope(&framed),
            Err(WireError::UnsupportedVersion { .. })
        ));
        let mut framed = encode_envelope(b"p");
        framed.push(0);
        assert!(matches!(
            decode_envelope(&framed),
            Err(WireError::Trailing { .. })
        ));
    }

    #[test]
    fn read_envelope_rejects_hostile_length_without_allocating_it() {
        let mut framed = encode_envelope(b"tiny");
        framed[6..14].copy_from_slice(&u64::MAX.to_le_bytes());
        let mut cursor = &framed[..];
        assert!(matches!(
            read_envelope(&mut cursor),
            Err(TransportError::Envelope { .. })
        ));
    }

    // ---------- fleet over an in-memory transport ----------

    /// Runs requests through the real worker-protocol core in-process,
    /// against a job that echoes each unit's bytes. Failure behaviour is
    /// injected per call index.
    struct Loopback<S: Fn(usize) -> Option<TransportError> + Send + Sync> {
        calls: AtomicUsize,
        inject: S,
    }

    struct EchoJob;
    impl WireJob for EchoJob {
        fn run_unit(&mut self, unit: &[u8]) -> Result<Vec<u8>, String> {
            if unit == b"poison" {
                Err("poisoned unit".to_string())
            } else {
                Ok(unit.to_vec())
            }
        }
    }

    impl<S: Fn(usize) -> Option<TransportError> + Send + Sync> Transport for Loopback<S> {
        fn call(&self, request: &[u8]) -> Result<Vec<u8>, TransportError> {
            let call = self.calls.fetch_add(1, Ordering::Relaxed);
            if let Some(e) = (self.inject)(call) {
                return Err(e);
            }
            shard::process_request(request, |_, _| Ok(Box::new(EchoJob)))
                .map_err(|diagnostic| TransportError::Io { diagnostic })
        }
        fn endpoint(&self) -> String {
            "loopback".to_string()
        }
    }

    fn loopback<S: Fn(usize) -> Option<TransportError> + Send + Sync>(
        inject: S,
    ) -> Box<Loopback<S>> {
        Box::new(Loopback {
            calls: AtomicUsize::new(0),
            inject,
        })
    }

    fn units(n: usize) -> Vec<Vec<u8>> {
        (0..n).map(|i| format!("unit-{i}").into_bytes()).collect()
    }

    #[test]
    fn fleet_merges_by_unit_index_across_host_counts() {
        let expected = units(97);
        for hosts in 1..=4 {
            let fleet = RemoteFleet::new(
                (0..hosts)
                    .map(|_| loopback(|_| None) as Box<dyn Transport>)
                    .collect(),
            );
            let got = fleet.run(7, b"job", &expected).unwrap();
            assert_eq!(got, expected, "{hosts} hosts");
        }
    }

    #[test]
    fn transient_failures_are_retried_to_an_identical_merge() {
        let expected = units(40);
        let fleet = RemoteFleet::new(vec![
            loopback(|call| {
                (call % 3 == 1).then(|| TransportError::Io {
                    diagnostic: "injected".to_string(),
                })
            }) as Box<dyn Transport>,
            loopback(|_| None) as Box<dyn Transport>,
        ])
        .with_chunk(2);
        let got = fleet.run(7, b"job", &expected).unwrap();
        assert_eq!(got, expected);
    }

    #[test]
    fn dead_host_requeues_onto_the_survivor() {
        let expected = units(30);
        let fleet = RemoteFleet::new(vec![
            loopback(|_| {
                Some(TransportError::Unreachable {
                    endpoint: "dead".to_string(),
                    diagnostic: "injected".to_string(),
                })
            }) as Box<dyn Transport>,
            loopback(|_| None) as Box<dyn Transport>,
        ])
        .with_chunk(3);
        let got = fleet.run(7, b"job", &expected).unwrap();
        assert_eq!(got, expected);
    }

    /// Regression: fast-failing dead hosts poll the retry queue far
    /// more often than a busy healthy host, but they must never burn a
    /// unit's whole retry budget between them — a unit is only
    /// exhausted once every live host has failed it. Two instant-fail
    /// hosts plus one healthy host, with the tightest budget, must
    /// still complete.
    #[test]
    fn dead_majority_cannot_exhaust_a_unit_the_healthy_host_never_saw() {
        let dead = || {
            loopback(|_| {
                Some(TransportError::Unreachable {
                    endpoint: "dead".to_string(),
                    diagnostic: "injected".to_string(),
                })
            }) as Box<dyn Transport>
        };
        let expected = units(40);
        for _ in 0..10 {
            let fleet = RemoteFleet::new(vec![dead(), dead(), loopback(|_| None)])
                .with_max_retries(1)
                .with_chunk(2);
            let got = fleet.run(7, b"job", &expected).unwrap();
            assert_eq!(got, expected);
        }
    }

    #[test]
    fn all_hosts_dead_is_a_lowest_indexed_unit_error() {
        let dead = || {
            loopback(|_| {
                Some(TransportError::Unreachable {
                    endpoint: "dead".to_string(),
                    diagnostic: "injected".to_string(),
                })
            }) as Box<dyn Transport>
        };
        let fleet = RemoteFleet::new(vec![dead(), dead()]).with_chunk(4);
        match fleet.run(7, b"job", &units(20)).unwrap_err() {
            PoolError::Unit { unit, diagnostic } => {
                assert_eq!(unit, 0, "lowest-indexed unit wins");
                assert!(!diagnostic.is_empty());
            }
            other => panic!("expected PoolError::Unit, got {other:?}"),
        }
    }

    #[test]
    fn workload_unit_errors_are_final_and_never_retried() {
        let calls = Arc::new(AtomicUsize::new(0));
        let seen = Arc::clone(&calls);
        let host = Box::new(Loopback {
            calls: AtomicUsize::new(0),
            inject: move |_| {
                seen.fetch_add(1, Ordering::Relaxed);
                None
            },
        });
        let fleet = RemoteFleet::new(vec![host]).with_chunk(64);
        let mut work = units(5);
        work[3] = b"poison".to_vec();
        match fleet.run(7, b"job", &work).unwrap_err() {
            PoolError::Unit { unit, diagnostic } => {
                assert_eq!(unit, 3);
                assert!(diagnostic.contains("poisoned unit"), "{diagnostic}");
            }
            other => panic!("expected PoolError::Unit, got {other:?}"),
        }
        assert_eq!(calls.load(Ordering::Relaxed), 1, "no retry of a unit error");
    }

    #[test]
    fn empty_unit_list_never_touches_a_host() {
        let touched = Arc::new(AtomicBool::new(false));
        let seen = Arc::clone(&touched);
        let host = Box::new(Loopback {
            calls: AtomicUsize::new(0),
            inject: move |_| {
                seen.store(true, Ordering::Relaxed);
                None
            },
        });
        let fleet = RemoteFleet::new(vec![host]);
        assert!(fleet.run(7, b"job", &[]).unwrap().is_empty());
        assert!(!touched.load(Ordering::Relaxed));
    }

    #[test]
    #[should_panic(expected = "at least one host")]
    fn empty_fleet_is_a_construction_error() {
        let _ = RemoteFleet::new(Vec::new());
    }

    // ---------- TCP transport negative paths ----------

    #[test]
    fn tcp_connect_refused_is_unreachable() {
        // Bind then drop to learn a port that is (momentarily) free.
        let addr = {
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            listener.local_addr().unwrap()
        };
        let t = TcpTransport::new(addr.to_string());
        assert!(matches!(
            t.call(b"request"),
            Err(TransportError::Unreachable { .. })
        ));
    }

    #[test]
    fn tcp_rogue_server_is_a_typed_envelope_error() {
        // A server that answers with garbage, then one that slams the
        // connection shut: both must be typed errors, never panics.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            for (i, stream) in listener.incoming().take(2).enumerate() {
                let mut stream = stream.unwrap();
                if i == 0 {
                    let _ = read_envelope(&mut stream);
                    let _ = stream.write_all(b"this is not an envelope at all!!");
                }
                // i == 1: drop the connection without reading or replying.
            }
        });
        let t = TcpTransport::new(addr).with_timeout(Some(Duration::from_secs(10)));
        assert!(matches!(
            t.call(b"request"),
            Err(TransportError::Envelope { .. })
        ));
        match t.call(b"request") {
            Err(TransportError::Envelope { .. } | TransportError::Io { .. }) => {}
            other => panic!("expected a typed transport error, got {other:?}"),
        }
        server.join().unwrap();
    }

    #[test]
    fn serve_tcp_round_trips_through_the_echo_job() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        std::thread::spawn(move || {
            let _ = serve_tcp(listener, |_, _| Ok(Box::new(EchoJob)));
        });
        let fleet = RemoteFleet::tcp([addr]).unwrap();
        let expected = units(12);
        let got = fleet.run(7, b"job", &expected).unwrap();
        assert_eq!(got, expected);
    }
}
