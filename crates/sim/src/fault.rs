//! Single-stuck-at fault simulation, PPSFP style: one packed pass
//! simulates the good machine on lane 0 and up to 63 faulty machines on
//! lanes 1–63, each fault injected as a per-lane force
//! ([`Simulator::force_lane`]).
//!
//! Passes are independent work units over the shared compiled program,
//! so [`grade_vectors`] describes them as an [`ExecWork`] and hands
//! them to [`Exec::dispatch`] — serial, thread-sharded or fanned across
//! `steac-worker` processes, the per-pass verdicts merge in fault-list
//! order and the reports are bit-identical on every backend.
//! [`fault_coverage`] drives an arbitrary test closure, which cannot
//! cross a process boundary, so it always runs on the backend's
//! in-process pool ([`Exec::local_threads`]).
//!
//! Used to check that generated DFT structures are themselves testable and
//! to grade scan/functional pattern sets in the examples and benches. The
//! memory-specific fault models (SAF/TF/CF/...) live in `steac-membist`;
//! this module covers the logic side.

use crate::engine::Simulator;
use crate::exec::{Exec, ExecWork};
use crate::logic::Logic;
use crate::packed::{
    mask_and, mask_bit, mask_none, mask_or, mask_range, LaneMask, PackedLogic, DEFAULT_LANE_GROUPS,
    LANES,
};
use crate::program::SimProgram;
use crate::shard::{self, PoolError};
use crate::wire;
use crate::SimError;
use std::fmt;
use std::sync::Arc;
use steac_netlist::{Module, NetId};

/// Faults simulated per classic 64-lane pass (lane 0 is the good
/// machine). Wide passes carry [`faults_per_pass`]`(groups)` faults.
pub const FAULTS_PER_PASS: usize = LANES - 1;

/// Faults simulated per `groups`-wide pass: lane 0 is the good machine,
/// every other one of the `groups`×64 lanes carries a fault (255 at the
/// default 4-group width).
#[must_use]
pub const fn faults_per_pass(groups: usize) -> usize {
    LANES * groups - 1
}

/// Lane-group widths the monomorphized grading kernels exist for.
pub const SUPPORTED_LANE_GROUPS: [usize; 4] = [1, 2, 4, 8];

/// Stuck-at polarity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StuckAt {
    /// Stuck-at-0.
    Zero,
    /// Stuck-at-1.
    One,
}

impl StuckAt {
    /// The logic value the fault forces.
    #[must_use]
    pub fn value(self) -> Logic {
        match self {
            StuckAt::Zero => Logic::Zero,
            StuckAt::One => Logic::One,
        }
    }
}

impl fmt::Display for StuckAt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StuckAt::Zero => f.write_str("SA0"),
            StuckAt::One => f.write_str("SA1"),
        }
    }
}

/// A single stuck-at fault on a net.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Fault {
    /// Faulty net.
    pub net: NetId,
    /// Polarity.
    pub stuck: StuckAt,
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}", self.stuck, self.net)
    }
}

/// Enumerates the collapsed-free fault list: every net stuck-at-0 and
/// stuck-at-1.
#[must_use]
pub fn enumerate_faults(m: &Module) -> Vec<Fault> {
    let mut v = Vec::with_capacity(m.nets.len() * 2);
    for i in 0..m.nets.len() {
        v.push(Fault {
            net: NetId(i as u32),
            stuck: StuckAt::Zero,
        });
        v.push(Fault {
            net: NetId(i as u32),
            stuck: StuckAt::One,
        });
    }
    v
}

/// Result of grading a pattern set against a fault list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoverageReport {
    /// Number of faults simulated.
    pub total: usize,
    /// Number of detected faults.
    pub detected: usize,
    /// Faults that escaped, for diagnosis.
    pub undetected: Vec<Fault>,
    /// Times process dispatch fell back to the in-thread pool while
    /// producing this report (0 unless the `Exec` runs a process
    /// backend under [`crate::exec::Fallback::InThread`] and that
    /// dispatch failed). The verdicts are unaffected — the fallback
    /// recomputes the identical report — but the degradation is
    /// recorded instead of silent.
    pub process_fallbacks: usize,
}

impl CoverageReport {
    /// Fault coverage in percent (100 for an empty fault list).
    #[must_use]
    pub fn coverage_percent(&self) -> f64 {
        if self.total == 0 {
            100.0
        } else {
            100.0 * self.detected as f64 / self.total as f64
        }
    }
}

impl fmt::Display for CoverageReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/{} faults detected ({:.2}%)",
            self.detected,
            self.total,
            self.coverage_percent()
        )?;
        if self.process_fallbacks > 0 {
            write!(
                f,
                " [process dispatch fell back in-thread x{}]",
                self.process_fallbacks
            )?;
        }
        Ok(())
    }
}

/// Accumulates, into a lane mask, the lanes whose observed value provably
/// differs from the good machine on lane 0 (both values known, values
/// differ — the masked-compare rule an ATE applies).
pub(crate) fn detection_lanes<const N: usize>(obs: PackedLogic<N>) -> LaneMask<N> {
    let ones = obs.is_one();
    let zeros = obs.is_zero();
    if mask_bit(&ones, 0) {
        zeros
    } else if mask_bit(&zeros, 0) {
        ones
    } else {
        mask_none()
    }
}

/// Folds per-fault detection flags (in fault-list order, from
/// [`shard::grade_in_passes`] or [`shard::flags_from_masks`]) into a
/// [`CoverageReport`]; `undetected` keeps exactly the order a
/// single-threaded pass-by-pass loop would produce.
fn report_from_flags(faults: &[Fault], flags: &[bool], process_fallbacks: usize) -> CoverageReport {
    let mut detected = 0usize;
    let mut undetected = Vec::new();
    for (&f, &hit) in faults.iter().zip(flags) {
        if hit {
            detected += 1;
        } else {
            undetected.push(f);
        }
    }
    CoverageReport {
        total: faults.len(),
        detected,
        undetected,
        process_fallbacks,
    }
}

/// Packed (PPSFP-style) fault simulation over an arbitrary test driver.
///
/// Faults are processed in groups of [`FAULTS_PER_PASS`]: lane 0 runs the
/// good machine, lanes 1–63 each run one faulty machine injected with a
/// per-lane force. Every pass is one work unit executed on a
/// worker-local [`Simulator`] over the shared compiled program.
/// `run_test` drives a simulator through the complete test (set inputs,
/// clock, scan, ...) using the ordinary scalar API — every scalar write
/// broadcasts to all lanes — and marks its observation points with
/// [`Simulator::observe`] / [`Simulator::observe_by_name`] (the scan and
/// cycle-player drivers do this already); it may run concurrently on
/// several workers, hence the `Fn + Sync` bound. A fault is detected if
/// any observed position differs from lane 0 where both values are
/// known.
///
/// Because `run_test` is an arbitrary closure, it cannot be serialized
/// to worker processes: this workload always executes on the backend's
/// **in-process** pool ([`Exec::local_threads`] — serial for
/// `Exec::serial()`, the thread width otherwise). Results are
/// bit-identical at every width.
///
/// The simulator handed to `run_test` starts from the all-`X` reset state
/// on every pass.
///
/// # Errors
///
/// Propagates errors from `run_test` and the engine (the lowest-indexed
/// failing pass wins, deterministically).
pub fn fault_coverage<F>(
    exec: &Exec,
    m: &Module,
    faults: &[Fault],
    run_test: F,
) -> Result<CoverageReport, SimError>
where
    F: Fn(&mut Simulator) -> Result<(), SimError> + Sync,
{
    let program = Arc::new(SimProgram::compile(m)?);
    let flags = shard::grade_in_passes(
        exec.local_threads(),
        faults,
        FAULTS_PER_PASS,
        1,
        |_, chunk| {
            let mut sim: Simulator = Simulator::from_program(Arc::clone(&program));
            sim.set_observing(true);
            for (i, f) in chunk.iter().enumerate() {
                sim.force_lane(f.net, i + 1, f.stuck.value());
            }
            run_test(&mut sim)?;
            let mut mask = 0u64;
            for obs in sim.take_observations() {
                mask |= detection_lanes(obs)[0];
            }
            Ok::<u64, SimError>(mask)
        },
    )?;
    Ok(report_from_flags(faults, &flags, 0))
}

pub(crate) fn validate_vectors(pins: &[NetId], vectors: &[Vec<Logic>]) -> Result<(), SimError> {
    for v in vectors {
        if v.len() != pins.len() {
            return Err(SimError::VectorLength {
                expected: pins.len(),
                got: v.len(),
            });
        }
    }
    Ok(())
}

/// One grading pass over a fault chunk — the exact code every backend
/// executes (inline, on a pool thread, or inside a `steac-worker`
/// process), so dispatch flavour can never change a verdict. Generic
/// over lane-group width: lane 0 is the good machine, lanes
/// `1..=chunk.len()` each carry one fault.
fn grade_chunk<const N: usize>(
    program: &Arc<SimProgram>,
    pins: &[NetId],
    vectors: &[Vec<Logic>],
    chunk: &[Fault],
) -> Result<LaneMask<N>, SimError> {
    let mut sim: Simulator<N> = Simulator::from_program(Arc::clone(program));
    for (i, f) in chunk.iter().enumerate() {
        sim.force_lane(f.net, i + 1, f.stuck.value());
    }
    // Lane mask with one bit per in-flight fault (≤ N×64 − 1 of them).
    let want = mask_range::<N>(1, chunk.len());
    let mut mask = mask_none::<N>();
    for vector in vectors {
        for (&pin, &v) in pins.iter().zip(vector) {
            sim.set(pin, v);
        }
        sim.settle()?;
        for &net in &sim.program().output_nets {
            mask = mask_or(mask, detection_lanes(sim.get_packed(net)));
        }
        if mask_and(mask, want) == want {
            break; // every fault in this pass dropped
        }
    }
    Ok(mask)
}

/// The [`ExecWork`] description of vector grading: one unit per
/// [`faults_per_pass`]`(N)` fault chunk, a job block carrying the
/// compiled program + lane-group width + pin list + vector set, and
/// `N`-word detection masks as unit results.
struct GradeWork<'a, const N: usize> {
    program: Arc<SimProgram>,
    pins: &'a [NetId],
    vectors: &'a [Vec<Logic>],
    chunks: Vec<&'a [Fault]>,
}

impl<const N: usize> ExecWork for GradeWork<'_, N> {
    type Output = LaneMask<N>;
    type Error = SimError;

    fn kind(&self) -> u16 {
        WIRE_KIND
    }

    fn unit_count(&self) -> usize {
        self.chunks.len()
    }

    fn encode_job(&self) -> Vec<u8> {
        encode_grade_job(&self.program, N as u8, self.pins, self.vectors)
    }

    fn encode_unit(&self, unit: usize) -> Vec<u8> {
        wire::encode_faults(self.chunks[unit])
    }

    fn run_unit_local(&self, unit: usize) -> Result<LaneMask<N>, SimError> {
        grade_chunk::<N>(&self.program, self.pins, self.vectors, self.chunks[unit])
    }

    fn decode_result(&self, _unit: usize, bytes: &[u8]) -> Result<LaneMask<N>, String> {
        decode_lane_mask::<N>(bytes)
    }

    fn pool_error(&self, error: PoolError) -> SimError {
        error.into()
    }
}

/// Serializes an `N`-word detection mask (unit-result payload).
pub(crate) fn encode_lane_mask<const N: usize>(mask: &LaneMask<N>) -> Vec<u8> {
    let mut out = Vec::with_capacity(N * 8);
    for w in mask {
        out.extend_from_slice(&w.to_le_bytes());
    }
    out
}

/// Deserializes an `N`-word detection mask (unit-result payload).
pub(crate) fn decode_lane_mask<const N: usize>(bytes: &[u8]) -> Result<LaneMask<N>, String> {
    if bytes.len() != N * 8 {
        return Err(format!(
            "result has {} bytes, expected {}",
            bytes.len(),
            N * 8
        ));
    }
    let mut mask = [0u64; N];
    for (w, c) in mask.iter_mut().zip(bytes.chunks_exact(8)) {
        *w = u64::from_le_bytes(c.try_into().expect("8-byte chunk"));
    }
    Ok(mask)
}

/// Packed grading of a static vector set applied to `pins` (set inputs,
/// settle, compare output ports — the classic combinational grading
/// loop), with **per-pass fault dropping**: once every fault of a pass
/// is detected, that worker skips the remaining vectors and pulls the
/// next pass.
///
/// The single entry point for every backend: `exec` decides whether
/// passes run inline, across threads or across `steac-worker`
/// processes ([`Exec::dispatch`]). Merging is by pass index in every
/// flavour, so the reports are byte-identical — the exec-matrix
/// integration test pins this.
///
/// # Errors
///
/// Propagates engine errors; process-backend failures surface as
/// [`SimError::Worker`] on the lowest-indexed failing pass (under
/// [`crate::exec::Fallback::Fail`]) or are recomputed in-thread and
/// recorded in [`CoverageReport::process_fallbacks`].
pub fn grade_vectors(
    exec: &Exec,
    m: &Module,
    faults: &[Fault],
    pins: &[NetId],
    vectors: &[Vec<Logic>],
) -> Result<CoverageReport, SimError> {
    grade_vectors_wide(exec, m, faults, pins, vectors, DEFAULT_LANE_GROUPS)
}

/// [`grade_vectors`] with an explicit lane-group width: each pass
/// carries the good machine plus [`faults_per_pass`]`(groups)` faults.
/// The verdicts (and the whole [`CoverageReport`]) are bit-identical at
/// every width — only the pass count, and therefore the throughput,
/// changes.
///
/// # Errors
///
/// [`SimError::UnsupportedWidth`] unless `groups` is one of
/// [`SUPPORTED_LANE_GROUPS`]; otherwise as [`grade_vectors`].
pub fn grade_vectors_wide(
    exec: &Exec,
    m: &Module,
    faults: &[Fault],
    pins: &[NetId],
    vectors: &[Vec<Logic>],
    groups: usize,
) -> Result<CoverageReport, SimError> {
    match groups {
        1 => grade_vectors_n::<1>(exec, m, faults, pins, vectors),
        2 => grade_vectors_n::<2>(exec, m, faults, pins, vectors),
        4 => grade_vectors_n::<4>(exec, m, faults, pins, vectors),
        8 => grade_vectors_n::<8>(exec, m, faults, pins, vectors),
        _ => Err(SimError::UnsupportedWidth { groups }),
    }
}

fn grade_vectors_n<const N: usize>(
    exec: &Exec,
    m: &Module,
    faults: &[Fault],
    pins: &[NetId],
    vectors: &[Vec<Logic>],
) -> Result<CoverageReport, SimError> {
    validate_vectors(pins, vectors)?;
    let per_pass = faults_per_pass(N);
    let program = Arc::new(SimProgram::compile(m)?);
    let work = GradeWork::<N> {
        program,
        pins,
        vectors,
        chunks: faults.chunks(per_pass).collect(),
    };
    let dispatched = exec.dispatch(&work)?;
    let flags = shard::flags_from_lane_masks(faults.len(), per_pass, 1, &dispatched.units);
    Ok(report_from_flags(
        faults,
        &flags,
        dispatched.fallback_count(),
    ))
}

// ---------- worker-side wire job ----------

/// Work-unit kind the worker-side job registry routes to
/// [`open_wire_job`]: vector grading of a fault chunk.
pub const WIRE_KIND: u16 = 1;

fn encode_grade_job(
    program: &SimProgram,
    groups: u8,
    pins: &[NetId],
    vectors: &[Vec<Logic>],
) -> Vec<u8> {
    let mut w = wire::WireWriter::new();
    w.put_block(&wire::encode_program(program));
    w.put_u8(groups);
    w.put_usize(pins.len());
    for pin in pins {
        w.put_u32(pin.0);
    }
    w.put_usize(vectors.len());
    for v in vectors {
        w.put_usize(v.len());
        for &value in v {
            w.put_logic(value);
        }
    }
    w.finish()
}

/// An opened vector-grading job inside a worker process, monomorphized
/// at the lane-group width the job header requested.
struct GradeJob<const N: usize> {
    program: Arc<SimProgram>,
    pins: Vec<NetId>,
    vectors: Vec<Vec<Logic>>,
}

impl<const N: usize> shard::WireJob for GradeJob<N> {
    fn run_unit(&mut self, unit: &[u8]) -> Result<Vec<u8>, String> {
        let chunk = wire::decode_faults(unit).map_err(|e| format!("fault unit: {e}"))?;
        let per_pass = faults_per_pass(N);
        if chunk.len() > per_pass {
            return Err(format!(
                "fault unit has {} faults, a pass holds at most {per_pass}",
                chunk.len()
            ));
        }
        for f in &chunk {
            if f.net.index() >= self.program.net_count {
                return Err(format!("fault net {} out of range", f.net));
            }
        }
        let mask = grade_chunk::<N>(&self.program, &self.pins, &self.vectors, &chunk)
            .map_err(|e| e.to_string())?;
        Ok(encode_lane_mask(&mask))
    }
}

/// Decodes a [`WIRE_KIND`] job block (compiled program + lane-group
/// width + pin list + vector set) into the executable job the worker
/// loop drives — the `steac-worker` side of [`grade_vectors`]' process
/// backend.
///
/// # Errors
///
/// A diagnostic on corrupt job bytes.
pub fn open_wire_job(job: &[u8]) -> Result<Box<dyn shard::WireJob>, String> {
    let mut r = wire::WireReader::new(job);
    let program = wire::decode_program(
        r.get_block("grade job program")
            .map_err(|e| e.to_string())?,
    )
    .map_err(|e| format!("grade job program: {e}"))?;
    let fail = |e: wire::WireError| format!("grade job: {e}");
    let groups = r.get_u8("grade job lane groups").map_err(fail)?;
    let pin_count = r.get_count("grade job pins", 4).map_err(fail)?;
    let mut pins = Vec::with_capacity(pin_count);
    for _ in 0..pin_count {
        let net = r.get_u32("grade job pin").map_err(fail)?;
        if net as usize >= program.net_count {
            return Err(format!("grade job pin net {net} out of range"));
        }
        pins.push(NetId(net));
    }
    let vector_count = r.get_count("grade job vectors", 8).map_err(fail)?;
    let mut vectors = Vec::with_capacity(vector_count);
    for _ in 0..vector_count {
        let len = r.get_count("grade job vector", 1).map_err(fail)?;
        if len != pins.len() {
            return Err(format!(
                "grade job vector has {len} values, pin list has {}",
                pins.len()
            ));
        }
        let mut v = Vec::with_capacity(len);
        for _ in 0..len {
            v.push(r.get_logic("grade job vector value").map_err(fail)?);
        }
        vectors.push(v);
    }
    r.finish().map_err(fail)?;
    let program = Arc::new(program);
    Ok(match groups as usize {
        1 => Box::new(GradeJob::<1> {
            program,
            pins,
            vectors,
        }),
        2 => Box::new(GradeJob::<2> {
            program,
            pins,
            vectors,
        }),
        4 => Box::new(GradeJob::<4> {
            program,
            pins,
            vectors,
        }),
        8 => Box::new(GradeJob::<8> {
            program,
            pins,
            vectors,
        }),
        _ => return Err(format!("grade job lane-group width {groups} unsupported")),
    })
}

/// Serial reference implementation: one full simulation per fault, as the
/// original interpreter did. Kept strictly as the differential-test and
/// benchmark oracle — production callers use [`fault_coverage`] /
/// [`grade_vectors`] with an [`Exec`].
///
/// `run_test` returns the stream of observed lane-0 values; a fault is
/// detected when any position differs from the good run where both values
/// are known.
///
/// # Errors
///
/// Propagates errors from `run_test`; the good-machine run is performed
/// first.
#[doc(hidden)]
pub fn fault_coverage_serial<F>(
    m: &Module,
    faults: &[Fault],
    mut run_test: F,
) -> Result<CoverageReport, SimError>
where
    F: FnMut(&mut Simulator) -> Result<Vec<Logic>, SimError>,
{
    let mut good_sim = Simulator::new(m)?;
    let good = run_test(&mut good_sim)?;
    let mut detected = 0usize;
    let mut undetected = Vec::new();
    for &fault in faults {
        let mut sim: Simulator = Simulator::new(m)?;
        sim.force(fault.net, fault.stuck.value());
        let observed = run_test(&mut sim)?;
        let diff = good
            .iter()
            .zip(observed.iter())
            .any(|(g, o)| g.is_known() && o.is_known() && g != o);
        if diff {
            detected += 1;
        } else {
            undetected.push(fault);
        }
    }
    Ok(CoverageReport {
        total: faults.len(),
        detected,
        undetected,
        process_fallbacks: 0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shard::Threads;
    use steac_netlist::{GateKind, NetlistBuilder};

    fn exec() -> Exec {
        Exec::from_env()
    }

    fn and2() -> Module {
        let mut b = NetlistBuilder::new("m");
        let a = b.input("a");
        let c = b.input("b");
        let y = b.gate(GateKind::And2, &[a, c]);
        b.output("y", y);
        b.finish().unwrap()
    }

    fn exhaustive_and2_driver(sim: &mut Simulator) -> Result<(), SimError> {
        for (va, vb) in [(0, 0), (0, 1), (1, 0), (1, 1)] {
            sim.set_by_name("a", Logic::from(va == 1))?;
            sim.set_by_name("b", Logic::from(vb == 1))?;
            sim.settle()?;
            sim.observe_by_name("y")?;
        }
        Ok(())
    }

    /// Exhaustive 2-input test of an AND gate detects every stuck-at.
    #[test]
    fn exhaustive_patterns_give_full_coverage_on_and2() {
        let m = and2();
        let faults = enumerate_faults(&m);
        let rep = fault_coverage(&exec(), &m, &faults, exhaustive_and2_driver).unwrap();
        assert_eq!(rep.coverage_percent(), 100.0, "{rep}");
    }

    /// A single pattern cannot catch everything on an XOR cone.
    #[test]
    fn single_pattern_leaves_escapes() {
        let mut b = NetlistBuilder::new("m");
        let a = b.input("a");
        let c = b.input("b");
        let y = b.gate(GateKind::Xor2, &[a, c]);
        b.output("y", y);
        let m = b.finish().unwrap();
        let faults = enumerate_faults(&m);
        let rep = fault_coverage(&exec(), &m, &faults, |sim| {
            sim.set_by_name("a", Logic::One)?;
            sim.set_by_name("b", Logic::Zero)?;
            sim.settle()?;
            sim.observe_by_name("y")?;
            Ok(())
        })
        .unwrap();
        assert!(rep.detected > 0);
        assert!(rep.detected < rep.total, "{rep}");
        assert_eq!(rep.undetected.len(), rep.total - rep.detected);
    }

    #[test]
    fn coverage_of_empty_fault_list_is_100() {
        let mut b = NetlistBuilder::new("m");
        let a = b.input("a");
        b.output("y", a);
        let m = b.finish().unwrap();
        let rep = fault_coverage(&exec(), &m, &[], |sim| {
            sim.settle()?;
            Ok(())
        })
        .unwrap();
        assert_eq!(rep.coverage_percent(), 100.0);
    }

    /// The packed pass and the serial reference agree fault-for-fault.
    #[test]
    fn packed_matches_serial_reference() {
        let m = and2();
        let faults = enumerate_faults(&m);
        let packed = fault_coverage(&exec(), &m, &faults, exhaustive_and2_driver).unwrap();
        let serial = fault_coverage_serial(&m, &faults, |sim| {
            let mut obs = Vec::new();
            for (va, vb) in [(0, 0), (0, 1), (1, 0), (1, 1)] {
                sim.set_by_name("a", Logic::from(va == 1))?;
                sim.set_by_name("b", Logic::from(vb == 1))?;
                sim.settle()?;
                obs.push(sim.get_by_name("y")?);
            }
            Ok(obs)
        })
        .unwrap();
        assert_eq!(packed.detected, serial.detected);
        assert_eq!(packed.undetected, serial.undetected);
    }

    /// More than one pass: a chain of inverters has > 63 net faults, so
    /// chunking across passes must still find everything detectable.
    #[test]
    fn multi_pass_chunking_covers_long_chains() {
        let mut b = NetlistBuilder::new("m");
        let a = b.input("a");
        let mut cur = a;
        for _ in 0..80 {
            cur = b.gate(GateKind::Inv, &[cur]);
        }
        b.output("y", cur);
        let m = b.finish().unwrap();
        let faults = enumerate_faults(&m);
        assert!(faults.len() > 2 * FAULTS_PER_PASS);
        let rep = fault_coverage(&exec(), &m, &faults, |sim| {
            for v in [Logic::Zero, Logic::One] {
                sim.set_by_name("a", v)?;
                sim.settle()?;
                sim.observe_by_name("y")?;
            }
            Ok(())
        })
        .unwrap();
        assert_eq!(rep.coverage_percent(), 100.0, "{rep}");
    }

    #[test]
    fn grade_vectors_detects_and_drops() {
        let m = and2();
        let faults = enumerate_faults(&m);
        let pins = [m.port("a").unwrap().net, m.port("b").unwrap().net];
        use Logic::{One, Zero};
        let vectors = vec![
            vec![Zero, Zero],
            vec![Zero, One],
            vec![One, Zero],
            vec![One, One],
        ];
        let rep = grade_vectors(&exec(), &m, &faults, &pins, &vectors).unwrap();
        assert_eq!(rep.coverage_percent(), 100.0, "{rep}");
        // Fewer vectors leave escapes, and the report accounts for them.
        let rep = grade_vectors(&exec(), &m, &faults, &pins, &vectors[..1]).unwrap();
        assert!(rep.detected < rep.total);
        assert_eq!(rep.undetected.len(), rep.total - rep.detected);
    }

    /// Grading is bit-identical (counts AND `undetected` order) on the
    /// serial backend and at every thread count — the merge-by-unit-index
    /// contract behind one `Exec` seam.
    #[test]
    fn grading_is_backend_invariant_in_process() {
        let mut b = NetlistBuilder::new("m");
        let a = b.input("a");
        let mut cur = a;
        for i in 0..70 {
            cur = if i % 3 == 0 {
                b.gate(GateKind::Inv, &[cur])
            } else {
                b.gate(GateKind::Nand2, &[cur, a])
            };
        }
        b.output("y", cur);
        let m = b.finish().unwrap();
        let faults = enumerate_faults(&m);
        let pins = [m.port("a").unwrap().net];
        let vectors = vec![vec![Logic::Zero], vec![Logic::One]];
        let baseline = grade_vectors(&Exec::serial(), &m, &faults, &pins, &vectors).unwrap();
        for t in 1..=8 {
            let sharded = grade_vectors(
                &Exec::threads(Threads::exact(t)),
                &m,
                &faults,
                &pins,
                &vectors,
            )
            .unwrap();
            assert_eq!(sharded, baseline, "{t} threads");
        }
        let cov = fault_coverage(&Exec::threads(Threads::exact(4)), &m, &faults, |sim| {
            for v in [Logic::Zero, Logic::One] {
                sim.set_by_name("a", v)?;
                sim.settle()?;
                sim.observe_by_name("y")?;
            }
            Ok(())
        })
        .unwrap();
        assert_eq!(cov.detected, baseline.detected);
        assert_eq!(cov.undetected, baseline.undetected);
    }

    #[test]
    fn grade_vectors_validates_lengths() {
        let m = and2();
        let pins = [m.port("a").unwrap().net, m.port("b").unwrap().net];
        let bad = vec![vec![Logic::Zero]];
        assert!(matches!(
            grade_vectors(&exec(), &m, &enumerate_faults(&m), &pins, &bad),
            Err(SimError::VectorLength { .. })
        ));
    }
}
