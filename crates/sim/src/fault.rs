//! Single-stuck-at fault simulation.
//!
//! Used to check that generated DFT structures are themselves testable and
//! to grade scan/functional pattern sets in the examples and benches. The
//! memory-specific fault models (SAF/TF/CF/...) live in `steac-membist`;
//! this module covers the logic side.

use crate::engine::Simulator;
use crate::logic::Logic;
use crate::SimError;
use std::fmt;
use steac_netlist::{Module, NetId};

/// Stuck-at polarity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StuckAt {
    /// Stuck-at-0.
    Zero,
    /// Stuck-at-1.
    One,
}

impl StuckAt {
    /// The logic value the fault forces.
    #[must_use]
    pub fn value(self) -> Logic {
        match self {
            StuckAt::Zero => Logic::Zero,
            StuckAt::One => Logic::One,
        }
    }
}

impl fmt::Display for StuckAt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StuckAt::Zero => f.write_str("SA0"),
            StuckAt::One => f.write_str("SA1"),
        }
    }
}

/// A single stuck-at fault on a net.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Fault {
    /// Faulty net.
    pub net: NetId,
    /// Polarity.
    pub stuck: StuckAt,
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}", self.stuck, self.net)
    }
}

/// Enumerates the collapsed-free fault list: every net stuck-at-0 and
/// stuck-at-1.
#[must_use]
pub fn enumerate_faults(m: &Module) -> Vec<Fault> {
    let mut v = Vec::with_capacity(m.nets.len() * 2);
    for i in 0..m.nets.len() {
        v.push(Fault {
            net: NetId(i as u32),
            stuck: StuckAt::Zero,
        });
        v.push(Fault {
            net: NetId(i as u32),
            stuck: StuckAt::One,
        });
    }
    v
}

/// Result of grading a pattern set against a fault list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoverageReport {
    /// Number of faults simulated.
    pub total: usize,
    /// Number of detected faults.
    pub detected: usize,
    /// Faults that escaped, for diagnosis.
    pub undetected: Vec<Fault>,
}

impl CoverageReport {
    /// Fault coverage in percent (100 for an empty fault list).
    #[must_use]
    pub fn coverage_percent(&self) -> f64 {
        if self.total == 0 {
            100.0
        } else {
            100.0 * self.detected as f64 / self.total as f64
        }
    }
}

impl fmt::Display for CoverageReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/{} faults detected ({:.2}%)",
            self.detected,
            self.total,
            self.coverage_percent()
        )
    }
}

/// Serial fault simulation.
///
/// `run_test` drives the simulator through the complete test (set inputs,
/// clock, scan, ...) and returns the stream of observed values (whatever
/// the test observes: PO samples, scan-out bits...). The fault is detected
/// if any position of the faulty response differs from the good response
/// at a position where the good value is known.
///
/// # Errors
///
/// Propagates errors from `run_test`; the good-machine run is performed
/// first.
pub fn fault_coverage<F>(
    m: &Module,
    faults: &[Fault],
    mut run_test: F,
) -> Result<CoverageReport, SimError>
where
    F: FnMut(&mut Simulator<'_>) -> Result<Vec<Logic>, SimError>,
{
    let mut good_sim = Simulator::new(m)?;
    let good = run_test(&mut good_sim)?;
    let mut detected = 0usize;
    let mut undetected = Vec::new();
    for &fault in faults {
        let mut sim = Simulator::new(m)?;
        sim.force(fault.net, fault.stuck.value());
        let observed = run_test(&mut sim)?;
        let diff = good.iter().zip(observed.iter()).any(|(g, o)| {
            g.is_known() && o.is_known() && g != o
        });
        if diff {
            detected += 1;
        } else {
            undetected.push(fault);
        }
    }
    Ok(CoverageReport {
        total: faults.len(),
        detected,
        undetected,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use steac_netlist::{GateKind, NetlistBuilder};

    /// Exhaustive 2-input test of an AND gate detects every stuck-at.
    #[test]
    fn exhaustive_patterns_give_full_coverage_on_and2() {
        let mut b = NetlistBuilder::new("m");
        let a = b.input("a");
        let c = b.input("b");
        let y = b.gate(GateKind::And2, &[a, c]);
        b.output("y", y);
        let m = b.finish().unwrap();
        let faults = enumerate_faults(&m);
        let rep = fault_coverage(&m, &faults, |sim| {
            let mut obs = Vec::new();
            for (va, vb) in [(0, 0), (0, 1), (1, 0), (1, 1)] {
                sim.set_by_name("a", Logic::from(va == 1))?;
                sim.set_by_name("b", Logic::from(vb == 1))?;
                sim.settle()?;
                obs.push(sim.get_by_name("y")?);
            }
            Ok(obs)
        })
        .unwrap();
        assert_eq!(rep.coverage_percent(), 100.0, "{rep}");
    }

    /// A single pattern cannot catch everything on an XOR cone.
    #[test]
    fn single_pattern_leaves_escapes() {
        let mut b = NetlistBuilder::new("m");
        let a = b.input("a");
        let c = b.input("b");
        let y = b.gate(GateKind::Xor2, &[a, c]);
        b.output("y", y);
        let m = b.finish().unwrap();
        let faults = enumerate_faults(&m);
        let rep = fault_coverage(&m, &faults, |sim| {
            sim.set_by_name("a", Logic::One)?;
            sim.set_by_name("b", Logic::Zero)?;
            sim.settle()?;
            Ok(vec![sim.get_by_name("y")?])
        })
        .unwrap();
        assert!(rep.detected > 0);
        assert!(rep.detected < rep.total, "{rep}");
        assert_eq!(rep.undetected.len(), rep.total - rep.detected);
    }

    #[test]
    fn coverage_of_empty_fault_list_is_100() {
        let mut b = NetlistBuilder::new("m");
        let a = b.input("a");
        b.output("y", a);
        let m = b.finish().unwrap();
        let rep = fault_coverage(&m, &[], |sim| {
            sim.settle()?;
            Ok(vec![])
        })
        .unwrap();
        assert_eq!(rep.coverage_percent(), 100.0);
    }
}
