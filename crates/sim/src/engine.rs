//! The simulation engine: levelized 4-value evaluation with clock-edge
//! detection, asynchronous resets, transparent latches and net forcing
//! (used for fault injection).

use crate::logic::Logic;
use crate::SimError;
use steac_netlist::{combinational_order, CellContents, GateKind, Module, NetId, PortDir};

/// Iteration budget for latch/feedback fixpoints within one settle call.
const MAX_SETTLE_ITERS: usize = 1024;

/// Gate-level simulator over a flat [`Module`].
///
/// The simulator owns per-net values and per-flop state. Clocks are just
/// nets: after every [`settle`](Simulator::settle) the engine compares each
/// flop's clock-net value against the previous settled value and captures
/// on rising edges, so gated clocks, divided clocks and ripple counters
/// simulate correctly.
#[derive(Debug, Clone)]
pub struct Simulator<'m> {
    module: &'m Module,
    values: Vec<Logic>,
    forced: Vec<Option<Logic>>,
    flop_state: Vec<Logic>,
    latch_state: Vec<Logic>,
    prev_ck: Vec<Logic>,
    initialized: bool,
    comb_order: Vec<usize>,
    flops: Vec<usize>,
    /// Total rising-edge captures performed (statistics).
    captures: u64,
}

impl<'m> Simulator<'m> {
    /// Prepares a simulator for a flat module (no [`CellContents::Inst`]
    /// cells; flatten hierarchical designs first).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Netlist`] if the module has multiple drivers or
    /// a combinational loop.
    pub fn new(module: &'m Module) -> Result<Self, SimError> {
        let order = combinational_order(module)?;
        let mut flops = Vec::new();
        for (i, c) in module.cells.iter().enumerate() {
            if let CellContents::Gate { kind, .. } = &c.contents {
                if kind.is_flop() {
                    flops.push(i);
                }
            }
        }
        Ok(Simulator {
            module,
            values: vec![Logic::X; module.nets.len()],
            forced: vec![None; module.nets.len()],
            flop_state: vec![Logic::X; module.cells.len()],
            latch_state: vec![Logic::X; module.cells.len()],
            prev_ck: vec![Logic::X; module.cells.len()],
            initialized: false,
            comb_order: order.iter().map(|c| c.index()).collect(),
            flops,
            captures: 0,
        })
    }

    /// The module being simulated.
    #[must_use]
    pub fn module(&self) -> &Module {
        self.module
    }

    /// Number of rising-edge captures performed so far.
    #[must_use]
    pub fn capture_count(&self) -> u64 {
        self.captures
    }

    /// Sets a net value directly (normally an input-port net). A forced
    /// net (see [`force`](Simulator::force)) keeps its forced value.
    pub fn set(&mut self, net: NetId, v: Logic) {
        self.values[net.index()] = self.forced[net.index()].unwrap_or(v);
    }

    /// Sets an input by port name.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownName`] if no such port exists.
    pub fn set_by_name(&mut self, name: &str, v: Logic) -> Result<(), SimError> {
        let port = self
            .module
            .port(name)
            .ok_or_else(|| SimError::UnknownName {
                name: name.to_string(),
            })?;
        let net = port.net;
        self.set(net, v);
        Ok(())
    }

    /// Reads a net value.
    #[must_use]
    pub fn get(&self, net: NetId) -> Logic {
        self.values[net.index()]
    }

    /// Reads a value by port name.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownName`] if no such port exists.
    pub fn get_by_name(&self, name: &str) -> Result<Logic, SimError> {
        let port = self
            .module
            .port(name)
            .ok_or_else(|| SimError::UnknownName {
                name: name.to_string(),
            })?;
        Ok(self.values[port.net.index()])
    }

    /// Forces a net to a value until [`unforce`](Simulator::unforce) — the
    /// mechanism used for stuck-at fault injection. Takes effect
    /// immediately and overrides both drivers and [`set`](Simulator::set).
    pub fn force(&mut self, net: NetId, v: Logic) {
        self.forced[net.index()] = Some(v);
        self.values[net.index()] = v;
    }

    /// Removes a force.
    pub fn unforce(&mut self, net: NetId) {
        self.forced[net.index()] = None;
    }

    /// Reads all output-port values in port order.
    #[must_use]
    pub fn outputs(&self) -> Vec<Logic> {
        self.module
            .ports_with_dir(PortDir::Output)
            .map(|p| self.values[p.net.index()])
            .collect()
    }

    fn eval_gate(&self, kind: GateKind, inputs: &[NetId], cell_idx: usize) -> Logic {
        let v = |i: usize| self.values[inputs[i].index()];
        match kind {
            GateKind::Inv => v(0).not(),
            GateKind::Buf => match v(0) {
                Logic::Z => Logic::X,
                x => x,
            },
            GateKind::Nand2 => v(0).and(v(1)).not(),
            GateKind::Nand3 => v(0).and(v(1)).and(v(2)).not(),
            GateKind::Nand4 => v(0).and(v(1)).and(v(2)).and(v(3)).not(),
            GateKind::Nor2 => v(0).or(v(1)).not(),
            GateKind::Nor3 => v(0).or(v(1)).or(v(2)).not(),
            GateKind::And2 => v(0).and(v(1)),
            GateKind::And3 => v(0).and(v(1)).and(v(2)),
            GateKind::Or2 => v(0).or(v(1)),
            GateKind::Or3 => v(0).or(v(1)).or(v(2)),
            GateKind::Xor2 => v(0).xor(v(1)),
            GateKind::Xnor2 => v(0).xor(v(1)).not(),
            GateKind::Mux2 => Logic::mux(v(0), v(1), v(2)),
            GateKind::Tie0 => Logic::Zero,
            GateKind::Tie1 => Logic::One,
            GateKind::Dff | GateKind::DffR | GateKind::Sdff | GateKind::SdffR => {
                self.flop_state[cell_idx]
            }
            GateKind::Latch => self.latch_state[cell_idx],
            _ => Logic::X,
        }
    }

    fn write_net(&mut self, net: NetId, v: Logic) -> bool {
        let v = self.forced[net.index()].unwrap_or(v);
        if self.values[net.index()] != v {
            self.values[net.index()] = v;
            true
        } else {
            false
        }
    }

    /// One evaluation sweep; returns whether any net changed.
    fn sweep(&mut self) -> bool {
        let mut changed = false;
        // Apply asynchronous resets and drive flop/latch outputs first.
        for idx in 0..self.module.cells.len() {
            if let CellContents::Gate {
                kind,
                inputs,
                output,
            } = &self.module.cells[idx].contents
            {
                match kind {
                    GateKind::DffR | GateKind::SdffR => {
                        let rstn = self.values[inputs[inputs.len() - 1].index()];
                        if rstn == Logic::Zero {
                            self.flop_state[idx] = Logic::Zero;
                        } else if !rstn.is_known() && self.flop_state[idx] != Logic::Zero {
                            self.flop_state[idx] = Logic::X;
                        }
                        changed |= self.write_net(*output, self.flop_state[idx]);
                    }
                    GateKind::Dff | GateKind::Sdff => {
                        changed |= self.write_net(*output, self.flop_state[idx]);
                    }
                    GateKind::Latch => {
                        let d = self.values[inputs[0].index()];
                        let en = self.values[inputs[1].index()];
                        match en {
                            Logic::One => self.latch_state[idx] = d,
                            Logic::Zero => {}
                            _ => {
                                if self.latch_state[idx] != d {
                                    self.latch_state[idx] = Logic::X;
                                }
                            }
                        }
                        changed |= self.write_net(*output, self.latch_state[idx]);
                    }
                    _ => {}
                }
            }
        }
        // Combinational gates in topological order.
        for oi in 0..self.comb_order.len() {
            let idx = self.comb_order[oi];
            if let CellContents::Gate {
                kind,
                inputs,
                output,
            } = &self.module.cells[idx].contents
            {
                let v = self.eval_gate(*kind, inputs, idx);
                changed |= self.write_net(*output, v);
            }
        }
        changed
    }

    /// Evaluates the netlist to a fixpoint, then performs rising-edge
    /// captures on flip-flops, repeating until globally stable.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Unstable`] if a feedback structure oscillates.
    pub fn settle(&mut self) -> Result<(), SimError> {
        for _ in 0..MAX_SETTLE_ITERS {
            // Inner fixpoint: combinational + latches.
            let mut stable = false;
            for _ in 0..MAX_SETTLE_ITERS {
                if !self.sweep() {
                    stable = true;
                    break;
                }
            }
            if !stable {
                return Err(SimError::Unstable {
                    iterations: MAX_SETTLE_ITERS,
                });
            }
            // Edge detection.
            let mut any_capture = false;
            for fi in 0..self.flops.len() {
                let idx = self.flops[fi];
                if let CellContents::Gate { kind, inputs, .. } =
                    &self.module.cells[idx].contents
                {
                    let ck_pin = match kind {
                        GateKind::Dff | GateKind::DffR => 1,
                        GateKind::Sdff | GateKind::SdffR => 3,
                        _ => unreachable!(),
                    };
                    let now = self.values[inputs[ck_pin].index()];
                    let prev = self.prev_ck[idx];
                    let capture = if !self.initialized {
                        None
                    } else if prev == Logic::Zero && now == Logic::One {
                        // True rising edge: sample D (or SI under scan).
                        let d = self.values[inputs[0].index()];
                        let next = match kind {
                            GateKind::Dff | GateKind::DffR => d,
                            GateKind::Sdff | GateKind::SdffR => {
                                let si = self.values[inputs[1].index()];
                                let se = self.values[inputs[2].index()];
                                Logic::mux(d, si, se)
                            }
                            _ => unreachable!(),
                        };
                        Some(next)
                    } else if (prev == Logic::Zero && !now.is_known())
                        || (!prev.is_known() && now == Logic::One)
                    {
                        Some(Logic::X)
                    } else {
                        None
                    };
                    if prev != now {
                        self.prev_ck[idx] = now;
                    }
                    if let Some(next) = capture {
                        // Async reset dominates the clock.
                        let reset_active = matches!(kind, GateKind::DffR | GateKind::SdffR)
                            && self.values[inputs[inputs.len() - 1].index()] == Logic::Zero;
                        if !reset_active && self.flop_state[idx] != next {
                            self.flop_state[idx] = next;
                            any_capture = true;
                        }
                        self.captures += 1;
                    }
                }
            }
            if !self.initialized {
                self.initialized = true;
                // Seed prev_ck with the settled values so the first real
                // clock pulse is a clean 0->1 edge.
                continue;
            }
            if !any_capture {
                return Ok(());
            }
        }
        Err(SimError::Unstable {
            iterations: MAX_SETTLE_ITERS,
        })
    }

    /// Applies a full clock cycle on `clock`: drive 0, settle, drive 1,
    /// settle (captures happen here), drive 0, settle.
    ///
    /// # Errors
    ///
    /// Propagates [`SimError::Unstable`].
    pub fn clock_cycle(&mut self, clock: NetId) -> Result<(), SimError> {
        self.set(clock, Logic::Zero);
        self.settle()?;
        self.set(clock, Logic::One);
        self.settle()?;
        self.set(clock, Logic::Zero);
        self.settle()
    }

    /// [`clock_cycle`](Self::clock_cycle) by port name.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownName`] for a bad name and propagates
    /// [`SimError::Unstable`].
    pub fn clock_cycle_by_name(&mut self, name: &str) -> Result<(), SimError> {
        let net = self
            .module
            .port(name)
            .ok_or_else(|| SimError::UnknownName {
                name: name.to_string(),
            })?
            .net;
        self.clock_cycle(net)
    }

    /// Applies one clock cycle on several clocks simultaneously (multi
    /// clock-domain step): all low, settle, all high, settle, all low.
    ///
    /// # Errors
    ///
    /// Propagates [`SimError::Unstable`].
    pub fn clock_cycle_multi(&mut self, clocks: &[NetId]) -> Result<(), SimError> {
        for &c in clocks {
            self.set(c, Logic::Zero);
        }
        self.settle()?;
        for &c in clocks {
            self.set(c, Logic::One);
        }
        self.settle()?;
        for &c in clocks {
            self.set(c, Logic::Zero);
        }
        self.settle()
    }

    /// Resets all state (net values, flop/latch state) to `X`.
    pub fn reset_to_x(&mut self) {
        self.values.fill(Logic::X);
        self.flop_state.fill(Logic::X);
        self.latch_state.fill(Logic::X);
        self.prev_ck.fill(Logic::X);
        self.initialized = false;
        self.captures = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use steac_netlist::NetlistBuilder;

    #[test]
    fn combinational_evaluation() {
        let mut b = NetlistBuilder::new("m");
        let a = b.input("a");
        let c = b.input("b");
        let y = b.gate(GateKind::Nand2, &[a, c]);
        b.output("y", y);
        let m = b.finish().unwrap();
        let mut sim = Simulator::new(&m).unwrap();
        sim.set_by_name("a", Logic::One).unwrap();
        sim.set_by_name("b", Logic::One).unwrap();
        sim.settle().unwrap();
        assert_eq!(sim.get_by_name("y").unwrap(), Logic::Zero);
        sim.set_by_name("b", Logic::Zero).unwrap();
        sim.settle().unwrap();
        assert_eq!(sim.get_by_name("y").unwrap(), Logic::One);
    }

    #[test]
    fn dff_captures_on_rising_edge_only() {
        let mut b = NetlistBuilder::new("m");
        let d = b.input("d");
        let ck = b.input("ck");
        let q = b.gate(GateKind::Dff, &[d, ck]);
        b.output("q", q);
        let m = b.finish().unwrap();
        let mut sim = Simulator::new(&m).unwrap();
        sim.set_by_name("d", Logic::One).unwrap();
        sim.set_by_name("ck", Logic::Zero).unwrap();
        sim.settle().unwrap();
        assert_eq!(sim.get_by_name("q").unwrap(), Logic::X); // not clocked yet
        sim.clock_cycle_by_name("ck").unwrap();
        assert_eq!(sim.get_by_name("q").unwrap(), Logic::One);
        // Falling edge must not capture.
        sim.set_by_name("d", Logic::Zero).unwrap();
        sim.set_by_name("ck", Logic::Zero).unwrap();
        sim.settle().unwrap();
        assert_eq!(sim.get_by_name("q").unwrap(), Logic::One);
    }

    #[test]
    fn async_reset_dominates() {
        let mut b = NetlistBuilder::new("m");
        let d = b.input("d");
        let ck = b.input("ck");
        let rstn = b.input("rstn");
        let q = b.gate(GateKind::DffR, &[d, ck, rstn]);
        b.output("q", q);
        let m = b.finish().unwrap();
        let mut sim = Simulator::new(&m).unwrap();
        sim.set_by_name("d", Logic::One).unwrap();
        sim.set_by_name("rstn", Logic::Zero).unwrap();
        sim.clock_cycle_by_name("ck").unwrap();
        assert_eq!(sim.get_by_name("q").unwrap(), Logic::Zero);
        sim.set_by_name("rstn", Logic::One).unwrap();
        sim.clock_cycle_by_name("ck").unwrap();
        assert_eq!(sim.get_by_name("q").unwrap(), Logic::One);
    }

    #[test]
    fn ripple_counter_divides_clock() {
        // Two DFFRs in ripple configuration: q1 clocks on falling q0 via
        // inverter. After 4 input cycles, q1 has toggled twice.
        let mut b = NetlistBuilder::new("m");
        let ck = b.input("ck");
        let rstn = b.input("rstn");
        let q0 = b.net("q0");
        let d0 = b.gate(GateKind::Inv, &[q0]);
        b.gate_into(GateKind::DffR, &[d0, ck, rstn], q0);
        let ck1 = b.gate(GateKind::Inv, &[q0]);
        let q1 = b.net("q1");
        let d1 = b.gate(GateKind::Inv, &[q1]);
        b.gate_into(GateKind::DffR, &[d1, ck1, rstn], q1);
        b.output("q0", q0);
        b.output("q1", q1);
        let m = b.finish().unwrap();
        let mut sim = Simulator::new(&m).unwrap();
        sim.set_by_name("rstn", Logic::Zero).unwrap();
        sim.set_by_name("ck", Logic::Zero).unwrap();
        sim.settle().unwrap();
        sim.set_by_name("rstn", Logic::One).unwrap();
        sim.settle().unwrap();
        let mut seq = Vec::new();
        for _ in 0..4 {
            sim.clock_cycle_by_name("ck").unwrap();
            seq.push((
                sim.get_by_name("q0").unwrap(),
                sim.get_by_name("q1").unwrap(),
            ));
        }
        use Logic::{One, Zero};
        assert_eq!(
            seq,
            vec![(One, Zero), (Zero, One), (One, One), (Zero, Zero)]
        );
    }

    #[test]
    fn scan_flop_shifts_under_se() {
        let mut b = NetlistBuilder::new("m");
        let d = b.input("d");
        let si = b.input("si");
        let se = b.input("se");
        let ck = b.input("ck");
        let q = b.gate(GateKind::Sdff, &[d, si, se, ck]);
        b.output("q", q);
        let m = b.finish().unwrap();
        let mut sim = Simulator::new(&m).unwrap();
        sim.set_by_name("d", Logic::Zero).unwrap();
        sim.set_by_name("si", Logic::One).unwrap();
        sim.set_by_name("se", Logic::One).unwrap();
        sim.clock_cycle_by_name("ck").unwrap();
        assert_eq!(sim.get_by_name("q").unwrap(), Logic::One); // shifted si
        sim.set_by_name("se", Logic::Zero).unwrap();
        sim.clock_cycle_by_name("ck").unwrap();
        assert_eq!(sim.get_by_name("q").unwrap(), Logic::Zero); // captured d
    }

    #[test]
    fn forced_net_overrides_driver() {
        let mut b = NetlistBuilder::new("m");
        let a = b.input("a");
        let y = b.gate(GateKind::Buf, &[a]);
        b.output("y", y);
        let m = b.finish().unwrap();
        let mut sim = Simulator::new(&m).unwrap();
        let y_net = m.port("y").unwrap().net;
        sim.force(y_net, Logic::One);
        sim.set_by_name("a", Logic::Zero).unwrap();
        sim.settle().unwrap();
        assert_eq!(sim.get_by_name("y").unwrap(), Logic::One);
        sim.unforce(y_net);
        sim.settle().unwrap();
        assert_eq!(sim.get_by_name("y").unwrap(), Logic::Zero);
    }

    #[test]
    fn latch_is_transparent_when_enabled() {
        let mut b = NetlistBuilder::new("m");
        let d = b.input("d");
        let en = b.input("en");
        let q = b.gate(GateKind::Latch, &[d, en]);
        b.output("q", q);
        let m = b.finish().unwrap();
        let mut sim = Simulator::new(&m).unwrap();
        sim.set_by_name("d", Logic::One).unwrap();
        sim.set_by_name("en", Logic::One).unwrap();
        sim.settle().unwrap();
        assert_eq!(sim.get_by_name("q").unwrap(), Logic::One);
        sim.set_by_name("en", Logic::Zero).unwrap();
        sim.set_by_name("d", Logic::Zero).unwrap();
        sim.settle().unwrap();
        assert_eq!(sim.get_by_name("q").unwrap(), Logic::One); // held
    }

    #[test]
    fn unknown_pin_is_an_error() {
        let mut b = NetlistBuilder::new("m");
        let a = b.input("a");
        b.output("y", a);
        let m = b.finish().unwrap();
        let mut sim = Simulator::new(&m).unwrap();
        assert!(matches!(
            sim.set_by_name("bogus", Logic::One),
            Err(SimError::UnknownName { .. })
        ));
    }
}
