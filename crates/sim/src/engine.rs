//! The simulation engine: a bit-parallel executor for compiled
//! [`SimProgram`]s.
//!
//! The engine is the **execute** third of a compile-once/execute-many
//! split: [`SimProgram::compile`] levelizes a module once into a flat
//! instruction stream ([`crate::program`]), [`crate::opt`] optimizes and
//! schedules that stream, and any number of [`Simulator`] executors run
//! it over private buffers of [`PackedLogic`] words, advancing **`N`×64
//! independent simulation lanes at once** (the `Simulator<N>` lane-group
//! parameter; `Simulator` = `Simulator<1>` is the classic 64-lane
//! machine, and the wide batch paths run `N = 4` for 256 lanes). A
//! `Simulator` owns all of its state (the program is shared behind an
//! [`Arc`]), so it is `Send` and can be handed to a worker thread — one
//! executor per core is exactly how [`crate::shard`] fans passes out.
//!
//! When the program's instruction stream is verified topologically
//! scheduled ([`crate::opt::OptStats::scheduled`], the optimizer-on
//! default), [`Simulator::settle`] takes a fast path: one unconditional
//! pass over the combinational stream reaches the combinational fixpoint
//! for the current sequential outputs, so stability is decided by the
//! much smaller sequential pass instead of per-write change detection on
//! every gate. `STEAC_OPT=0` compiles unscheduled programs, which settle
//! through the legacy full-sweep fixpoint.
//!
//! The original scalar API (`set`/`get`/`settle`/`force`, clock-edge
//! capture, latches, async resets) is preserved: scalar writes broadcast
//! to all lanes and scalar reads return lane 0, so existing callers see
//! exactly the old 4-value semantics. Batch callers load distinct
//! patterns per lane ([`Simulator::set_lanes`],
//! [`Simulator::run_vectors`]) or inject per-lane faults
//! ([`Simulator::force_lane`]) and read every lane back. External callers
//! address values by [`NetId`]; the engine translates through the
//! program's (possibly optimizer-permuted) `net_slot` table, so the slot
//! renumbering pass is invisible to every API user.

use crate::logic::Logic;
use crate::packed::{
    mask_all, mask_and, mask_andnot, mask_any, mask_bit, mask_none, mask_or, mask_replicate,
    LaneMask, PackedLogic,
};
use crate::program::{Instr, SeqInstr, SimOp, SimProgram, NO_SLOT};
use crate::SimError;
use std::sync::Arc;
use steac_netlist::{Module, NetId};

/// Iteration budget for latch/feedback fixpoints within one settle call.
const MAX_SETTLE_ITERS: usize = 1024;

/// Gate-level executor for a compiled [`SimProgram`], carrying `N`
/// lane groups of [`LANES`] lanes each per pass (`N`×64 lanes total).
///
/// Clocks are just nets: after every [`settle`](Simulator::settle) the
/// engine compares each flop's clock-net lanes against the previous
/// settled lanes and captures on rising edges, so gated clocks, divided
/// clocks and ripple counters simulate correctly — independently per
/// lane.
///
/// The executor owns its value buffers and shares the immutable program,
/// so it is `Send + Sync`: clone it (or call
/// [`Simulator::from_program`] with a cloned `Arc`) to run independent
/// passes on several threads at once.
#[derive(Debug, Clone)]
pub struct Simulator<const N: usize = 1> {
    program: Arc<SimProgram>,
    /// Flat value buffer: net slots, then flop/latch state slots.
    buf: Vec<PackedLogic<N>>,
    /// Per-slot lane mask of forced lanes (net slots only).
    force_mask: Vec<LaneMask<N>>,
    /// Per-slot forced values (valid on `force_mask` lanes).
    force_val: Vec<PackedLogic<N>>,
    /// Per-slot "has any forced lane" fast check for the hot write path.
    forced: Vec<bool>,
    initialized: bool,
    /// Total rising-edge captures performed on lane 0 (statistics).
    captures: u64,
    /// When set, [`observe`](Simulator::observe) records all lanes.
    observing: bool,
    observations: Vec<PackedLogic<N>>,
}

impl<const N: usize> Simulator<N> {
    /// Total lanes per pass: `N` lane groups of [`LANES`] lanes.
    pub const WIDTH: usize = PackedLogic::<N>::WIDTH;

    /// Compiles and prepares a simulator for a flat module (no
    /// [`steac_netlist::CellContents::Inst`] cells; flatten hierarchical
    /// designs first). Convenience wrapper over [`SimProgram::compile`] +
    /// [`Simulator::from_program`]; to run many executors over one
    /// design, compile once and share the `Arc`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Netlist`] if the module has multiple drivers or
    /// a combinational loop.
    pub fn new(module: &Module) -> Result<Self, SimError> {
        Ok(Self::from_program(Arc::new(SimProgram::compile(module)?)))
    }

    /// Builds an executor over an already-compiled, shared program. This
    /// is the multi-core entry point: every worker gets its own
    /// `Simulator` (private buffers) over the same `Arc<SimProgram>`.
    #[must_use]
    pub fn from_program(program: Arc<SimProgram>) -> Self {
        let slots = program.slot_count;
        let nets = program.net_count;
        Simulator {
            program,
            buf: vec![PackedLogic::ALL_X; slots],
            force_mask: vec![mask_none(); nets],
            force_val: vec![PackedLogic::ALL_X; nets],
            forced: vec![false; nets],
            initialized: false,
            captures: 0,
            observing: false,
            observations: Vec::new(),
        }
    }

    /// The compiled program being executed.
    #[must_use]
    pub fn program(&self) -> &SimProgram {
        &self.program
    }

    /// The shared handle to the compiled program (cheap to clone; hand it
    /// to [`Simulator::from_program`] on another thread).
    #[must_use]
    pub fn program_arc(&self) -> &Arc<SimProgram> {
        &self.program
    }

    /// Number of rising-edge captures performed on lane 0 so far.
    #[must_use]
    pub fn capture_count(&self) -> u64 {
        self.captures
    }

    fn lookup(&self, name: &str) -> Result<NetId, SimError> {
        self.program
            .port_net(name)
            .ok_or_else(|| SimError::UnknownName {
                name: name.to_string(),
            })
    }

    /// Value-buffer slot of a net (identity unless the optimizer
    /// renumbered slots for locality).
    #[inline]
    fn slot(&self, net: NetId) -> usize {
        self.program.slot_of(net) as usize
    }

    /// Merges per-lane forces into a candidate value for slot `slot`.
    #[inline]
    fn apply_force(&self, slot: usize, v: PackedLogic<N>) -> PackedLogic<N> {
        if self.forced[slot] {
            self.force_val[slot].select(v, self.force_mask[slot])
        } else {
            v
        }
    }

    /// Sets a net on every lane (normally an input-port net). Forced
    /// lanes (see [`force`](Simulator::force)) keep their forced values.
    pub fn set(&mut self, net: NetId, v: Logic) {
        self.set_packed(net, PackedLogic::splat(v));
    }

    /// Sets a net to per-lane values from a packed word.
    pub fn set_packed(&mut self, net: NetId, v: PackedLogic<N>) {
        let slot = self.slot(net);
        self.buf[slot] = self.apply_force(slot, v);
    }

    /// Sets a net per lane: lane `l` takes `values[l]`; when fewer than
    /// [`Self::WIDTH`] values are given, the remaining lanes replicate
    /// the first value (so unused lanes track lane 0).
    pub fn set_lanes(&mut self, net: NetId, values: &[Logic]) {
        let mut p = PackedLogic::splat(values.first().copied().unwrap_or(Logic::X));
        for (l, &v) in values.iter().take(Self::WIDTH).enumerate() {
            p.set_lane(l, v);
        }
        self.set_packed(net, p);
    }

    /// Sets an input by port name on every lane.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownName`] if no such port exists.
    pub fn set_by_name(&mut self, name: &str, v: Logic) -> Result<(), SimError> {
        let net = self.lookup(name)?;
        self.set(net, v);
        Ok(())
    }

    /// Reads a net value on lane 0.
    #[must_use]
    pub fn get(&self, net: NetId) -> Logic {
        self.buf[self.slot(net)].lane(0)
    }

    /// Reads a net value on a specific lane.
    #[must_use]
    pub fn get_lane(&self, net: NetId, lane: usize) -> Logic {
        self.buf[self.slot(net)].lane(lane)
    }

    /// Reads all lanes of a net.
    #[must_use]
    pub fn get_packed(&self, net: NetId) -> PackedLogic<N> {
        self.buf[self.slot(net)]
    }

    /// Reads a lane-0 value by port name.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownName`] if no such port exists.
    pub fn get_by_name(&self, name: &str) -> Result<Logic, SimError> {
        Ok(self.get(self.lookup(name)?))
    }

    /// Forces a net on **every** lane until
    /// [`unforce`](Simulator::unforce) — the scalar fault-injection
    /// mechanism. Takes effect immediately and overrides both drivers and
    /// [`set`](Simulator::set).
    pub fn force(&mut self, net: NetId, v: Logic) {
        let slot = self.slot(net);
        self.force_mask[slot] = mask_all();
        self.force_val[slot] = PackedLogic::splat(v);
        self.forced[slot] = true;
        self.buf[slot] = PackedLogic::splat(v);
    }

    /// Forces a net on a single lane — the PPSFP fault-injection
    /// mechanism (one faulty machine per lane).
    ///
    /// # Panics
    ///
    /// Panics if `lane >= Self::WIDTH`.
    pub fn force_lane(&mut self, net: NetId, lane: usize, v: Logic) {
        assert!(lane < Self::WIDTH, "lane {lane} out of range");
        let slot = self.slot(net);
        crate::packed::mask_set_bit(&mut self.force_mask[slot], lane);
        self.force_val[slot].set_lane(lane, v);
        self.forced[slot] = true;
        let mut cur = self.buf[slot];
        cur.set_lane(lane, v);
        self.buf[slot] = cur;
    }

    /// Snapshots every per-lane force as `(net, lane mask, values)`
    /// triples — the state a remote executor needs to reproduce this
    /// simulator's fault injection (values are meaningful on the masked
    /// lanes only). Used by the process-dispatch paths to carry forces
    /// across the wire. Slot renumbering is translated back to net ids,
    /// so snapshots are portable across optimizer settings.
    #[must_use]
    pub fn export_forces(&self) -> Vec<(NetId, LaneMask<N>, PackedLogic<N>)> {
        self.force_mask
            .iter()
            .enumerate()
            .filter(|&(_, mask)| mask_any(mask))
            .map(|(i, &mask)| (self.program.net_of_slot(i as u32), mask, self.force_val[i]))
            .collect()
    }

    /// Applies force snapshots from [`export_forces`](Self::export_forces)
    /// onto this executor, merging with any forces already present (the
    /// imported lanes win) and taking effect immediately, like
    /// [`force_lane`](Self::force_lane).
    pub fn import_forces(&mut self, forces: &[(NetId, LaneMask<N>, PackedLogic<N>)]) {
        for &(net, mask, values) in forces {
            let i = self.slot(net);
            self.force_mask[i] = mask_or(self.force_mask[i], mask);
            self.force_val[i] = values.select(self.force_val[i], mask);
            self.forced[i] = true;
            self.buf[i] = values.select(self.buf[i], mask);
        }
    }

    /// Applies 64-lane force snapshots replicated across all `N` lane
    /// groups: the force on lane `l` is repeated on lane `l + 64·g` for
    /// every group `g`. This is how a wide executor reproduces a narrow
    /// caller's forces so that chunk position `p` of a wide pass behaves
    /// exactly like chunk position `p % 64` of the equivalent 64-lane
    /// pass sequence.
    pub fn import_forces_replicated(&mut self, forces: &[(NetId, u64, PackedLogic<1>)]) {
        for &(net, mask, values) in forces {
            let i = self.slot(net);
            let mask = mask_replicate::<N>(mask);
            let values = PackedLogic::<N>::replicate(values);
            self.force_mask[i] = mask_or(self.force_mask[i], mask);
            self.force_val[i] = values.select(self.force_val[i], mask);
            self.forced[i] = true;
            self.buf[i] = values.select(self.buf[i], mask);
        }
    }

    /// Removes all forces from a net.
    pub fn unforce(&mut self, net: NetId) {
        let slot = self.slot(net);
        self.force_mask[slot] = mask_none();
        self.forced[slot] = false;
    }

    /// Removes every force on every net.
    pub fn clear_forces(&mut self) {
        self.force_mask.fill(mask_none());
        self.forced.fill(false);
    }

    /// Reads all output-port values on lane 0, in port order.
    #[must_use]
    pub fn outputs(&self) -> Vec<Logic> {
        self.outputs_lane(0)
    }

    /// Reads all output-port values on one lane, in port order.
    #[must_use]
    pub fn outputs_lane(&self, lane: usize) -> Vec<Logic> {
        self.program
            .output_slots()
            .iter()
            .map(|&s| self.buf[s as usize].lane(lane))
            .collect()
    }

    /// Records an observation point: when observation is enabled (see
    /// [`set_observing`](Simulator::set_observing)) all lanes of `net`
    /// are appended to the observation log. Returns the lane-0 value, so
    /// scalar test drivers can use it as a drop-in for
    /// [`get`](Simulator::get).
    pub fn observe(&mut self, net: NetId) -> Logic {
        let v = self.buf[self.slot(net)];
        if self.observing {
            self.observations.push(v);
        }
        v.lane(0)
    }

    /// [`observe`](Simulator::observe) by port name.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownName`] if no such port exists.
    pub fn observe_by_name(&mut self, name: &str) -> Result<Logic, SimError> {
        let net = self.lookup(name)?;
        Ok(self.observe(net))
    }

    /// Enables or disables observation recording (disabled by default, so
    /// scalar users pay nothing).
    pub fn set_observing(&mut self, on: bool) {
        self.observing = on;
    }

    /// Drains the observation log.
    pub fn take_observations(&mut self) -> Vec<PackedLogic<N>> {
        std::mem::take(&mut self.observations)
    }

    /// Writes a computed value (after force merging); returns whether any
    /// lane changed.
    fn write_net(&mut self, slot: usize, v: PackedLogic<N>) -> bool {
        let v = self.apply_force(slot, v);
        if self.buf[slot] != v {
            self.buf[slot] = v;
            true
        } else {
            false
        }
    }

    fn exec_instr(buf: &[PackedLogic<N>], i: &Instr) -> PackedLogic<N> {
        let a = |k: usize| buf[i.ins[k] as usize];
        match i.op {
            SimOp::Inv => a(0).not(),
            SimOp::Buf => a(0).buf(),
            SimOp::And2 => a(0).and(a(1)),
            SimOp::And3 => a(0).and(a(1)).and(a(2)),
            SimOp::Nand2 => a(0).and(a(1)).not(),
            SimOp::Nand3 => a(0).and(a(1)).and(a(2)).not(),
            SimOp::Nand4 => a(0).and(a(1)).and(a(2)).and(a(3)).not(),
            SimOp::Or2 => a(0).or(a(1)),
            SimOp::Or3 => a(0).or(a(1)).or(a(2)),
            SimOp::Nor2 => a(0).or(a(1)).not(),
            SimOp::Nor3 => a(0).or(a(1)).or(a(2)).not(),
            SimOp::Xor2 => a(0).xor(a(1)),
            SimOp::Xnor2 => a(0).xor(a(1)).not(),
            SimOp::Mux2 => PackedLogic::mux(a(0), a(1), a(2)),
            SimOp::Tie0 => PackedLogic::ALL_ZERO,
            SimOp::Tie1 => PackedLogic::ALL_ONE,
            SimOp::Unknown => PackedLogic::ALL_X,
        }
    }

    /// Sequential-element pass (async resets, state-to-output drive,
    /// latch transparency), in original cell order; returns whether any
    /// lane changed.
    fn seq_pass(&mut self) -> bool {
        let mut changed = false;
        for k in 0..self.program.seq_order.len() {
            match self.program.seq_order[k] {
                SeqInstr::Flop(fi) => {
                    let f = self.program.flops[fi as usize];
                    let mut state = self.buf[f.state as usize];
                    if f.rstn != NO_SLOT {
                        let rstn = self.buf[f.rstn as usize];
                        // rstn = 0 clears the lane; unknown rstn degrades a
                        // non-zero lane to X (reset might be asserting).
                        let rz = rstn.is_zero();
                        let ru = mask_andnot(rstn.unknowns, state.is_zero());
                        state = PackedLogic::ALL_ZERO.select(state, rz);
                        state = PackedLogic::ALL_X.select(state, ru);
                        self.buf[f.state as usize] = state;
                    }
                    changed |= self.write_net(f.q as usize, state);
                }
                SeqInstr::Latch(li) => {
                    let l = self.program.latches[li as usize];
                    let d = self.buf[l.d as usize];
                    let en = self.buf[l.en as usize];
                    let mut state = self.buf[l.state as usize];
                    // en = 1: transparent; en = 0: hold; unknown en: lanes
                    // whose held value disagrees with d degrade to X.
                    let differs = state.diff(d);
                    state = d.select(state, en.is_one());
                    state = PackedLogic::ALL_X.select(state, mask_and(en.unknowns, differs));
                    self.buf[l.state as usize] = state;
                    changed |= self.write_net(l.q as usize, state);
                }
            }
        }
        changed
    }

    /// One evaluation sweep; returns whether any net changed on any lane.
    fn sweep(&mut self) -> bool {
        let mut changed = self.seq_pass();
        // Compiled combinational stream in topological order.
        for k in 0..self.program.comb.len() {
            let i = self.program.comb[k];
            let v = Self::exec_instr(&self.buf, &i);
            changed |= self.write_net(i.out as usize, v);
        }
        changed
    }

    /// One unconditional pass over the combinational stream: no per-write
    /// change detection, just evaluate-and-store. Sound only when the
    /// stream is verified topologically scheduled (each input is written
    /// before it is read), in which case one pass reaches the
    /// combinational fixpoint for the current sequential outputs.
    fn comb_pass_fast(&mut self) {
        let program = Arc::clone(&self.program);
        for i in &program.comb {
            let v = Self::exec_instr(&self.buf, i);
            let out = i.out as usize;
            self.buf[out] = if self.forced[out] {
                self.force_val[out].select(v, self.force_mask[out])
            } else {
                v
            };
        }
    }

    /// Inner fixpoint via full sweeps with per-write change detection —
    /// correct for any instruction order (the `STEAC_OPT=0` path).
    fn comb_fixpoint_legacy(&mut self) -> Result<(), SimError> {
        for _ in 0..MAX_SETTLE_ITERS {
            if !self.sweep() {
                return Ok(());
            }
        }
        Err(SimError::Unstable {
            iterations: MAX_SETTLE_ITERS,
        })
    }

    /// Inner fixpoint for scheduled streams: sequential pass, then one
    /// unconditional combinational pass; repeat until the sequential pass
    /// stops changing. Because the combinational stream is topological,
    /// a single pass fully propagates any sequential change, so stability
    /// is decided by the (much smaller) sequential pass alone — the
    /// per-gate change-detection compare/branch of the legacy path
    /// disappears from the hot loop.
    fn comb_fixpoint_fast(&mut self) -> Result<(), SimError> {
        for iter in 0..MAX_SETTLE_ITERS {
            let changed = self.seq_pass();
            if iter > 0 && !changed {
                return Ok(());
            }
            self.comb_pass_fast();
        }
        Err(SimError::Unstable {
            iterations: MAX_SETTLE_ITERS,
        })
    }

    /// Evaluates the netlist to a fixpoint, then performs rising-edge
    /// captures on flip-flops (per lane), repeating until globally stable
    /// on every lane.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Unstable`] if a feedback structure oscillates
    /// on any lane.
    pub fn settle(&mut self) -> Result<(), SimError> {
        let fast = self.program.opt.scheduled;
        for _ in 0..MAX_SETTLE_ITERS {
            // Inner fixpoint: combinational + latches.
            if fast {
                self.comb_fixpoint_fast()?;
            } else {
                self.comb_fixpoint_legacy()?;
            }
            // Per-lane edge detection.
            let mut any_capture = false;
            for fi in 0..self.program.flops.len() {
                let f = self.program.flops[fi];
                let now = self.buf[f.ck as usize];
                let prev = self.buf[f.prev_ck as usize];
                self.buf[f.prev_ck as usize] = now;
                if !self.initialized {
                    continue;
                }
                // True rising edges sample D (or SI under scan); an edge
                // into or out of an unknown clock value captures X.
                let rising = mask_and(prev.is_zero(), now.is_one());
                let semi = mask_or(
                    mask_and(prev.is_zero(), now.unknowns),
                    mask_and(prev.unknowns, now.is_one()),
                );
                let events = mask_or(rising, semi);
                if !mask_any(&events) {
                    continue;
                }
                let d = self.buf[f.d as usize];
                let next = if f.si != NO_SLOT {
                    PackedLogic::mux(d, self.buf[f.si as usize], self.buf[f.se as usize])
                } else {
                    d
                };
                let state = self.buf[f.state as usize];
                let mut cand = state;
                cand = PackedLogic::ALL_X.select(cand, semi);
                cand = next.select(cand, rising);
                // Async reset dominates the clock.
                let reset_active = if f.rstn != NO_SLOT {
                    self.buf[f.rstn as usize].is_zero()
                } else {
                    mask_none()
                };
                let new_state = cand.select(state, mask_andnot(events, reset_active));
                if new_state != state {
                    self.buf[f.state as usize] = new_state;
                    any_capture = true;
                }
                if mask_bit(&events, 0) {
                    self.captures += 1;
                }
            }
            if !self.initialized {
                self.initialized = true;
                // Seed prev_ck with the settled values so the first real
                // clock pulse is a clean 0->1 edge.
                continue;
            }
            if !any_capture {
                return Ok(());
            }
        }
        Err(SimError::Unstable {
            iterations: MAX_SETTLE_ITERS,
        })
    }

    /// Alias of [`settle`](Simulator::settle) that makes batch call sites
    /// read explicitly: all lanes settle in the same pass.
    ///
    /// # Errors
    ///
    /// Propagates [`SimError::Unstable`].
    pub fn settle_batch(&mut self) -> Result<(), SimError> {
        self.settle()
    }

    /// Loads up to [`Self::WIDTH`] input vectors (one per lane), settles
    /// once, and returns each lane's output-port values. `pins[i]`
    /// receives `vectors[lane][i]` on lane `lane`; unused lanes replicate
    /// vector 0.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::VectorLength`] if a vector's length differs
    /// from `pins`, and propagates [`SimError::Unstable`].
    ///
    /// # Panics
    ///
    /// Panics if more than [`Self::WIDTH`] vectors are supplied.
    pub fn run_vectors(
        &mut self,
        pins: &[NetId],
        vectors: &[Vec<Logic>],
    ) -> Result<Vec<Vec<Logic>>, SimError> {
        assert!(
            vectors.len() <= Self::WIDTH,
            "at most {} vectors per pass (got {})",
            Self::WIDTH,
            vectors.len()
        );
        for v in vectors {
            if v.len() != pins.len() {
                return Err(SimError::VectorLength {
                    expected: pins.len(),
                    got: v.len(),
                });
            }
        }
        for (i, &pin) in pins.iter().enumerate() {
            let lanes: Vec<Logic> = vectors.iter().map(|v| v[i]).collect();
            self.set_lanes(pin, &lanes);
        }
        self.settle()?;
        Ok((0..vectors.len()).map(|l| self.outputs_lane(l)).collect())
    }

    /// Applies a full clock cycle on `clock`: drive 0, settle, drive 1,
    /// settle (captures happen here), drive 0, settle.
    ///
    /// # Errors
    ///
    /// Propagates [`SimError::Unstable`].
    pub fn clock_cycle(&mut self, clock: NetId) -> Result<(), SimError> {
        self.set(clock, Logic::Zero);
        self.settle()?;
        self.set(clock, Logic::One);
        self.settle()?;
        self.set(clock, Logic::Zero);
        self.settle()
    }

    /// [`clock_cycle`](Self::clock_cycle) by port name.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownName`] for a bad name and propagates
    /// [`SimError::Unstable`].
    pub fn clock_cycle_by_name(&mut self, name: &str) -> Result<(), SimError> {
        let net = self.lookup(name)?;
        self.clock_cycle(net)
    }

    /// Applies one clock cycle on several clocks simultaneously (multi
    /// clock-domain step): all low, settle, all high, settle, all low.
    ///
    /// # Errors
    ///
    /// Propagates [`SimError::Unstable`].
    pub fn clock_cycle_multi(&mut self, clocks: &[NetId]) -> Result<(), SimError> {
        for &c in clocks {
            self.set(c, Logic::Zero);
        }
        self.settle()?;
        for &c in clocks {
            self.set(c, Logic::One);
        }
        self.settle()?;
        for &c in clocks {
            self.set(c, Logic::Zero);
        }
        self.settle()
    }

    /// Resets all state (net values, flop/latch state, previous clocks) to
    /// `X` on every lane. Forces are kept, matching the interpreter's
    /// historical behaviour; use [`clear_forces`](Simulator::clear_forces)
    /// to drop them too.
    pub fn reset_to_x(&mut self) {
        for (i, slot) in self.buf.iter_mut().enumerate() {
            *slot = if i < self.program.net_count && self.forced[i] {
                self.force_val[i].select(PackedLogic::ALL_X, self.force_mask[i])
            } else {
                PackedLogic::ALL_X
            };
        }
        self.initialized = false;
        self.captures = 0;
        self.observations.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use steac_netlist::{GateKind, NetlistBuilder};

    #[test]
    fn combinational_evaluation() {
        let mut b = NetlistBuilder::new("m");
        let a = b.input("a");
        let c = b.input("b");
        let y = b.gate(GateKind::Nand2, &[a, c]);
        b.output("y", y);
        let m = b.finish().unwrap();
        let mut sim: Simulator = Simulator::new(&m).unwrap();
        sim.set_by_name("a", Logic::One).unwrap();
        sim.set_by_name("b", Logic::One).unwrap();
        sim.settle().unwrap();
        assert_eq!(sim.get_by_name("y").unwrap(), Logic::Zero);
        sim.set_by_name("b", Logic::Zero).unwrap();
        sim.settle().unwrap();
        assert_eq!(sim.get_by_name("y").unwrap(), Logic::One);
    }

    #[test]
    fn dff_captures_on_rising_edge_only() {
        let mut b = NetlistBuilder::new("m");
        let d = b.input("d");
        let ck = b.input("ck");
        let q = b.gate(GateKind::Dff, &[d, ck]);
        b.output("q", q);
        let m = b.finish().unwrap();
        let mut sim: Simulator = Simulator::new(&m).unwrap();
        sim.set_by_name("d", Logic::One).unwrap();
        sim.set_by_name("ck", Logic::Zero).unwrap();
        sim.settle().unwrap();
        assert_eq!(sim.get_by_name("q").unwrap(), Logic::X); // not clocked yet
        sim.clock_cycle_by_name("ck").unwrap();
        assert_eq!(sim.get_by_name("q").unwrap(), Logic::One);
        // Falling edge must not capture.
        sim.set_by_name("d", Logic::Zero).unwrap();
        sim.set_by_name("ck", Logic::Zero).unwrap();
        sim.settle().unwrap();
        assert_eq!(sim.get_by_name("q").unwrap(), Logic::One);
    }

    #[test]
    fn async_reset_dominates() {
        let mut b = NetlistBuilder::new("m");
        let d = b.input("d");
        let ck = b.input("ck");
        let rstn = b.input("rstn");
        let q = b.gate(GateKind::DffR, &[d, ck, rstn]);
        b.output("q", q);
        let m = b.finish().unwrap();
        let mut sim: Simulator = Simulator::new(&m).unwrap();
        sim.set_by_name("d", Logic::One).unwrap();
        sim.set_by_name("rstn", Logic::Zero).unwrap();
        sim.clock_cycle_by_name("ck").unwrap();
        assert_eq!(sim.get_by_name("q").unwrap(), Logic::Zero);
        sim.set_by_name("rstn", Logic::One).unwrap();
        sim.clock_cycle_by_name("ck").unwrap();
        assert_eq!(sim.get_by_name("q").unwrap(), Logic::One);
    }

    #[test]
    fn ripple_counter_divides_clock() {
        // Two DFFRs in ripple configuration: q1 clocks on falling q0 via
        // inverter. After 4 input cycles, q1 has toggled twice.
        let mut b = NetlistBuilder::new("m");
        let ck = b.input("ck");
        let rstn = b.input("rstn");
        let q0 = b.net("q0");
        let d0 = b.gate(GateKind::Inv, &[q0]);
        b.gate_into(GateKind::DffR, &[d0, ck, rstn], q0);
        let ck1 = b.gate(GateKind::Inv, &[q0]);
        let q1 = b.net("q1");
        let d1 = b.gate(GateKind::Inv, &[q1]);
        b.gate_into(GateKind::DffR, &[d1, ck1, rstn], q1);
        b.output("q0", q0);
        b.output("q1", q1);
        let m = b.finish().unwrap();
        let mut sim: Simulator = Simulator::new(&m).unwrap();
        sim.set_by_name("rstn", Logic::Zero).unwrap();
        sim.set_by_name("ck", Logic::Zero).unwrap();
        sim.settle().unwrap();
        sim.set_by_name("rstn", Logic::One).unwrap();
        sim.settle().unwrap();
        let mut seq = Vec::new();
        for _ in 0..4 {
            sim.clock_cycle_by_name("ck").unwrap();
            seq.push((
                sim.get_by_name("q0").unwrap(),
                sim.get_by_name("q1").unwrap(),
            ));
        }
        use Logic::{One, Zero};
        assert_eq!(
            seq,
            vec![(One, Zero), (Zero, One), (One, One), (Zero, Zero)]
        );
    }

    #[test]
    fn scan_flop_shifts_under_se() {
        let mut b = NetlistBuilder::new("m");
        let d = b.input("d");
        let si = b.input("si");
        let se = b.input("se");
        let ck = b.input("ck");
        let q = b.gate(GateKind::Sdff, &[d, si, se, ck]);
        b.output("q", q);
        let m = b.finish().unwrap();
        let mut sim: Simulator = Simulator::new(&m).unwrap();
        sim.set_by_name("d", Logic::Zero).unwrap();
        sim.set_by_name("si", Logic::One).unwrap();
        sim.set_by_name("se", Logic::One).unwrap();
        sim.clock_cycle_by_name("ck").unwrap();
        assert_eq!(sim.get_by_name("q").unwrap(), Logic::One); // shifted si
        sim.set_by_name("se", Logic::Zero).unwrap();
        sim.clock_cycle_by_name("ck").unwrap();
        assert_eq!(sim.get_by_name("q").unwrap(), Logic::Zero); // captured d
    }

    #[test]
    fn forced_net_overrides_driver() {
        let mut b = NetlistBuilder::new("m");
        let a = b.input("a");
        let y = b.gate(GateKind::Buf, &[a]);
        b.output("y", y);
        let m = b.finish().unwrap();
        let mut sim: Simulator = Simulator::new(&m).unwrap();
        let y_net = m.port("y").unwrap().net;
        sim.force(y_net, Logic::One);
        sim.set_by_name("a", Logic::Zero).unwrap();
        sim.settle().unwrap();
        assert_eq!(sim.get_by_name("y").unwrap(), Logic::One);
        sim.unforce(y_net);
        sim.settle().unwrap();
        assert_eq!(sim.get_by_name("y").unwrap(), Logic::Zero);
    }

    #[test]
    fn latch_is_transparent_when_enabled() {
        let mut b = NetlistBuilder::new("m");
        let d = b.input("d");
        let en = b.input("en");
        let q = b.gate(GateKind::Latch, &[d, en]);
        b.output("q", q);
        let m = b.finish().unwrap();
        let mut sim: Simulator = Simulator::new(&m).unwrap();
        sim.set_by_name("d", Logic::One).unwrap();
        sim.set_by_name("en", Logic::One).unwrap();
        sim.settle().unwrap();
        assert_eq!(sim.get_by_name("q").unwrap(), Logic::One);
        sim.set_by_name("en", Logic::Zero).unwrap();
        sim.set_by_name("d", Logic::Zero).unwrap();
        sim.settle().unwrap();
        assert_eq!(sim.get_by_name("q").unwrap(), Logic::One); // held
    }

    #[test]
    fn unknown_pin_is_an_error() {
        let mut b = NetlistBuilder::new("m");
        let a = b.input("a");
        b.output("y", a);
        let m = b.finish().unwrap();
        let mut sim: Simulator = Simulator::new(&m).unwrap();
        assert!(matches!(
            sim.set_by_name("bogus", Logic::One),
            Err(SimError::UnknownName { .. })
        ));
    }

    // ------- batch / lane API -------

    #[test]
    fn lanes_are_independent_machines() {
        // y = a NAND b, with all four input combinations in lanes 0..4.
        let mut b = NetlistBuilder::new("m");
        let a = b.input("a");
        let c = b.input("b");
        let y = b.gate(GateKind::Nand2, &[a, c]);
        b.output("y", y);
        let m = b.finish().unwrap();
        let mut sim: Simulator = Simulator::new(&m).unwrap();
        use Logic::{One, Zero};
        sim.set_lanes(m.port("a").unwrap().net, &[Zero, Zero, One, One]);
        sim.set_lanes(m.port("b").unwrap().net, &[Zero, One, Zero, One]);
        sim.settle_batch().unwrap();
        let y_net = m.port("y").unwrap().net;
        assert_eq!(sim.get_lane(y_net, 0), One);
        assert_eq!(sim.get_lane(y_net, 1), One);
        assert_eq!(sim.get_lane(y_net, 2), One);
        assert_eq!(sim.get_lane(y_net, 3), Zero);
    }

    #[test]
    fn run_vectors_fills_lanes_and_reads_outputs() {
        let mut b = NetlistBuilder::new("m");
        let a = b.input("a");
        let c = b.input("b");
        let s = b.gate(GateKind::Xor2, &[a, c]);
        let k = b.gate(GateKind::And2, &[a, c]);
        b.output("sum", s);
        b.output("carry", k);
        let m = b.finish().unwrap();
        let mut sim: Simulator = Simulator::new(&m).unwrap();
        let pins = [m.port("a").unwrap().net, m.port("b").unwrap().net];
        use Logic::{One, Zero};
        let vectors = vec![
            vec![Zero, Zero],
            vec![Zero, One],
            vec![One, Zero],
            vec![One, One],
        ];
        let outs = sim.run_vectors(&pins, &vectors).unwrap();
        assert_eq!(outs[0], vec![Zero, Zero]);
        assert_eq!(outs[1], vec![One, Zero]);
        assert_eq!(outs[2], vec![One, Zero]);
        assert_eq!(outs[3], vec![Zero, One]);
    }

    #[test]
    fn run_vectors_validates_lengths() {
        let mut b = NetlistBuilder::new("m");
        let a = b.input("a");
        b.output("y", a);
        let m = b.finish().unwrap();
        let mut sim: Simulator = Simulator::new(&m).unwrap();
        let pins = [m.port("a").unwrap().net];
        let bad = vec![vec![Logic::Zero, Logic::One]];
        assert!(matches!(
            sim.run_vectors(&pins, &bad),
            Err(SimError::VectorLength { .. })
        ));
    }

    #[test]
    fn force_lane_affects_only_its_lane() {
        let mut b = NetlistBuilder::new("m");
        let a = b.input("a");
        let y = b.gate(GateKind::Buf, &[a]);
        b.output("y", y);
        let m = b.finish().unwrap();
        let mut sim: Simulator = Simulator::new(&m).unwrap();
        let y_net = m.port("y").unwrap().net;
        sim.force_lane(y_net, 3, Logic::One);
        sim.set_by_name("a", Logic::Zero).unwrap();
        sim.settle().unwrap();
        assert_eq!(sim.get_lane(y_net, 0), Logic::Zero);
        assert_eq!(sim.get_lane(y_net, 2), Logic::Zero);
        assert_eq!(sim.get_lane(y_net, 3), Logic::One);
        sim.unforce(y_net);
        sim.settle().unwrap();
        assert_eq!(sim.get_lane(y_net, 3), Logic::Zero);
    }

    #[test]
    fn per_lane_capture_in_sequential_logic() {
        // One DFF; lanes carry different D values through the same clock.
        let mut b = NetlistBuilder::new("m");
        let d = b.input("d");
        let ck = b.input("ck");
        let q = b.gate(GateKind::Dff, &[d, ck]);
        b.output("q", q);
        let m = b.finish().unwrap();
        let mut sim: Simulator = Simulator::new(&m).unwrap();
        use Logic::{One, Zero};
        let lanes: Vec<Logic> = (0..8)
            .map(|i| if i % 2 == 0 { Zero } else { One })
            .collect();
        sim.set_lanes(m.port("d").unwrap().net, &lanes);
        sim.clock_cycle_by_name("ck").unwrap();
        let q_net = m.port("q").unwrap().net;
        for (i, expect) in lanes.iter().enumerate() {
            assert_eq!(sim.get_lane(q_net, i), *expect, "lane {i}");
        }
    }

    /// The whole sharding layer rests on this: an executor can move to a
    /// worker thread and be shared by reference across them.
    #[test]
    fn simulator_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Simulator>();
        assert_send_sync::<Simulator<4>>();
        assert_send_sync::<SimProgram>();
    }

    /// Executors built from one shared program are independent machines:
    /// state in one never leaks into another, on any thread.
    #[test]
    fn shared_program_executors_are_independent() {
        let mut b = NetlistBuilder::new("m");
        let d = b.input("d");
        let ck = b.input("ck");
        let q = b.gate(GateKind::Dff, &[d, ck]);
        b.output("q", q);
        let m = b.finish().unwrap();
        let program = Arc::new(SimProgram::compile(&m).unwrap());
        let mut one: Simulator = Simulator::from_program(Arc::clone(&program));
        let other = std::thread::spawn({
            let program = Arc::clone(&program);
            move || {
                let mut sim: Simulator = Simulator::from_program(program);
                sim.set_by_name("d", Logic::Zero).unwrap();
                sim.clock_cycle_by_name("ck").unwrap();
                sim.get_by_name("q").unwrap()
            }
        });
        one.set_by_name("d", Logic::One).unwrap();
        one.clock_cycle_by_name("ck").unwrap();
        assert_eq!(one.get_by_name("q").unwrap(), Logic::One);
        assert_eq!(other.join().unwrap(), Logic::Zero);
        assert_eq!(one.program().name, "m");
    }

    #[test]
    fn observation_log_records_all_lanes() {
        let mut b = NetlistBuilder::new("m");
        let a = b.input("a");
        let y = b.gate(GateKind::Inv, &[a]);
        b.output("y", y);
        let m = b.finish().unwrap();
        let mut sim: Simulator = Simulator::new(&m).unwrap();
        sim.set_observing(true);
        use Logic::{One, Zero};
        sim.set_lanes(m.port("a").unwrap().net, &[Zero, One]);
        sim.settle().unwrap();
        let lane0 = sim.observe_by_name("y").unwrap();
        assert_eq!(lane0, One);
        let obs = sim.take_observations();
        assert_eq!(obs.len(), 1);
        assert_eq!(obs[0].lane(0), One);
        assert_eq!(obs[0].lane(1), Zero);
        assert!(sim.take_observations().is_empty());
    }

    // ------- wide (N > 1) executors -------

    /// A 4-group (256-lane) executor agrees lane-for-lane with four
    /// 64-lane executors running the same patterns in sequence.
    #[test]
    fn wide_executor_matches_narrow_on_every_lane() {
        let mut b = NetlistBuilder::new("m");
        let a = b.input("a");
        let c = b.input("b");
        let s = b.gate(GateKind::Xor2, &[a, c]);
        let k = b.gate(GateKind::Nand2, &[a, c]);
        b.output("s", s);
        b.output("k", k);
        let m = b.finish().unwrap();
        let program = Arc::new(SimProgram::compile(&m).unwrap());

        use Logic::{One, Zero};
        let pat = |i: usize| {
            (
                if i.is_multiple_of(2) { Zero } else { One },
                if (i / 2).is_multiple_of(2) { Zero } else { One },
            )
        };
        let a_net = m.port("a").unwrap().net;
        let b_net = m.port("b").unwrap().net;

        let mut wide: Simulator<4> = Simulator::from_program(Arc::clone(&program));
        let a_lanes: Vec<Logic> = (0..256).map(|i| pat(i).0).collect();
        let b_lanes: Vec<Logic> = (0..256).map(|i| pat(i).1).collect();
        wide.set_lanes(a_net, &a_lanes);
        wide.set_lanes(b_net, &b_lanes);
        wide.settle().unwrap();

        for chunk in 0..4 {
            let mut narrow: Simulator = Simulator::from_program(Arc::clone(&program));
            narrow.set_lanes(a_net, &a_lanes[chunk * 64..(chunk + 1) * 64]);
            narrow.set_lanes(b_net, &b_lanes[chunk * 64..(chunk + 1) * 64]);
            narrow.settle().unwrap();
            for l in 0..64 {
                assert_eq!(
                    wide.outputs_lane(chunk * 64 + l),
                    narrow.outputs_lane(l),
                    "chunk {chunk} lane {l}"
                );
            }
        }
    }

    /// Replicated forces make wide lane `l + 64g` behave like narrow
    /// lane `l` — the contract the wide grading paths rest on.
    #[test]
    fn replicated_forces_repeat_every_64_lanes() {
        let mut b = NetlistBuilder::new("m");
        let a = b.input("a");
        let y = b.gate(GateKind::Buf, &[a]);
        b.output("y", y);
        let m = b.finish().unwrap();
        let mut narrow = Simulator::new(&m).unwrap();
        let y_net = m.port("y").unwrap().net;
        narrow.force_lane(y_net, 5, Logic::One);
        let forces: Vec<(NetId, u64, PackedLogic<1>)> = narrow
            .export_forces()
            .into_iter()
            .map(|(n, mask, v)| (n, mask[0], v))
            .collect();

        let program = narrow.program_arc().clone();
        let mut wide: Simulator<4> = Simulator::from_program(program);
        wide.import_forces_replicated(&forces);
        wide.set_by_name("a", Logic::Zero).unwrap();
        wide.settle().unwrap();
        for g in 0..4 {
            assert_eq!(wide.get_lane(y_net, g * 64 + 5), Logic::One, "group {g}");
            assert_eq!(wide.get_lane(y_net, g * 64 + 4), Logic::Zero, "group {g}");
        }
    }

    /// Sequential logic (capture, reset) is group-independent on a wide
    /// executor.
    #[test]
    fn wide_sequential_capture_per_lane() {
        let mut b = NetlistBuilder::new("m");
        let d = b.input("d");
        let ck = b.input("ck");
        let q = b.gate(GateKind::Dff, &[d, ck]);
        b.output("q", q);
        let m = b.finish().unwrap();
        let mut sim: Simulator<2> = Simulator::new(&m).unwrap();
        use Logic::{One, Zero};
        let lanes: Vec<Logic> = (0..128)
            .map(|i| if (i / 3) % 2 == 0 { Zero } else { One })
            .collect();
        sim.set_lanes(m.port("d").unwrap().net, &lanes);
        sim.clock_cycle_by_name("ck").unwrap();
        let q_net = m.port("q").unwrap().net;
        for (i, expect) in lanes.iter().enumerate() {
            assert_eq!(sim.get_lane(q_net, i), *expect, "lane {i}");
        }
    }
}
