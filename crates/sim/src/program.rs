//! Netlist compilation: levelize a flat [`Module`] once into a
//! [`SimProgram`] — a contiguous instruction stream over a single flat
//! value buffer — so the engine never touches the netlist data model on
//! the hot path.
//!
//! The pipeline mirrors a compiled-code simulator (flatten → schedule →
//! emit): combinational cells are topologically ordered by
//! [`steac_netlist::combinational_order`] and lowered to [`Instr`]s whose
//! operands are *slot offsets* into one buffer of
//! [`PackedLogic`](crate::packed::PackedLogic) words. Sequential cells
//! (flip-flops and latches) become side tables with their own state and
//! previous-clock slots appended to the same buffer, in original cell
//! order so evaluation order matches the interpreter it replaced.
//!
//! Buffer layout:
//!
//! ```text
//! [ net 0 .. net N-1 | flop states | latch states | flop prev-clocks ]
//! ```
//!
//! The program also carries the module's port tables (name → net, plus
//! the output-port net list), so an executor built from it never needs
//! the [`Module`] again: compile once, hand the `Arc<SimProgram>` to as
//! many [`Simulator`](crate::Simulator)s as there are cores.

use crate::opt::{OptConfig, OptStats};
use crate::SimError;
use std::collections::HashMap;
use std::fmt;
use steac_netlist::{combinational_order, CellContents, GateKind, Module, NetId, PortDir};

/// Whether the compile-time optimizer is enabled (`STEAC_OPT`, default
/// on; `0`/`off`/`false` disable it).
#[must_use]
pub fn opt_enabled_from_env() -> bool {
    match std::env::var("STEAC_OPT") {
        Ok(v) => !matches!(v.trim(), "0" | "off" | "false"),
        Err(_) => true,
    }
}

/// Sentinel for an absent operand slot (e.g. `rstn` on a plain `Dff`).
pub const NO_SLOT: u32 = u32::MAX;

/// Opcode of one combinational instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum SimOp {
    /// Inverter.
    Inv,
    /// Buffer (`Z` → `X`).
    Buf,
    /// 2-input AND.
    And2,
    /// 3-input AND.
    And3,
    /// 2-input NAND.
    Nand2,
    /// 3-input NAND.
    Nand3,
    /// 4-input NAND.
    Nand4,
    /// 2-input OR.
    Or2,
    /// 3-input OR.
    Or3,
    /// 2-input NOR.
    Nor2,
    /// 3-input NOR.
    Nor3,
    /// 2-input XOR.
    Xor2,
    /// 2-input XNOR.
    Xnor2,
    /// 2-to-1 mux `(a, b, sel)`.
    Mux2,
    /// Constant 0.
    Tie0,
    /// Constant 1.
    Tie1,
    /// Unrecognised gate kind: evaluates to `X` on every lane.
    Unknown,
}

impl SimOp {
    /// Number of leading `ins` entries the engine actually reads.
    #[must_use]
    pub fn arity(self) -> usize {
        match self {
            SimOp::Tie0 | SimOp::Tie1 | SimOp::Unknown => 0,
            SimOp::Inv | SimOp::Buf => 1,
            SimOp::And2 | SimOp::Nand2 | SimOp::Or2 | SimOp::Nor2 | SimOp::Xor2 | SimOp::Xnor2 => 2,
            SimOp::And3 | SimOp::Nand3 | SimOp::Or3 | SimOp::Nor3 | SimOp::Mux2 => 3,
            SimOp::Nand4 => 4,
        }
    }

    /// All opcodes, in wire order (for per-opcode statistics).
    pub const ALL: [SimOp; 17] = [
        SimOp::Inv,
        SimOp::Buf,
        SimOp::And2,
        SimOp::And3,
        SimOp::Nand2,
        SimOp::Nand3,
        SimOp::Nand4,
        SimOp::Or2,
        SimOp::Or3,
        SimOp::Nor2,
        SimOp::Nor3,
        SimOp::Xor2,
        SimOp::Xnor2,
        SimOp::Mux2,
        SimOp::Tie0,
        SimOp::Tie1,
        SimOp::Unknown,
    ];
}

/// One combinational instruction: opcode plus input/output slot offsets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Instr {
    /// Opcode.
    pub op: SimOp,
    /// Input slots in pin order; unused trailing entries are [`NO_SLOT`].
    pub ins: [u32; 4],
    /// Output slot.
    pub out: u32,
}

/// Flip-flop record (evaluated outside the combinational stream).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlopInstr {
    /// Cell index in the source module (diagnostics).
    pub cell: u32,
    /// Functional data slot.
    pub d: u32,
    /// Scan-in slot, or [`NO_SLOT`] for non-scan flops.
    pub si: u32,
    /// Scan-enable slot, or [`NO_SLOT`].
    pub se: u32,
    /// Clock slot.
    pub ck: u32,
    /// Active-low async reset slot, or [`NO_SLOT`].
    pub rstn: u32,
    /// Output (Q) slot.
    pub q: u32,
    /// State slot in the flat buffer.
    pub state: u32,
    /// Previous-clock slot in the flat buffer.
    pub prev_ck: u32,
}

/// Transparent-latch record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatchInstr {
    /// Cell index in the source module (diagnostics).
    pub cell: u32,
    /// Data slot.
    pub d: u32,
    /// Transparent-enable slot.
    pub en: u32,
    /// Output slot.
    pub q: u32,
    /// State slot in the flat buffer.
    pub state: u32,
}

/// A sequential element in original cell order (the order the interpreter
/// evaluated them, which callers' settle semantics depend on).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeqInstr {
    /// An edge-triggered flip-flop; the index points into
    /// [`SimProgram::flops`].
    Flop(u32),
    /// A level-sensitive latch; the index points into
    /// [`SimProgram::latches`].
    Latch(u32),
}

/// A module port carried into the compiled program (name → net binding).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PortInfo {
    /// Port name.
    pub name: String,
    /// Bound net.
    pub net: NetId,
    /// Direction.
    pub dir: PortDir,
}

/// A module compiled for bit-parallel execution.
///
/// Owns everything an executor needs — instruction stream, sequential
/// side tables, and the port lookup tables — so it can be shared behind
/// an [`Arc`](std::sync::Arc) by one [`Simulator`](crate::Simulator) per
/// core without borrowing the source [`Module`].
#[derive(Debug, Clone, PartialEq)]
pub struct SimProgram {
    /// Source module name (diagnostics).
    pub name: String,
    /// Number of nets (the leading slots of the buffer).
    pub net_count: usize,
    /// Total buffer length (nets + flop states + latch states +
    /// flop previous-clocks).
    pub slot_count: usize,
    /// Combinational instructions in evaluation (topological) order.
    pub comb: Vec<Instr>,
    /// Flip-flop records.
    pub flops: Vec<FlopInstr>,
    /// Latch records.
    pub latches: Vec<LatchInstr>,
    /// Sequential elements in original cell order.
    pub seq_order: Vec<SeqInstr>,
    /// Ports in module port order.
    pub ports: Vec<PortInfo>,
    /// Output-port nets in port order (the executor's observation set).
    pub output_nets: Vec<NetId>,
    /// Net → value-buffer-slot permutation (identity when unoptimized;
    /// see [`crate::opt`]'s renumbering pass). State slots
    /// (`>= net_count`) are never permuted.
    pub net_slot: Vec<u32>,
    /// What the optimizer pipeline did to this program.
    pub opt: OptStats,
    /// Port-name index into `ports`.
    port_index: HashMap<String, u32>,
    /// Inverse of `net_slot` (derived; rebuilt after decode/optimize).
    slot_net: Vec<u32>,
    /// `output_nets` pre-translated to slots (derived).
    output_slots: Vec<u32>,
}

impl SimProgram {
    /// Compiles a flat module (no hierarchical instances — flatten first)
    /// and runs the default optimizer pipeline ([`crate::opt`]) over the
    /// result, unless the `STEAC_OPT=0` escape hatch is set.
    ///
    /// The default [`OptConfig`] treats **every** net as a potential
    /// force/fault site, so only the unconditionally-sound passes (slot
    /// renumbering + schedule verification) transform the program; see
    /// [`SimProgram::compile_with`] to unlock constant folding, CSE and
    /// dead-code elimination with a declared force surface.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Netlist`] if the module has multiple drivers or
    /// a combinational loop.
    pub fn compile(m: &Module) -> Result<Self, SimError> {
        if opt_enabled_from_env() {
            Self::compile_with(m, &OptConfig::default())
        } else {
            Self::compile_unoptimized(m)
        }
    }

    /// Compiles and optimizes with an explicit pass configuration
    /// (ignores `STEAC_OPT`).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Netlist`] if the module has multiple drivers or
    /// a combinational loop.
    pub fn compile_with(m: &Module, cfg: &OptConfig) -> Result<Self, SimError> {
        let mut p = Self::compile_unoptimized(m)?;
        crate::opt::optimize(&mut p, cfg);
        Ok(p)
    }

    /// Compiles without running any optimizer pass: the raw levelized
    /// stream, an identity slot permutation, and `opt.scheduled = false`
    /// (so the engine takes the legacy fixpoint settle). This is the
    /// `STEAC_OPT=0` path and the honest baseline for benchmarks.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Netlist`] if the module has multiple drivers or
    /// a combinational loop.
    pub fn compile_unoptimized(m: &Module) -> Result<Self, SimError> {
        let order = combinational_order(m)?;
        let net_count = m.nets.len();

        // First pass: assign state slots for sequential cells.
        let mut flops = Vec::new();
        let mut latches = Vec::new();
        let mut seq_order = Vec::new();
        let mut next_slot = net_count as u32;
        for (idx, cell) in m.cells.iter().enumerate() {
            if let CellContents::Gate {
                kind,
                inputs,
                output,
            } = &cell.contents
            {
                let slot = |i: usize| inputs[i].index() as u32;
                if kind.is_flop() {
                    let (d, si, se, ck, rstn) = match kind {
                        GateKind::Dff => (slot(0), NO_SLOT, NO_SLOT, slot(1), NO_SLOT),
                        GateKind::DffR => (slot(0), NO_SLOT, NO_SLOT, slot(1), slot(2)),
                        GateKind::Sdff => (slot(0), slot(1), slot(2), slot(3), NO_SLOT),
                        GateKind::SdffR => (slot(0), slot(1), slot(2), slot(3), slot(4)),
                        _ => unreachable!("is_flop covers exactly these kinds"),
                    };
                    seq_order.push(SeqInstr::Flop(flops.len() as u32));
                    flops.push(FlopInstr {
                        cell: idx as u32,
                        d,
                        si,
                        se,
                        ck,
                        rstn,
                        q: output.index() as u32,
                        state: 0,   // patched below
                        prev_ck: 0, // patched below
                    });
                } else if *kind == GateKind::Latch {
                    seq_order.push(SeqInstr::Latch(latches.len() as u32));
                    latches.push(LatchInstr {
                        cell: idx as u32,
                        d: slot(0),
                        en: slot(1),
                        q: output.index() as u32,
                        state: 0, // patched below
                    });
                }
            }
        }
        for f in &mut flops {
            f.state = next_slot;
            next_slot += 1;
        }
        for l in &mut latches {
            l.state = next_slot;
            next_slot += 1;
        }
        for f in &mut flops {
            f.prev_ck = next_slot;
            next_slot += 1;
        }

        // Second pass: lower scheduled combinational cells.
        let mut comb = Vec::with_capacity(order.len());
        let mut unknown_kinds: Vec<String> = Vec::new();
        for cid in order {
            let CellContents::Gate {
                kind,
                inputs,
                output,
            } = &m.cells[cid.index()].contents
            else {
                continue;
            };
            let op = match kind {
                GateKind::Inv => SimOp::Inv,
                GateKind::Buf => SimOp::Buf,
                GateKind::And2 => SimOp::And2,
                GateKind::And3 => SimOp::And3,
                GateKind::Nand2 => SimOp::Nand2,
                GateKind::Nand3 => SimOp::Nand3,
                GateKind::Nand4 => SimOp::Nand4,
                GateKind::Or2 => SimOp::Or2,
                GateKind::Or3 => SimOp::Or3,
                GateKind::Nor2 => SimOp::Nor2,
                GateKind::Nor3 => SimOp::Nor3,
                GateKind::Xor2 => SimOp::Xor2,
                GateKind::Xnor2 => SimOp::Xnor2,
                GateKind::Mux2 => SimOp::Mux2,
                GateKind::Tie0 => SimOp::Tie0,
                GateKind::Tie1 => SimOp::Tie1,
                other => {
                    let name = format!("{other:?}");
                    if !unknown_kinds.contains(&name) {
                        unknown_kinds.push(name);
                    }
                    SimOp::Unknown
                }
            };
            let mut ins = [NO_SLOT; 4];
            for (i, n) in inputs.iter().take(4).enumerate() {
                ins[i] = n.index() as u32;
            }
            comb.push(Instr {
                op,
                ins,
                out: output.index() as u32,
            });
        }

        let ports: Vec<PortInfo> = m
            .ports
            .iter()
            .map(|p| PortInfo {
                name: p.name.clone(),
                net: p.net,
                dir: p.dir,
            })
            .collect();
        let output_nets = ports
            .iter()
            .filter(|p| p.dir == PortDir::Output)
            .map(|p| p.net)
            .collect();
        let port_index = ports
            .iter()
            .enumerate()
            .map(|(i, p)| (p.name.clone(), i as u32))
            .collect();

        if !unknown_kinds.is_empty() {
            // Once per compile, not per gate: the affected gates evaluate
            // to all-X, which silently depresses coverage if unnoticed.
            eprintln!(
                "steac-sim: module `{}`: {} gate kind(s) not recognised by the \
                 packed engine, lowered to all-X `SimOp::Unknown`: {}",
                m.name,
                unknown_kinds.len(),
                unknown_kinds.join(", ")
            );
        }

        let mut p = SimProgram {
            name: m.name.clone(),
            net_count,
            slot_count: next_slot as usize,
            comb,
            flops,
            latches,
            seq_order,
            ports,
            output_nets,
            net_slot: (0..net_count as u32).collect(),
            opt: OptStats::default(),
            port_index,
            slot_net: Vec::new(),
            output_slots: Vec::new(),
        };
        p.rebuild_derived();
        Ok(p)
    }

    /// Reassembles a program from decoded parts (the wire decoder's
    /// constructor), rebuilding the port-name index and the derived slot
    /// tables.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn assemble(
        name: String,
        net_count: usize,
        slot_count: usize,
        comb: Vec<Instr>,
        flops: Vec<FlopInstr>,
        latches: Vec<LatchInstr>,
        seq_order: Vec<SeqInstr>,
        ports: Vec<PortInfo>,
        output_nets: Vec<NetId>,
        net_slot: Vec<u32>,
        opt: OptStats,
    ) -> Self {
        let port_index = ports
            .iter()
            .enumerate()
            .map(|(i, p)| (p.name.clone(), i as u32))
            .collect();
        let mut p = SimProgram {
            name,
            net_count,
            slot_count,
            comb,
            flops,
            latches,
            seq_order,
            ports,
            output_nets,
            net_slot,
            opt,
            port_index,
            slot_net: Vec::new(),
            output_slots: Vec::new(),
        };
        p.rebuild_derived();
        p
    }

    /// Rebuilds the derived slot tables (`slot_net`, `output_slots`)
    /// from `net_slot` — deterministic, so decoded and freshly-compiled
    /// programs compare equal field-for-field.
    pub(crate) fn rebuild_derived(&mut self) {
        let mut slot_net = vec![0u32; self.net_count];
        for (n, &s) in self.net_slot.iter().enumerate() {
            slot_net[s as usize] = n as u32;
        }
        self.slot_net = slot_net;
        self.output_slots = self
            .output_nets
            .iter()
            .map(|n| self.net_slot[n.index()])
            .collect();
    }

    /// The value-buffer slot holding `net` (optimized programs permute
    /// net slots for locality; unoptimized programs are identity).
    #[inline]
    #[must_use]
    pub fn slot_of(&self, net: NetId) -> u32 {
        self.net_slot[net.index()]
    }

    /// The net occupying value-buffer slot `slot` (< `net_count`).
    #[inline]
    #[must_use]
    pub fn net_of_slot(&self, slot: u32) -> NetId {
        NetId(self.slot_net[slot as usize])
    }

    /// Output-port slots in port order (pre-translated `output_nets`).
    #[inline]
    #[must_use]
    pub fn output_slots(&self) -> &[u32] {
        &self.output_slots
    }

    /// Number of combinational instructions.
    #[must_use]
    pub fn instruction_count(&self) -> usize {
        self.comb.len()
    }

    /// Structural statistics: instruction mix, logic depth, buffer size,
    /// unknown-gate count, and what the optimizer pipeline did.
    #[must_use]
    pub fn stats(&self) -> ProgramStats {
        let mut per_op = Vec::new();
        for op in SimOp::ALL {
            let count = self.comb.iter().filter(|i| i.op == op).count();
            if count > 0 {
                per_op.push((op, count));
            }
        }
        let unknown_gates = self.comb.iter().filter(|i| i.op == SimOp::Unknown).count();
        // Longest combinational path, in gates: depth(out) =
        // 1 + max(depth(ins)). One forward pass suffices on the
        // topological stream.
        let mut depth = vec![0u32; self.slot_count];
        let mut levels = 0;
        for i in &self.comb {
            let d = 1
                + (0..i.op.arity())
                    .map(|k| depth[i.ins[k] as usize])
                    .max()
                    .unwrap_or(0);
            depth[i.out as usize] = d;
            levels = levels.max(d as usize);
        }
        ProgramStats {
            name: self.name.clone(),
            per_op,
            levels,
            net_count: self.net_count,
            slot_count: self.slot_count,
            flops: self.flops.len(),
            latches: self.latches.len(),
            unknown_gates,
            opt: self.opt,
        }
    }

    /// Looks up a port by name.
    #[must_use]
    pub fn port(&self, name: &str) -> Option<&PortInfo> {
        self.port_index.get(name).map(|&i| &self.ports[i as usize])
    }

    /// Looks up a port's net by name.
    #[must_use]
    pub fn port_net(&self, name: &str) -> Option<NetId> {
        self.port(name).map(|p| p.net)
    }
}

/// Structural statistics for one compiled program (see
/// [`SimProgram::stats`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProgramStats {
    /// Source module name.
    pub name: String,
    /// Non-zero instruction counts per opcode, in wire order.
    pub per_op: Vec<(SimOp, usize)>,
    /// Longest combinational path, in gates.
    pub levels: usize,
    /// Net count (leading buffer slots).
    pub net_count: usize,
    /// Total value-buffer slots (nets + sequential state).
    pub slot_count: usize,
    /// Flip-flop count.
    pub flops: usize,
    /// Latch count.
    pub latches: usize,
    /// Instructions that evaluate to all-X because their gate kind was
    /// not recognised at compile time.
    pub unknown_gates: usize,
    /// Optimizer pass deltas.
    pub opt: OptStats,
}

impl fmt::Display for ProgramStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "program `{}`: {} instrs, {} levels, {} nets, {} slots, {} flops, {} latches",
            self.name,
            self.per_op.iter().map(|(_, c)| c).sum::<usize>(),
            self.levels,
            self.net_count,
            self.slot_count,
            self.flops,
            self.latches,
        )?;
        write!(f, "  ops:")?;
        for (op, count) in &self.per_op {
            write!(f, " {op:?}={count}")?;
        }
        writeln!(f)?;
        if self.unknown_gates > 0 {
            writeln!(
                f,
                "  WARNING: {} unknown gate(s) evaluate to all-X",
                self.unknown_gates
            )?;
        }
        if self.opt.enabled {
            write!(
                f,
                "  opt: {} -> {} instrs (folded {}, cse {}, dce {}, slots reclaimed {}), scheduled={}",
                self.opt.instrs_before,
                self.opt.instrs_after,
                self.opt.folded,
                self.opt.cse_merged,
                self.opt.dce_removed,
                self.opt.slots_reclaimed,
                self.opt.scheduled,
            )
        } else {
            write!(f, "  opt: disabled (STEAC_OPT=0)")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use steac_netlist::NetlistBuilder;

    #[test]
    fn compile_orders_and_sizes() {
        let mut b = NetlistBuilder::new("m");
        let ck = b.input("ck");
        let a = b.input("a");
        let x = b.gate(GateKind::Inv, &[a]);
        let y = b.gate(GateKind::And2, &[a, x]);
        let q = b.gate(GateKind::Dff, &[y, ck]);
        let l = b.gate(GateKind::Latch, &[q, a]);
        b.output("l", l);
        let m = b.finish().unwrap();
        let p = SimProgram::compile(&m).unwrap();
        assert_eq!(p.net_count, m.nets.len());
        assert_eq!(p.comb.len(), 2);
        assert_eq!(p.flops.len(), 1);
        assert_eq!(p.latches.len(), 1);
        // nets + 1 flop state + 1 latch state + 1 prev_ck
        assert_eq!(p.slot_count, m.nets.len() + 3);
        // Inv feeds And2, so it must be scheduled first.
        assert_eq!(p.comb[0].op, SimOp::Inv);
        assert_eq!(p.comb[1].op, SimOp::And2);
        // Sequential order follows cell order: flop before latch here.
        assert_eq!(p.seq_order, vec![SeqInstr::Flop(0), SeqInstr::Latch(0)]);
    }

    #[test]
    fn compile_rejects_comb_loops() {
        let mut b = NetlistBuilder::new("m");
        let a = b.input("a");
        let x = b.net("x");
        let y = b.gate(GateKind::And2, &[a, x]);
        b.gate_into(GateKind::Inv, &[y], x);
        b.output("y", y);
        let m = b.finish().unwrap();
        assert!(matches!(SimProgram::compile(&m), Err(SimError::Netlist(_))));
    }

    #[test]
    fn scan_flop_slots_are_wired() {
        let mut b = NetlistBuilder::new("m");
        let d = b.input("d");
        let si = b.input("si");
        let se = b.input("se");
        let ck = b.input("ck");
        let rstn = b.input("rstn");
        let q = b.gate(GateKind::SdffR, &[d, si, se, ck, rstn]);
        b.output("q", q);
        let m = b.finish().unwrap();
        let p = SimProgram::compile(&m).unwrap();
        let f = &p.flops[0];
        assert_ne!(f.si, NO_SLOT);
        assert_ne!(f.se, NO_SLOT);
        assert_ne!(f.rstn, NO_SLOT);
        assert!(f.state as usize >= p.net_count);
        assert!(f.prev_ck as usize >= p.net_count);
    }
}
