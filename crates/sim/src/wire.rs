//! Versioned, dependency-free binary wire format for compiled programs
//! and work-unit payloads — the serialization substrate that lets the
//! compile-once/execute-many pipeline fan out across *processes* (and,
//! eventually, machines) instead of just threads.
//!
//! # Layout
//!
//! Everything is little-endian and length-prefixed; there are no padding
//! bytes and no self-describing schema. Strings are a `u64` byte length
//! followed by UTF-8 bytes; nested blobs ("blocks") are a `u64` byte
//! length followed by raw bytes. A serialized [`SimProgram`] is:
//!
//! ```text
//! magic   b"SPRG"                        (4 bytes)
//! version u16                            (currently 3)
//! name    str
//! net_count, slot_count                  (u64 each)
//! comb    u64 count, then per instr:     op u8, ins 4 x u32, out u32
//! flops   u64 count, then per flop:      cell,d,si,se,ck,rstn,q,state,prev_ck (9 x u32)
//! latches u64 count, then per latch:     cell,d,en,q,state (5 x u32)
//! seq     u64 count, then per element:   tag u8 (0 = flop, 1 = latch), index u32
//! ports   u64 count, then per port:      name str, net u32, dir u8 (0 = in, 1 = out)
//! outputs u64 count, then per net:       u32
//! slots   u64 count (= net_count), then per net: slot u32 (a permutation)
//! opt     enabled u8, folded/cse/dce/reclaimed/before/after (6 x u32), scheduled u8
//! ```
//!
//! Version 2 added the optimizer metadata (the `slots` permutation and
//! the `opt` record), so decoded programs carry their slot renumbering
//! and the engine knows whether the single-sweep settle fast path is
//! licensed. The `scheduled` flag is re-verified against the decoded
//! stream — bytes cannot claim a schedule they do not have. Version 3
//! added the fault-model subsystem's payloads (transition and bridging
//! job/unit layouts, the `SDCT` dictionary block and the diagnose
//! job — see [`crate::models`]); the program layout itself is
//! unchanged, but the whole family moves in lock step per the rule
//! below.
//!
//! Work-unit payloads (fault chunks here, pattern chunks in
//! `steac-pattern`, March chunks in `steac-membist`) carry no magic of
//! their own: they ride inside the versioned worker-protocol envelope
//! (see [`crate::shard`]), which pins the version for every byte of a
//! request.
//!
//! # Versioning rule
//!
//! [`WIRE_VERSION`] is bumped on **any** change to any byte layout in
//! this format family, however small; decoders accept exactly the
//! current version and reject everything else with
//! [`WireError::UnsupportedVersion`]. There is no in-band negotiation: a
//! mixed-version fleet is upgraded in lock step (program blobs are cheap
//! to re-encode from source netlists, so nothing durable is lost).
//!
//! # Robustness
//!
//! Decoding is total: truncated, corrupted or hostile bytes produce a
//! typed [`WireError`], never a panic and never an unbounded allocation
//! (vector counts are checked against the remaining byte budget before
//! reserving). Decoded programs are additionally validated structurally
//! — opcode and tag ranges, operand slots against `slot_count`, written
//! nets against `net_count`, sequential indices against their side
//! tables — so an executor can run a decoded program without re-checking
//! bounds on the hot path.

use crate::fault::{Fault, StuckAt};
use crate::logic::Logic;
use crate::opt::OptStats;
use crate::program::{
    FlopInstr, Instr, LatchInstr, PortInfo, SeqInstr, SimOp, SimProgram, NO_SLOT,
};
use std::fmt;
use steac_netlist::{NetId, PortDir};

/// Magic bytes opening a serialized [`SimProgram`].
pub const PROGRAM_MAGIC: [u8; 4] = *b"SPRG";

/// FNV-1a 64-bit hash over a byte slice — the content address used by
/// the worker program cache (see [`crate::shard`]). Dependency-free,
/// stable across platforms (the wire bytes it digests are already
/// little-endian), and fast enough that hashing a multi-megabyte
/// program blob is noise next to serializing it.
#[must_use]
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    const OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = OFFSET_BASIS;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(PRIME);
    }
    hash
}

/// Current wire-format version (see the module docs for the bump rule).
pub const WIRE_VERSION: u16 = 3;

/// Typed decode failure. Encoding cannot fail.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum WireError {
    /// The buffer ended before the named field was complete.
    Truncated {
        /// Field being decoded.
        context: &'static str,
    },
    /// A magic prefix did not match.
    BadMagic {
        /// Field being decoded.
        context: &'static str,
    },
    /// The encoder's version is not the one this decoder speaks.
    UnsupportedVersion {
        /// Version found in the bytes.
        found: u16,
        /// Version this build supports.
        supported: u16,
    },
    /// A field decoded but held an impossible value (bad tag, bad UTF-8,
    /// out-of-range slot or count).
    Corrupt {
        /// Field being decoded.
        context: &'static str,
    },
    /// Decoding finished with unconsumed bytes left over.
    Trailing {
        /// Number of leftover bytes.
        bytes: usize,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated { context } => write!(f, "truncated wire bytes at {context}"),
            WireError::BadMagic { context } => write!(f, "bad magic for {context}"),
            WireError::UnsupportedVersion { found, supported } => {
                write!(
                    f,
                    "wire version {found} not supported (this build speaks {supported})"
                )
            }
            WireError::Corrupt { context } => write!(f, "corrupt wire bytes at {context}"),
            WireError::Trailing { bytes } => write!(f, "{bytes} trailing bytes after decode"),
        }
    }
}

impl std::error::Error for WireError {}

/// Little-endian append-only byte sink. Infallible.
#[derive(Debug, Default)]
pub struct WireWriter {
    buf: Vec<u8>,
}

impl WireWriter {
    /// An empty writer.
    #[must_use]
    pub fn new() -> Self {
        WireWriter::default()
    }

    /// The accumulated bytes.
    #[must_use]
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Appends raw bytes (no length prefix).
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Pre-allocates room for `additional` more bytes, so hot encoders
    /// with a known payload size append without reallocation churn.
    pub fn reserve(&mut self, additional: usize) {
        self.buf.reserve(additional);
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u16`.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `usize` as `u64`.
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Appends a `bool` as one byte.
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(u8::from(v));
    }

    /// Appends a [`Logic`] value as one byte.
    pub fn put_logic(&mut self, v: Logic) {
        self.put_u8(match v {
            Logic::Zero => 0,
            Logic::One => 1,
            Logic::X => 2,
            Logic::Z => 3,
        });
    }

    /// Appends a length-prefixed string.
    pub fn put_str(&mut self, s: &str) {
        self.put_usize(s.len());
        self.put_bytes(s.as_bytes());
    }

    /// Appends a length-prefixed nested blob.
    pub fn put_block(&mut self, bytes: &[u8]) {
        self.put_usize(bytes.len());
        self.put_bytes(bytes);
    }
}

/// Bounds-checked little-endian cursor over a byte slice.
#[derive(Debug)]
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// A cursor at the start of `buf`.
    #[must_use]
    pub fn new(buf: &'a [u8]) -> Self {
        WireReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize, context: &'static str) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated { context });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] at the end of the buffer.
    pub fn get_u8(&mut self, context: &'static str) -> Result<u8, WireError> {
        Ok(self.take(1, context)?[0])
    }

    /// Reads a `u16`.
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] at the end of the buffer.
    pub fn get_u16(&mut self, context: &'static str) -> Result<u16, WireError> {
        let b = self.take(2, context)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Reads a `u32`.
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] at the end of the buffer.
    pub fn get_u32(&mut self, context: &'static str) -> Result<u32, WireError> {
        let b = self.take(4, context)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a `u64`.
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] at the end of the buffer.
    pub fn get_u64(&mut self, context: &'static str) -> Result<u64, WireError> {
        let b = self.take(8, context)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8-byte slice")))
    }

    /// Reads a `u64` and converts it to `usize`.
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] / [`WireError::Corrupt`] on overflow.
    pub fn get_usize(&mut self, context: &'static str) -> Result<usize, WireError> {
        usize::try_from(self.get_u64(context)?).map_err(|_| WireError::Corrupt { context })
    }

    /// Reads a `bool` (strictly 0 or 1).
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] / [`WireError::Corrupt`] on other bytes.
    pub fn get_bool(&mut self, context: &'static str) -> Result<bool, WireError> {
        match self.get_u8(context)? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(WireError::Corrupt { context }),
        }
    }

    /// Reads a [`Logic`] value.
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] / [`WireError::Corrupt`] on a bad tag.
    pub fn get_logic(&mut self, context: &'static str) -> Result<Logic, WireError> {
        match self.get_u8(context)? {
            0 => Ok(Logic::Zero),
            1 => Ok(Logic::One),
            2 => Ok(Logic::X),
            3 => Ok(Logic::Z),
            _ => Err(WireError::Corrupt { context }),
        }
    }

    /// Reads an element count and sanity-checks it against the bytes
    /// that are actually left (each element needs at least
    /// `min_elem_bytes`), so corrupt counts cannot trigger huge
    /// allocations.
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] / [`WireError::Corrupt`] on an
    /// impossible count.
    pub fn get_count(
        &mut self,
        context: &'static str,
        min_elem_bytes: usize,
    ) -> Result<usize, WireError> {
        let count = self.get_usize(context)?;
        if count > self.remaining() / min_elem_bytes.max(1) {
            return Err(WireError::Corrupt { context });
        }
        Ok(count)
    }

    /// Reads a length-prefixed string.
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] / [`WireError::Corrupt`] on bad UTF-8.
    pub fn get_str(&mut self, context: &'static str) -> Result<String, WireError> {
        let bytes = self.get_block(context)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::Corrupt { context })
    }

    /// Reads a length-prefixed nested blob.
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`].
    pub fn get_block(&mut self, context: &'static str) -> Result<&'a [u8], WireError> {
        let len = self.get_usize(context)?;
        if len > self.remaining() {
            return Err(WireError::Truncated { context });
        }
        self.take(len, context)
    }

    /// Consumes and checks a 4-byte magic prefix.
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] / [`WireError::BadMagic`].
    pub fn expect_magic(
        &mut self,
        magic: &[u8; 4],
        context: &'static str,
    ) -> Result<(), WireError> {
        if self.take(4, context)? == magic {
            Ok(())
        } else {
            Err(WireError::BadMagic { context })
        }
    }

    /// Consumes a `u16` version field and checks it.
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] / [`WireError::UnsupportedVersion`].
    pub fn expect_version(
        &mut self,
        supported: u16,
        context: &'static str,
    ) -> Result<(), WireError> {
        let found = self.get_u16(context)?;
        if found == supported {
            Ok(())
        } else {
            Err(WireError::UnsupportedVersion { found, supported })
        }
    }

    /// Asserts the buffer is fully consumed.
    ///
    /// # Errors
    ///
    /// [`WireError::Trailing`] if bytes are left over.
    pub fn finish(self) -> Result<(), WireError> {
        match self.remaining() {
            0 => Ok(()),
            bytes => Err(WireError::Trailing { bytes }),
        }
    }
}

// ---------- SimProgram ----------

fn op_code(op: SimOp) -> u8 {
    match op {
        SimOp::Inv => 0,
        SimOp::Buf => 1,
        SimOp::And2 => 2,
        SimOp::And3 => 3,
        SimOp::Nand2 => 4,
        SimOp::Nand3 => 5,
        SimOp::Nand4 => 6,
        SimOp::Or2 => 7,
        SimOp::Or3 => 8,
        SimOp::Nor2 => 9,
        SimOp::Nor3 => 10,
        SimOp::Xor2 => 11,
        SimOp::Xnor2 => 12,
        SimOp::Mux2 => 13,
        SimOp::Tie0 => 14,
        SimOp::Tie1 => 15,
        SimOp::Unknown => 16,
    }
}

fn op_from_code(code: u8) -> Option<SimOp> {
    Some(match code {
        0 => SimOp::Inv,
        1 => SimOp::Buf,
        2 => SimOp::And2,
        3 => SimOp::And3,
        4 => SimOp::Nand2,
        5 => SimOp::Nand3,
        6 => SimOp::Nand4,
        7 => SimOp::Or2,
        8 => SimOp::Or3,
        9 => SimOp::Nor2,
        10 => SimOp::Nor3,
        11 => SimOp::Xor2,
        12 => SimOp::Xnor2,
        13 => SimOp::Mux2,
        14 => SimOp::Tie0,
        15 => SimOp::Tie1,
        16 => SimOp::Unknown,
        _ => return None,
    })
}

/// Number of leading `ins` entries the engine actually reads for `op`.
fn op_arity(op: SimOp) -> usize {
    op.arity()
}

/// Serializes a compiled program (see the module docs for the layout).
#[must_use]
pub fn encode_program(p: &SimProgram) -> Vec<u8> {
    let mut w = WireWriter::new();
    w.put_bytes(&PROGRAM_MAGIC);
    w.put_u16(WIRE_VERSION);
    w.put_str(&p.name);
    w.put_usize(p.net_count);
    w.put_usize(p.slot_count);
    w.put_usize(p.comb.len());
    for i in &p.comb {
        w.put_u8(op_code(i.op));
        for &slot in &i.ins {
            w.put_u32(slot);
        }
        w.put_u32(i.out);
    }
    w.put_usize(p.flops.len());
    for f in &p.flops {
        for v in [
            f.cell, f.d, f.si, f.se, f.ck, f.rstn, f.q, f.state, f.prev_ck,
        ] {
            w.put_u32(v);
        }
    }
    w.put_usize(p.latches.len());
    for l in &p.latches {
        for v in [l.cell, l.d, l.en, l.q, l.state] {
            w.put_u32(v);
        }
    }
    w.put_usize(p.seq_order.len());
    for s in &p.seq_order {
        match s {
            SeqInstr::Flop(i) => {
                w.put_u8(0);
                w.put_u32(*i);
            }
            SeqInstr::Latch(i) => {
                w.put_u8(1);
                w.put_u32(*i);
            }
        }
    }
    w.put_usize(p.ports.len());
    for port in &p.ports {
        w.put_str(&port.name);
        w.put_u32(port.net.0);
        w.put_u8(match port.dir {
            PortDir::Input => 0,
            PortDir::Output => 1,
        });
    }
    w.put_usize(p.output_nets.len());
    for n in &p.output_nets {
        w.put_u32(n.0);
    }
    w.put_usize(p.net_slot.len());
    for &s in &p.net_slot {
        w.put_u32(s);
    }
    w.put_bool(p.opt.enabled);
    for v in [
        p.opt.folded,
        p.opt.cse_merged,
        p.opt.dce_removed,
        p.opt.slots_reclaimed,
        p.opt.instrs_before,
        p.opt.instrs_after,
    ] {
        w.put_u32(v);
    }
    w.put_bool(p.opt.scheduled);
    w.finish()
}

/// A slot operand that must address the value buffer.
fn check_slot(slot: u32, slot_count: usize, context: &'static str) -> Result<(), WireError> {
    if (slot as usize) < slot_count {
        Ok(())
    } else {
        Err(WireError::Corrupt { context })
    }
}

/// A slot operand that may be absent ([`NO_SLOT`]).
fn check_opt_slot(slot: u32, slot_count: usize, context: &'static str) -> Result<(), WireError> {
    if slot == NO_SLOT {
        Ok(())
    } else {
        check_slot(slot, slot_count, context)
    }
}

/// Deserializes and structurally validates a compiled program.
///
/// # Errors
///
/// A typed [`WireError`] on truncated, corrupted or version-mismatched
/// bytes; a successfully decoded program is safe to execute without
/// further bounds checks.
pub fn decode_program(bytes: &[u8]) -> Result<SimProgram, WireError> {
    let mut r = WireReader::new(bytes);
    r.expect_magic(&PROGRAM_MAGIC, "program magic")?;
    r.expect_version(WIRE_VERSION, "program version")?;
    let name = r.get_str("program name")?;
    // Every net costs at least a 4-byte net-slot entry later in the
    // stream, so a net count the remaining bytes cannot possibly hold is
    // corruption — and must be rejected *before* any count-sized
    // allocation happens.
    let net_count = r.get_count("net count", 4)?;
    let slot_count = r.get_usize("slot count")?;
    if slot_count < net_count {
        return Err(WireError::Corrupt {
            context: "slot count",
        });
    }

    let comb_count = r.get_count("instruction count", 21)?;
    let mut comb = Vec::with_capacity(comb_count);
    for _ in 0..comb_count {
        let op =
            op_from_code(r.get_u8("opcode")?).ok_or(WireError::Corrupt { context: "opcode" })?;
        let mut ins = [NO_SLOT; 4];
        for slot in &mut ins {
            *slot = r.get_u32("instruction input")?;
        }
        for &slot in ins.iter().take(op_arity(op)) {
            check_slot(slot, slot_count, "instruction input")?;
        }
        let out = r.get_u32("instruction output")?;
        // Outputs go through the force tables, which are net-sized.
        check_slot(out, net_count, "instruction output")?;
        comb.push(Instr { op, ins, out });
    }

    let flop_count = r.get_count("flop count", 36)?;
    let mut flops = Vec::with_capacity(flop_count);
    for _ in 0..flop_count {
        let mut v = [0u32; 9];
        for field in &mut v {
            *field = r.get_u32("flop record")?;
        }
        let f = FlopInstr {
            cell: v[0],
            d: v[1],
            si: v[2],
            se: v[3],
            ck: v[4],
            rstn: v[5],
            q: v[6],
            state: v[7],
            prev_ck: v[8],
        };
        check_slot(f.d, slot_count, "flop d slot")?;
        check_opt_slot(f.si, slot_count, "flop si slot")?;
        check_opt_slot(f.se, slot_count, "flop se slot")?;
        check_slot(f.ck, slot_count, "flop ck slot")?;
        check_opt_slot(f.rstn, slot_count, "flop rstn slot")?;
        check_slot(f.q, net_count, "flop q net")?;
        check_slot(f.state, slot_count, "flop state slot")?;
        check_slot(f.prev_ck, slot_count, "flop prev-ck slot")?;
        flops.push(f);
    }

    let latch_count = r.get_count("latch count", 20)?;
    let mut latches = Vec::with_capacity(latch_count);
    for _ in 0..latch_count {
        let mut v = [0u32; 5];
        for field in &mut v {
            *field = r.get_u32("latch record")?;
        }
        let l = LatchInstr {
            cell: v[0],
            d: v[1],
            en: v[2],
            q: v[3],
            state: v[4],
        };
        check_slot(l.d, slot_count, "latch d slot")?;
        check_slot(l.en, slot_count, "latch en slot")?;
        check_slot(l.q, net_count, "latch q net")?;
        check_slot(l.state, slot_count, "latch state slot")?;
        latches.push(l);
    }

    // The compiler lays out slots as nets, then one state slot per
    // latch, plus state + prev-ck per flop; slot renumbering only ever
    // shrinks that. A larger claim would make every slot-sized buffer
    // (engine state, schedule verification) allocate unbounded memory.
    if slot_count > net_count + 2 * flop_count + latch_count {
        return Err(WireError::Corrupt {
            context: "slot count",
        });
    }

    let seq_count = r.get_count("sequential count", 5)?;
    let mut seq_order = Vec::with_capacity(seq_count);
    for _ in 0..seq_count {
        let tag = r.get_u8("sequential tag")?;
        let index = r.get_u32("sequential index")?;
        let s = match tag {
            0 if (index as usize) < flops.len() => SeqInstr::Flop(index),
            1 if (index as usize) < latches.len() => SeqInstr::Latch(index),
            _ => {
                return Err(WireError::Corrupt {
                    context: "sequential element",
                })
            }
        };
        seq_order.push(s);
    }

    let port_count = r.get_count("port count", 13)?;
    let mut ports = Vec::with_capacity(port_count);
    for _ in 0..port_count {
        let pname = r.get_str("port name")?;
        let net = r.get_u32("port net")?;
        check_slot(net, net_count, "port net")?;
        let dir = match r.get_u8("port direction")? {
            0 => PortDir::Input,
            1 => PortDir::Output,
            _ => {
                return Err(WireError::Corrupt {
                    context: "port direction",
                })
            }
        };
        ports.push(PortInfo {
            name: pname,
            net: NetId(net),
            dir,
        });
    }

    let out_count = r.get_count("output-net count", 4)?;
    let mut output_nets = Vec::with_capacity(out_count);
    for _ in 0..out_count {
        let net = r.get_u32("output net")?;
        check_slot(net, net_count, "output net")?;
        output_nets.push(NetId(net));
    }

    let slot_table_count = r.get_count("net-slot count", 4)?;
    if slot_table_count != net_count {
        return Err(WireError::Corrupt {
            context: "net-slot count",
        });
    }
    let mut net_slot = Vec::with_capacity(net_count);
    let mut seen = vec![false; net_count];
    for _ in 0..net_count {
        let slot = r.get_u32("net-slot entry")?;
        // The table must be a permutation of the net slots: in range and
        // collision-free, or two nets would share one buffer word.
        if (slot as usize) >= net_count || seen[slot as usize] {
            return Err(WireError::Corrupt {
                context: "net-slot entry",
            });
        }
        seen[slot as usize] = true;
        net_slot.push(slot);
    }

    let opt = OptStats {
        enabled: r.get_bool("opt enabled")?,
        folded: r.get_u32("opt folded")?,
        cse_merged: r.get_u32("opt cse")?,
        dce_removed: r.get_u32("opt dce")?,
        slots_reclaimed: r.get_u32("opt slots reclaimed")?,
        instrs_before: r.get_u32("opt instrs before")?,
        instrs_after: r.get_u32("opt instrs after")?,
        scheduled: r.get_bool("opt scheduled")?,
    };

    r.finish()?;
    let p = SimProgram::assemble(
        name,
        net_count,
        slot_count,
        comb,
        flops,
        latches,
        seq_order,
        ports,
        output_nets,
        net_slot,
        opt,
    );
    // A claimed schedule licenses the engine's single-sweep settle fast
    // path; re-verify it so hostile bytes cannot make the fast path
    // produce wrong values.
    if p.opt.scheduled && !crate::opt::stream_is_scheduled(&p) {
        return Err(WireError::Corrupt {
            context: "opt scheduled",
        });
    }
    Ok(p)
}

// ---------- fault work units ----------

/// Serializes one fault-grading work unit (a chunk of the fault list).
#[must_use]
pub fn encode_faults(faults: &[Fault]) -> Vec<u8> {
    let mut w = WireWriter::new();
    w.put_usize(faults.len());
    for f in faults {
        w.put_u32(f.net.0);
        w.put_u8(match f.stuck {
            StuckAt::Zero => 0,
            StuckAt::One => 1,
        });
    }
    w.finish()
}

/// Deserializes a fault-grading work unit.
///
/// # Errors
///
/// A typed [`WireError`] on truncated or corrupted bytes.
pub fn decode_faults(bytes: &[u8]) -> Result<Vec<Fault>, WireError> {
    let mut r = WireReader::new(bytes);
    let count = r.get_count("fault count", 5)?;
    let mut faults = Vec::with_capacity(count);
    for _ in 0..count {
        let net = NetId(r.get_u32("fault net")?);
        let stuck = match r.get_u8("fault polarity")? {
            0 => StuckAt::Zero,
            1 => StuckAt::One,
            _ => {
                return Err(WireError::Corrupt {
                    context: "fault polarity",
                })
            }
        };
        faults.push(Fault { net, stuck });
    }
    r.finish()?;
    Ok(faults)
}

#[cfg(test)]
mod tests {
    use super::*;
    use steac_netlist::{GateKind, NetlistBuilder};

    fn sample_program() -> SimProgram {
        let mut b = NetlistBuilder::new("wire_sample");
        let ck = b.input("ck");
        let rstn = b.input("rstn");
        let a = b.input("a");
        let x = b.gate(GateKind::Inv, &[a]);
        let y = b.gate(GateKind::And2, &[a, x]);
        let q = b.gate(GateKind::DffR, &[y, ck, rstn]);
        let l = b.gate(GateKind::Latch, &[q, a]);
        let z = b.gate(GateKind::Mux2, &[q, l, a]);
        b.output("z", z);
        SimProgram::compile(&b.finish().unwrap()).unwrap()
    }

    #[test]
    fn fnv1a64_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
        // Content addressing: same bytes, same hash; different bytes,
        // different hash (for these inputs).
        let p = encode_program(&sample_program());
        assert_eq!(fnv1a64(&p), fnv1a64(&p.clone()));
        let mut q = p.clone();
        q[p.len() / 2] ^= 1;
        assert_ne!(fnv1a64(&p), fnv1a64(&q));
    }

    #[test]
    fn program_round_trip_is_identity() {
        let p = sample_program();
        let bytes = encode_program(&p);
        let back = decode_program(&bytes).unwrap();
        assert_eq!(back, p);
    }

    /// Every strict prefix of a valid encoding fails with a typed error
    /// (all counts are explicit and trailing bytes are rejected, so no
    /// prefix can silently decode).
    #[test]
    fn truncation_always_errors_never_panics() {
        let bytes = encode_program(&sample_program());
        for cut in 0..bytes.len() {
            assert!(decode_program(&bytes[..cut]).is_err(), "prefix {cut}");
        }
    }

    #[test]
    fn bad_magic_and_version_are_typed() {
        let mut bytes = encode_program(&sample_program());
        bytes[0] = b'X';
        assert!(matches!(
            decode_program(&bytes),
            Err(WireError::BadMagic { .. })
        ));
        let mut bytes = encode_program(&sample_program());
        bytes[4] = 0xFF; // version low byte
        assert!(matches!(
            decode_program(&bytes),
            Err(WireError::UnsupportedVersion { found, supported })
                if found != WIRE_VERSION && supported == WIRE_VERSION
        ));
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = encode_program(&sample_program());
        bytes.push(0);
        assert_eq!(
            decode_program(&bytes),
            Err(WireError::Trailing { bytes: 1 })
        );
    }

    /// Flipping any single byte never panics; it either fails decode or
    /// yields some (different but structurally safe) program.
    #[test]
    fn corruption_never_panics() {
        let bytes = encode_program(&sample_program());
        for i in 0..bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[i] ^= 0xA5;
            let _ = decode_program(&corrupt);
        }
    }

    #[test]
    fn corrupt_count_cannot_force_huge_allocation() {
        let p = sample_program();
        let mut bytes = encode_program(&p);
        // The instruction count sits right after magic+version+name+2 u64s.
        let off = 4 + 2 + (8 + p.name.len()) + 8 + 8;
        bytes[off..off + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(matches!(
            decode_program(&bytes),
            Err(WireError::Corrupt { .. })
        ));
    }

    /// Version-1 blobs (pre-optimizer, no slot table) are rejected with
    /// a typed error rather than misparsed.
    #[test]
    fn old_version_is_rejected() {
        let mut bytes = encode_program(&sample_program());
        bytes[4..6].copy_from_slice(&1u16.to_le_bytes());
        assert_eq!(
            decode_program(&bytes),
            Err(WireError::UnsupportedVersion {
                found: 1,
                supported: WIRE_VERSION
            })
        );
    }

    /// A program with real optimizer effects (folds, CSE, DCE, a
    /// non-identity slot permutation) round-trips field-for-field,
    /// including the stats record.
    #[test]
    fn optimized_program_round_trips() {
        use crate::opt::OptConfig;
        let mut b = NetlistBuilder::new("wire_opt");
        let a = b.input("a");
        let t1 = b.tie1();
        let x = b.gate(GateKind::And2, &[a, t1]);
        let y = b.gate(GateKind::Inv, &[x]);
        b.output("y", y);
        let m = b.finish().unwrap();
        let ports = vec![m.port("a").unwrap().net, m.port("y").unwrap().net];
        let p = SimProgram::compile_with(&m, &OptConfig::with_forceable(ports)).unwrap();
        assert!(p.opt.folded > 0, "test premise: something folded");
        let back = decode_program(&encode_program(&p)).unwrap();
        assert_eq!(back, p);
        assert_eq!(back.opt, p.opt);
    }

    /// Bytes may not claim `scheduled` for a stream that is not
    /// topologically ordered — the claim is re-verified on decode.
    #[test]
    fn false_schedule_claim_is_rejected() {
        let mut p = {
            let mut b = NetlistBuilder::new("wire_sched");
            let a = b.input("a");
            let x = b.gate(GateKind::Inv, &[a]);
            let y = b.gate(GateKind::Inv, &[x]);
            b.output("y", y);
            // compile_with optimizes unconditionally, so this test is
            // independent of the STEAC_OPT environment.
            SimProgram::compile_with(&b.finish().unwrap(), &crate::opt::OptConfig::default())
                .unwrap()
        };
        assert!(p.opt.scheduled);
        p.comb.reverse(); // y's instruction now reads x before it is written
        assert_eq!(
            decode_program(&encode_program(&p)),
            Err(WireError::Corrupt {
                context: "opt scheduled"
            })
        );
    }

    /// The net-slot table must be a permutation: duplicate slots are
    /// corrupt, not silently aliased.
    #[test]
    fn duplicate_slot_entries_are_corrupt() {
        let mut p = sample_program();
        p.net_slot[1] = p.net_slot[0];
        assert_eq!(
            decode_program(&encode_program(&p)),
            Err(WireError::Corrupt {
                context: "net-slot entry"
            })
        );
    }

    #[test]
    fn fault_unit_round_trip() {
        let faults = vec![
            Fault {
                net: NetId(0),
                stuck: StuckAt::Zero,
            },
            Fault {
                net: NetId(41),
                stuck: StuckAt::One,
            },
        ];
        let bytes = encode_faults(&faults);
        assert_eq!(decode_faults(&bytes).unwrap(), faults);
        assert!(decode_faults(&bytes[..bytes.len() - 1]).is_err());
        let mut bad = bytes.clone();
        *bad.last_mut().unwrap() = 9; // impossible polarity
        assert!(matches!(
            decode_faults(&bad),
            Err(WireError::Corrupt { .. })
        ));
    }
}
