//! Fault dictionaries and the `Exec`-dispatched `diagnose` workload.
//!
//! A **fault dictionary** is the localization artifact a dictionary-
//! producing grading run emits: per candidate fault, the first
//! detecting pattern plus a packed **detection signature** — one bit
//! per (pattern, output) position where the faulty machine provably
//! differs from the good machine, bit `p * outputs + o` of a
//! `ceil(patterns * outputs / 64)`-word little-endian vector. The
//! signature of a transition fault indexes launch–capture *pairs*; a
//! bridging or stuck-at signature indexes vectors.
//!
//! # Wire format (`SDCT` block)
//!
//! [`encode_dictionary`] / [`decode_dictionary`] persist a dictionary
//! as: magic `SDCT`, [`wire::WIRE_VERSION`] (`u16`), `patterns` (u32),
//! `outputs` (u32), entry count (u64), then per entry the first
//! detecting pattern (`u32`, `u32::MAX` = never detected) and the
//! signature words (`u64` each, count implied by patterns × outputs).
//! The same per-entry layout (with an explicit count) is the unit
//! *result* payload of dictionary-mode grading jobs, so a remote worker
//! ships signatures back in exactly the bytes the dictionary stores.
//!
//! # Diagnosis
//!
//! [`diagnose`] is the consumer: given a dictionary and the observed
//! signature of a failing device (the tester's failure log compacted
//! the same way), it ranks every candidate by Hamming distance between
//! signatures — the classic dictionary lookup, distance 0 meaning the
//! candidate explains the observation exactly. Scoring is fanned out
//! through [`Exec`] as work-unit chunks of candidates (kind
//! [`WIRE_KIND`]), so a large dictionary diagnoses across the same
//! five backends as grading, with the same byte-identical-results
//! contract.

use crate::exec::{Exec, ExecWork};
use crate::shard::{self, PoolError};
use crate::wire;
use crate::SimError;

/// One dictionary entry: how one candidate fault shows up under the
/// pattern set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DictEntry {
    /// First detecting pattern (pair index for transition faults,
    /// vector index otherwise); `None` if the fault is never detected.
    pub first_pattern: Option<u32>,
    /// Packed per-(pattern, output) detection bits; see the module
    /// docs for the bit layout.
    pub signature: Vec<u64>,
}

/// A fault dictionary: per-candidate detection signatures over one
/// pattern set, in fault-list order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultDictionary {
    /// Patterns the signatures index (pairs for transition faults).
    pub patterns: u32,
    /// Observed outputs per pattern.
    pub outputs: u32,
    /// Per-candidate entries, in the grading fault-list order.
    pub entries: Vec<DictEntry>,
}

impl FaultDictionary {
    /// Signature length in 64-bit words.
    #[must_use]
    pub fn words_per_signature(&self) -> usize {
        signature_words(self.patterns as usize, self.outputs as usize)
    }

    /// Entries with at least one detection (the usable candidates).
    #[must_use]
    pub fn detected_count(&self) -> usize {
        self.entries
            .iter()
            .filter(|e| e.first_pattern.is_some())
            .count()
    }
}

/// Words needed to hold one bit per (pattern, output) position.
#[must_use]
pub fn signature_words(patterns: usize, outputs: usize) -> usize {
    (patterns * outputs).div_ceil(64)
}

/// Sentinel encoding [`DictEntry::first_pattern`] `== None`.
const NO_PATTERN: u32 = u32::MAX;

/// Serializes a dictionary as an `SDCT` block (see the module docs).
#[must_use]
pub fn encode_dictionary(dict: &FaultDictionary) -> Vec<u8> {
    let words = dict.words_per_signature();
    let mut w = wire::WireWriter::new();
    w.put_bytes(b"SDCT");
    w.put_u16(wire::WIRE_VERSION);
    w.put_u32(dict.patterns);
    w.put_u32(dict.outputs);
    w.put_usize(dict.entries.len());
    for e in &dict.entries {
        debug_assert_eq!(e.signature.len(), words, "signature width mismatch");
        w.put_u32(e.first_pattern.unwrap_or(NO_PATTERN));
        for &word in &e.signature {
            w.put_u64(word);
        }
    }
    w.finish()
}

/// Deserializes an `SDCT` block.
///
/// # Errors
///
/// [`wire::WireError`] on bad magic, wrong version, truncation, or a
/// signature that does not match the header's pattern × output shape.
pub fn decode_dictionary(bytes: &[u8]) -> Result<FaultDictionary, wire::WireError> {
    let mut r = wire::WireReader::new(bytes);
    r.expect_magic(b"SDCT", "dictionary magic")?;
    r.expect_version(wire::WIRE_VERSION, "dictionary version")?;
    let patterns = r.get_u32("dictionary patterns")?;
    let outputs = r.get_u32("dictionary outputs")?;
    let words = signature_words(patterns as usize, outputs as usize);
    let count = r.get_count("dictionary entries", 4 + words * 8)?;
    let mut entries = Vec::with_capacity(count);
    for _ in 0..count {
        entries.push(read_entry(&mut r, words)?);
    }
    r.finish()?;
    Ok(FaultDictionary {
        patterns,
        outputs,
        entries,
    })
}

fn read_entry(r: &mut wire::WireReader<'_>, words: usize) -> Result<DictEntry, wire::WireError> {
    let first = r.get_u32("dictionary first pattern")?;
    let mut signature = Vec::with_capacity(words);
    for _ in 0..words {
        signature.push(r.get_u64("dictionary signature word")?);
    }
    Ok(DictEntry {
        first_pattern: (first != NO_PATTERN).then_some(first),
        signature,
    })
}

/// Serializes a dictionary-mode unit result: entry count, then each
/// entry as first pattern + explicit word count + signature words.
pub(crate) fn encode_dict_entries(entries: &[DictEntry]) -> Vec<u8> {
    let mut w = wire::WireWriter::new();
    w.put_usize(entries.len());
    for e in entries {
        w.put_u32(e.first_pattern.unwrap_or(NO_PATTERN));
        w.put_usize(e.signature.len());
        for &word in &e.signature {
            w.put_u64(word);
        }
    }
    w.finish()
}

/// Deserializes a dictionary-mode unit result (diagnostic-string errors
/// because this runs inside [`crate::exec::ExecWork::decode_result`]).
pub(crate) fn decode_dict_entries(bytes: &[u8]) -> Result<Vec<DictEntry>, String> {
    let mut r = wire::WireReader::new(bytes);
    let fail = |e: wire::WireError| format!("dictionary unit result: {e}");
    let count = r.get_count("dictionary entry count", 12).map_err(fail)?;
    let mut entries = Vec::with_capacity(count);
    for _ in 0..count {
        let first = r.get_u32("dictionary entry first").map_err(fail)?;
        let words = r.get_count("dictionary entry words", 8).map_err(fail)?;
        let mut signature = Vec::with_capacity(words);
        for _ in 0..words {
            signature.push(r.get_u64("dictionary entry word").map_err(fail)?);
        }
        entries.push(DictEntry {
            first_pattern: (first != NO_PATTERN).then_some(first),
            signature,
        });
    }
    r.finish().map_err(fail)?;
    Ok(entries)
}

// ---------- the diagnose workload ----------

/// Work-unit kind the worker-side job registry routes to
/// [`open_wire_job`]: signature-distance scoring of a candidate chunk.
pub const WIRE_KIND: u16 = 6;

/// Candidates scored per work unit. Small enough to shard a zoo-sized
/// dictionary across a fleet, large enough that the unit payload
/// dominates the envelope.
const DIAG_CHUNK: usize = 512;

/// A ranked diagnosis: candidate indexes into the dictionary's entry
/// list, most plausible first.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnosis {
    /// `(entry index, Hamming distance)` sorted by distance, ties by
    /// index — deterministic on every backend.
    pub ranked: Vec<(usize, u32)>,
}

impl Diagnosis {
    /// The `k` most plausible candidates (fewer if the dictionary is
    /// smaller).
    #[must_use]
    pub fn top(&self, k: usize) -> &[(usize, u32)] {
        &self.ranked[..k.min(self.ranked.len())]
    }

    /// Where a given candidate landed (0 = most plausible).
    #[must_use]
    pub fn rank_of(&self, entry: usize) -> Option<usize> {
        self.ranked.iter().position(|&(i, _)| i == entry)
    }
}

/// Hamming distance between two packed signatures of equal width.
fn distance(a: &[u64], b: &[u64]) -> u32 {
    a.iter().zip(b).map(|(x, y)| (x ^ y).count_ones()).sum()
}

/// The [`ExecWork`] description of diagnosis: the observed signature as
/// the job block, candidate-signature chunks as units, per-candidate
/// distances as unit results.
struct DiagnoseWork<'a> {
    words: usize,
    observed: &'a [u64],
    chunks: Vec<&'a [DictEntry]>,
}

impl ExecWork for DiagnoseWork<'_> {
    type Output = Vec<u32>;
    type Error = SimError;

    fn kind(&self) -> u16 {
        WIRE_KIND
    }

    fn unit_count(&self) -> usize {
        self.chunks.len()
    }

    fn encode_job(&self) -> Vec<u8> {
        let mut w = wire::WireWriter::new();
        w.put_usize(self.words);
        for &word in self.observed {
            w.put_u64(word);
        }
        w.finish()
    }

    fn encode_unit(&self, unit: usize) -> Vec<u8> {
        encode_dict_entries(self.chunks[unit])
    }

    fn run_unit_local(&self, unit: usize) -> Result<Vec<u32>, SimError> {
        Ok(self.chunks[unit]
            .iter()
            .map(|e| distance(&e.signature, self.observed))
            .collect())
    }

    fn decode_result(&self, _unit: usize, bytes: &[u8]) -> Result<Vec<u32>, String> {
        let mut r = wire::WireReader::new(bytes);
        let fail = |e: wire::WireError| format!("diagnose unit result: {e}");
        let count = r.get_count("diagnose distance count", 4).map_err(fail)?;
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            out.push(r.get_u32("diagnose distance").map_err(fail)?);
        }
        r.finish().map_err(fail)?;
        Ok(out)
    }

    fn pool_error(&self, error: PoolError) -> SimError {
        error.into()
    }
}

/// Ranks every dictionary candidate against an observed failure
/// signature by Hamming distance (ties broken by entry index), fanned
/// out through `exec` in [`DIAG_CHUNK`]-candidate units — localization
/// as a first-class `Exec` workload, byte-identical on every backend.
///
/// # Errors
///
/// [`SimError::VectorLength`] if `observed` does not match the
/// dictionary's signature width; worker/dispatch failures as
/// [`SimError::Worker`].
pub fn diagnose(
    exec: &Exec,
    dict: &FaultDictionary,
    observed: &[u64],
) -> Result<Diagnosis, SimError> {
    let words = dict.words_per_signature();
    if observed.len() != words {
        return Err(SimError::VectorLength {
            expected: words,
            got: observed.len(),
        });
    }
    let work = DiagnoseWork {
        words,
        observed,
        chunks: dict.entries.chunks(DIAG_CHUNK.max(1)).collect(),
    };
    let dispatched = exec.dispatch(&work)?;
    let mut ranked: Vec<(usize, u32)> =
        dispatched.units.into_iter().flatten().enumerate().collect();
    ranked.sort_by_key(|&(i, d)| (d, i));
    Ok(Diagnosis { ranked })
}

// ---------- worker-side wire job ----------

/// An opened diagnose job inside a worker process.
struct DiagnoseJob {
    words: usize,
    observed: Vec<u64>,
}

impl shard::WireJob for DiagnoseJob {
    fn run_unit(&mut self, unit: &[u8]) -> Result<Vec<u8>, String> {
        let entries = decode_dict_entries(unit)?;
        let mut w = wire::WireWriter::new();
        w.put_usize(entries.len());
        for e in &entries {
            if e.signature.len() != self.words {
                return Err(format!(
                    "diagnose candidate has {} signature words, observed has {}",
                    e.signature.len(),
                    self.words
                ));
            }
            w.put_u32(distance(&e.signature, &self.observed));
        }
        Ok(w.finish())
    }
}

/// Decodes a [`WIRE_KIND`] job block (signature width + observed
/// signature) into the executable job the worker loop drives — the
/// `steac-worker` side of [`diagnose`].
///
/// # Errors
///
/// A diagnostic on corrupt job bytes.
pub fn open_wire_job(job: &[u8]) -> Result<Box<dyn shard::WireJob>, String> {
    let mut r = wire::WireReader::new(job);
    let fail = |e: wire::WireError| format!("diagnose job: {e}");
    let words = r.get_count("diagnose job words", 8).map_err(fail)?;
    let mut observed = Vec::with_capacity(words);
    for _ in 0..words {
        observed.push(r.get_u64("diagnose job observed word").map_err(fail)?);
    }
    r.finish().map_err(fail)?;
    Ok(Box::new(DiagnoseJob { words, observed }))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(first: Option<u32>, signature: Vec<u64>) -> DictEntry {
        DictEntry {
            first_pattern: first,
            signature,
        }
    }

    fn dict() -> FaultDictionary {
        FaultDictionary {
            patterns: 96,
            outputs: 2,
            entries: vec![
                entry(None, vec![0, 0, 0]),
                entry(Some(0), vec![0b101, 0, 1]),
                entry(Some(2), vec![0b100, 0, 0]),
            ],
        }
    }

    #[test]
    fn dictionary_block_round_trips() {
        let d = dict();
        let bytes = encode_dictionary(&d);
        assert_eq!(decode_dictionary(&bytes).unwrap(), d);
        assert!(decode_dictionary(&bytes[..bytes.len() - 1]).is_err());
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(matches!(
            decode_dictionary(&bad),
            Err(wire::WireError::BadMagic { .. })
        ));
    }

    #[test]
    fn entry_unit_codec_round_trips() {
        let d = dict();
        let bytes = encode_dict_entries(&d.entries);
        assert_eq!(decode_dict_entries(&bytes).unwrap(), d.entries);
    }

    #[test]
    fn exact_match_ranks_first() {
        let d = dict();
        let diag = diagnose(&Exec::serial(), &d, &[0b101, 0, 1]).unwrap();
        assert_eq!(diag.ranked[0], (1, 0));
        assert_eq!(diag.rank_of(1), Some(0));
        assert_eq!(diag.top(2).len(), 2);
    }

    #[test]
    fn wrong_signature_width_is_rejected() {
        let d = dict();
        assert!(matches!(
            diagnose(&Exec::serial(), &d, &[0]),
            Err(SimError::VectorLength { .. })
        ));
    }
}
