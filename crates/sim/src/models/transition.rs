//! Transition/delay fault model: slow-to-rise / slow-to-fall nets
//! graded with launch–capture vector pairs.
//!
//! A transition fault on a net means the net *eventually* reaches the
//! right value but misses the capture window. The classic zero-delay
//! abstraction: apply a **launch** vector, let the circuit settle, then
//! apply the **capture** vector — a faulty net whose launch value was
//! the slow edge's starting value (0 for slow-to-rise, 1 for
//! slow-to-fall) holds that stale value through the capture evaluation.
//! Consecutive vectors of the pattern set form the pairs
//! (`vectors.windows(2)`), so an `n`-vector set launches `n - 1`
//! transitions per fault site.
//!
//! The packed pass is the stuck-at PPSFP loop with a per-pair twist:
//! lane 0 runs the good machine, each other lane holds one fault's
//! stale launch value via a per-lane force **only when the good machine
//! actually launches that fault's slow edge** — the force value equals
//! the good value otherwise-idle pairs would produce anyway, so an
//! untriggered fault can never raise a spurious detection. Each pair is
//! evaluated from a reset state ([`Simulator::reset_to_x`]), which
//! makes the verdict a pure function of the pair and lets the engine's
//! edge machinery (first settle seeds clock-edge history, the capture
//! settle fires rising-edge captures) see exactly one launch→capture
//! event. Faulty capture values propagate into flop captures the same
//! way any forced value does.
//!
//! Detection uses the same masked-compare rule as stuck-at grading:
//! an output lane counts only where lane 0 and the faulty lane are both
//! known and differ.

use crate::exec::{Exec, ExecWork};
use crate::fault::{
    decode_lane_mask, detection_lanes, encode_lane_mask, faults_per_pass, validate_vectors,
};
use crate::logic::Logic;
use crate::models::dictionary::{
    decode_dict_entries, encode_dict_entries, signature_words, DictEntry, FaultDictionary,
};
use crate::packed::{
    mask_and, mask_bit, mask_none, mask_or, mask_range, LaneMask, DEFAULT_LANE_GROUPS,
};
use crate::program::SimProgram;
use crate::shard::{self, PoolError};
use crate::wire;
use crate::{SimError, Simulator};
use std::fmt;
use std::sync::Arc;
use steac_netlist::{Module, NetId};

/// Which edge of the faulty net is slow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SlowEdge {
    /// Slow-to-rise: a 0→1 transition misses the capture window.
    Rise,
    /// Slow-to-fall: a 1→0 transition misses the capture window.
    Fall,
}

impl SlowEdge {
    /// The value the net holds *before* the slow edge — the stale value
    /// a triggered fault carries through the capture evaluation.
    #[must_use]
    pub fn stale_value(self) -> Logic {
        match self {
            SlowEdge::Rise => Logic::Zero,
            SlowEdge::Fall => Logic::One,
        }
    }
}

impl fmt::Display for SlowEdge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            SlowEdge::Rise => "STR",
            SlowEdge::Fall => "STF",
        })
    }
}

/// A single transition fault: one net, one slow edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TransitionFault {
    /// Faulty net.
    pub net: NetId,
    /// Which edge is slow.
    pub slow: SlowEdge,
}

impl fmt::Display for TransitionFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}", self.slow, self.net)
    }
}

/// Enumerates the full transition fault list: every net slow-to-rise
/// and slow-to-fall (the transition analogue of
/// [`crate::fault::enumerate_faults`]).
#[must_use]
pub fn enumerate_transition_faults(m: &Module) -> Vec<TransitionFault> {
    let mut v = Vec::with_capacity(m.nets.len() * 2);
    for i in 0..m.nets.len() {
        v.push(TransitionFault {
            net: NetId(i as u32),
            slow: SlowEdge::Rise,
        });
        v.push(TransitionFault {
            net: NetId(i as u32),
            slow: SlowEdge::Fall,
        });
    }
    v
}

/// Result of grading launch–capture pairs against a transition fault
/// list. Mirrors [`crate::fault::CoverageReport`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TransitionReport {
    /// Number of faults simulated.
    pub total: usize,
    /// Number of detected faults.
    pub detected: usize,
    /// Faults that escaped, for diagnosis.
    pub undetected: Vec<TransitionFault>,
    /// In-thread recomputations after process-dispatch failures (see
    /// [`crate::fault::CoverageReport::process_fallbacks`]).
    pub process_fallbacks: usize,
}

impl TransitionReport {
    /// Fault coverage in percent (100 for an empty fault list).
    #[must_use]
    pub fn coverage_percent(&self) -> f64 {
        if self.total == 0 {
            100.0
        } else {
            100.0 * self.detected as f64 / self.total as f64
        }
    }
}

impl fmt::Display for TransitionReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/{} transition faults detected ({:.2}%)",
            self.detected,
            self.total,
            self.coverage_percent()
        )
    }
}

/// The good-machine launch values that trigger each chunk fault for one
/// pair, read after the launch settle. `None` = not triggered (the
/// launch value was not the slow edge's starting value).
fn triggered_forces<const N: usize>(
    sim: &Simulator<N>,
    chunk: &[TransitionFault],
) -> Vec<Option<Logic>> {
    chunk
        .iter()
        .map(|f| {
            let launch = sim.get_lane(f.net, 0);
            (launch == f.slow.stale_value()).then_some(launch)
        })
        .collect()
}

/// Drives one launch–capture pair for one fault chunk: reset, launch
/// settle, per-lane stale forces for triggered faults, capture settle.
/// Afterwards the simulator holds the capture state (read outputs, then
/// call again for the next pair).
fn run_pair<const N: usize>(
    sim: &mut Simulator<N>,
    pins: &[NetId],
    launch: &[Logic],
    capture: &[Logic],
    chunk: &[TransitionFault],
) -> Result<(), SimError> {
    sim.clear_forces();
    sim.reset_to_x();
    for (&pin, &v) in pins.iter().zip(launch) {
        sim.set(pin, v);
    }
    sim.settle()?;
    let forces = triggered_forces(sim, chunk);
    for (&pin, &v) in pins.iter().zip(capture) {
        sim.set(pin, v);
    }
    for (i, (f, force)) in chunk.iter().zip(&forces).enumerate() {
        if let Some(stale) = force {
            sim.force_lane(f.net, i + 1, *stale);
        }
    }
    sim.settle()
}

/// One grading pass over a transition fault chunk — the exact code
/// every backend executes, so dispatch flavour can never change a
/// verdict. Lane 0 is the good machine, lanes `1..=chunk.len()` each
/// carry one fault.
fn grade_chunk<const N: usize>(
    program: &Arc<SimProgram>,
    pins: &[NetId],
    vectors: &[Vec<Logic>],
    chunk: &[TransitionFault],
) -> Result<LaneMask<N>, SimError> {
    let mut sim: Simulator<N> = Simulator::from_program(Arc::clone(program));
    let want = mask_range::<N>(1, chunk.len());
    let mut mask = mask_none::<N>();
    for pair in vectors.windows(2) {
        run_pair(&mut sim, pins, &pair[0], &pair[1], chunk)?;
        for &net in &sim.program().output_nets {
            mask = mask_or(mask, detection_lanes(sim.get_packed(net)));
        }
        if mask_and(mask, want) == want {
            break; // every fault in this pass dropped
        }
    }
    Ok(mask)
}

/// One dictionary pass over a transition fault chunk: the grading loop
/// without early exit, recording per-(pair, output) detection bits and
/// the first detecting pair per fault.
fn dict_chunk<const N: usize>(
    program: &Arc<SimProgram>,
    pins: &[NetId],
    vectors: &[Vec<Logic>],
    chunk: &[TransitionFault],
) -> Result<Vec<DictEntry>, SimError> {
    let outs = program.output_nets.len();
    let pairs = vectors.len().saturating_sub(1);
    let words = signature_words(pairs, outs);
    let mut entries = vec![
        DictEntry {
            first_pattern: None,
            signature: vec![0u64; words],
        };
        chunk.len()
    ];
    let mut sim: Simulator<N> = Simulator::from_program(Arc::clone(program));
    for (p, pair) in vectors.windows(2).enumerate() {
        run_pair(&mut sim, pins, &pair[0], &pair[1], chunk)?;
        for (o, &net) in sim.program().output_nets.iter().enumerate() {
            let det = detection_lanes(sim.get_packed(net));
            let bit = p * outs + o;
            for (i, e) in entries.iter_mut().enumerate() {
                if mask_bit(&det, i + 1) {
                    e.signature[bit / 64] |= 1 << (bit % 64);
                    if e.first_pattern.is_none() {
                        e.first_pattern = Some(p as u32);
                    }
                }
            }
        }
    }
    Ok(entries)
}

// ---------- Exec work descriptions ----------

/// Work-unit kind the worker-side job registry routes to
/// [`open_wire_job`]: transition grading (or dictionary building) of a
/// fault chunk.
pub const WIRE_KIND: u16 = 4;

/// Job mode byte: grade (lane-mask results).
const MODE_GRADE: u8 = 0;
/// Job mode byte: build dictionary entries.
const MODE_DICT: u8 = 1;

fn encode_job(
    program: &SimProgram,
    groups: u8,
    mode: u8,
    pins: &[NetId],
    vectors: &[Vec<Logic>],
) -> Vec<u8> {
    let mut w = wire::WireWriter::new();
    w.put_block(&wire::encode_program(program));
    w.put_u8(groups);
    w.put_u8(mode);
    w.put_usize(pins.len());
    for pin in pins {
        w.put_u32(pin.0);
    }
    w.put_usize(vectors.len());
    for v in vectors {
        w.put_usize(v.len());
        for &value in v {
            w.put_logic(value);
        }
    }
    w.finish()
}

/// Serializes a transition fault chunk (work-unit payload): count, then
/// net + edge per fault.
pub(crate) fn encode_transition_faults(faults: &[TransitionFault]) -> Vec<u8> {
    let mut w = wire::WireWriter::new();
    w.put_usize(faults.len());
    for f in faults {
        w.put_u32(f.net.0);
        w.put_u8(match f.slow {
            SlowEdge::Rise => 0,
            SlowEdge::Fall => 1,
        });
    }
    w.finish()
}

/// Deserializes a transition fault chunk.
///
/// # Errors
///
/// [`wire::WireError`] on truncated or corrupt bytes.
pub(crate) fn decode_transition_faults(
    bytes: &[u8],
) -> Result<Vec<TransitionFault>, wire::WireError> {
    let mut r = wire::WireReader::new(bytes);
    let count = r.get_count("transition fault count", 5)?;
    let mut faults = Vec::with_capacity(count);
    for _ in 0..count {
        let net = NetId(r.get_u32("transition fault net")?);
        let slow = match r.get_u8("transition fault edge")? {
            0 => SlowEdge::Rise,
            1 => SlowEdge::Fall,
            _ => {
                return Err(wire::WireError::Corrupt {
                    context: "transition fault edge",
                })
            }
        };
        faults.push(TransitionFault { net, slow });
    }
    r.finish()?;
    Ok(faults)
}

/// The [`ExecWork`] description of transition grading: one unit per
/// [`faults_per_pass`]`(N)` fault chunk, `N`-word detection masks as
/// unit results.
struct GradeWork<'a, const N: usize> {
    program: Arc<SimProgram>,
    pins: &'a [NetId],
    vectors: &'a [Vec<Logic>],
    chunks: Vec<&'a [TransitionFault]>,
}

impl<const N: usize> ExecWork for GradeWork<'_, N> {
    type Output = LaneMask<N>;
    type Error = SimError;

    fn kind(&self) -> u16 {
        WIRE_KIND
    }

    fn unit_count(&self) -> usize {
        self.chunks.len()
    }

    fn encode_job(&self) -> Vec<u8> {
        encode_job(&self.program, N as u8, MODE_GRADE, self.pins, self.vectors)
    }

    fn encode_unit(&self, unit: usize) -> Vec<u8> {
        encode_transition_faults(self.chunks[unit])
    }

    fn run_unit_local(&self, unit: usize) -> Result<LaneMask<N>, SimError> {
        grade_chunk::<N>(&self.program, self.pins, self.vectors, self.chunks[unit])
    }

    fn decode_result(&self, _unit: usize, bytes: &[u8]) -> Result<LaneMask<N>, String> {
        decode_lane_mask::<N>(bytes)
    }

    fn pool_error(&self, error: PoolError) -> SimError {
        error.into()
    }
}

/// The [`ExecWork`] description of dictionary building: the same units
/// as [`GradeWork`], per-fault [`DictEntry`] lists as unit results.
struct DictWork<'a, const N: usize> {
    program: Arc<SimProgram>,
    pins: &'a [NetId],
    vectors: &'a [Vec<Logic>],
    chunks: Vec<&'a [TransitionFault]>,
}

impl<const N: usize> ExecWork for DictWork<'_, N> {
    type Output = Vec<DictEntry>;
    type Error = SimError;

    fn kind(&self) -> u16 {
        WIRE_KIND
    }

    fn unit_count(&self) -> usize {
        self.chunks.len()
    }

    fn encode_job(&self) -> Vec<u8> {
        encode_job(&self.program, N as u8, MODE_DICT, self.pins, self.vectors)
    }

    fn encode_unit(&self, unit: usize) -> Vec<u8> {
        encode_transition_faults(self.chunks[unit])
    }

    fn run_unit_local(&self, unit: usize) -> Result<Vec<DictEntry>, SimError> {
        dict_chunk::<N>(&self.program, self.pins, self.vectors, self.chunks[unit])
    }

    fn decode_result(&self, _unit: usize, bytes: &[u8]) -> Result<Vec<DictEntry>, String> {
        decode_dict_entries(bytes)
    }

    fn pool_error(&self, error: PoolError) -> SimError {
        error.into()
    }
}

// ---------- entry points ----------

/// Packed transition grading of launch–capture pairs drawn from
/// consecutive `vectors` (set launch, settle, set capture + stale
/// forces, settle, compare outputs), with per-pass fault dropping —
/// the transition analogue of [`crate::fault::grade_vectors`], through
/// the same `Exec` seam and byte-identical on every backend.
///
/// # Errors
///
/// Propagates engine errors; process-backend failures surface as
/// [`SimError::Worker`] on the lowest-indexed failing pass (under
/// [`crate::exec::Fallback::Fail`]) or are recomputed in-thread and
/// recorded in [`TransitionReport::process_fallbacks`].
pub fn grade_transitions(
    exec: &Exec,
    m: &Module,
    faults: &[TransitionFault],
    pins: &[NetId],
    vectors: &[Vec<Logic>],
) -> Result<TransitionReport, SimError> {
    grade_transitions_wide(exec, m, faults, pins, vectors, DEFAULT_LANE_GROUPS)
}

/// [`grade_transitions`] with an explicit lane-group width; the report
/// is bit-identical at every width in
/// [`SUPPORTED_LANE_GROUPS`](crate::fault::SUPPORTED_LANE_GROUPS).
///
/// # Errors
///
/// [`SimError::UnsupportedWidth`] for other widths; otherwise as
/// [`grade_transitions`].
pub fn grade_transitions_wide(
    exec: &Exec,
    m: &Module,
    faults: &[TransitionFault],
    pins: &[NetId],
    vectors: &[Vec<Logic>],
    groups: usize,
) -> Result<TransitionReport, SimError> {
    match groups {
        1 => grade_transitions_n::<1>(exec, m, faults, pins, vectors),
        2 => grade_transitions_n::<2>(exec, m, faults, pins, vectors),
        4 => grade_transitions_n::<4>(exec, m, faults, pins, vectors),
        8 => grade_transitions_n::<8>(exec, m, faults, pins, vectors),
        _ => Err(SimError::UnsupportedWidth { groups }),
    }
}

fn grade_transitions_n<const N: usize>(
    exec: &Exec,
    m: &Module,
    faults: &[TransitionFault],
    pins: &[NetId],
    vectors: &[Vec<Logic>],
) -> Result<TransitionReport, SimError> {
    validate_vectors(pins, vectors)?;
    let per_pass = faults_per_pass(N);
    let program = Arc::new(SimProgram::compile(m)?);
    let work = GradeWork::<N> {
        program,
        pins,
        vectors,
        chunks: faults.chunks(per_pass).collect(),
    };
    let dispatched = exec.dispatch(&work)?;
    let flags = shard::flags_from_lane_masks(faults.len(), per_pass, 1, &dispatched.units);
    let mut detected = 0usize;
    let mut undetected = Vec::new();
    for (&f, &hit) in faults.iter().zip(&flags) {
        if hit {
            detected += 1;
        } else {
            undetected.push(f);
        }
    }
    Ok(TransitionReport {
        total: faults.len(),
        detected,
        undetected,
        process_fallbacks: dispatched.fallback_count(),
    })
}

/// Builds the transition fault dictionary for `faults` over the
/// launch–capture pairs of `vectors`: per fault, the first detecting
/// pair and the packed per-(pair, output) detection signature
/// [`diagnose`](crate::models::dictionary::diagnose) consumes.
/// Dispatched through the same `Exec` seam as grading and
/// byte-identical on every backend and width.
///
/// # Errors
///
/// As [`grade_transitions`].
pub fn transition_dictionary(
    exec: &Exec,
    m: &Module,
    faults: &[TransitionFault],
    pins: &[NetId],
    vectors: &[Vec<Logic>],
) -> Result<FaultDictionary, SimError> {
    transition_dictionary_wide(exec, m, faults, pins, vectors, DEFAULT_LANE_GROUPS)
}

/// [`transition_dictionary`] with an explicit lane-group width.
///
/// # Errors
///
/// [`SimError::UnsupportedWidth`] for widths outside
/// [`SUPPORTED_LANE_GROUPS`](crate::fault::SUPPORTED_LANE_GROUPS);
/// otherwise as [`transition_dictionary`].
pub fn transition_dictionary_wide(
    exec: &Exec,
    m: &Module,
    faults: &[TransitionFault],
    pins: &[NetId],
    vectors: &[Vec<Logic>],
    groups: usize,
) -> Result<FaultDictionary, SimError> {
    match groups {
        1 => transition_dictionary_n::<1>(exec, m, faults, pins, vectors),
        2 => transition_dictionary_n::<2>(exec, m, faults, pins, vectors),
        4 => transition_dictionary_n::<4>(exec, m, faults, pins, vectors),
        8 => transition_dictionary_n::<8>(exec, m, faults, pins, vectors),
        _ => Err(SimError::UnsupportedWidth { groups }),
    }
}

fn transition_dictionary_n<const N: usize>(
    exec: &Exec,
    m: &Module,
    faults: &[TransitionFault],
    pins: &[NetId],
    vectors: &[Vec<Logic>],
) -> Result<FaultDictionary, SimError> {
    validate_vectors(pins, vectors)?;
    let per_pass = faults_per_pass(N);
    let program = Arc::new(SimProgram::compile(m)?);
    let patterns = vectors.len().saturating_sub(1);
    let outputs = program.output_nets.len();
    let work = DictWork::<N> {
        program,
        pins,
        vectors,
        chunks: faults.chunks(per_pass).collect(),
    };
    let dispatched = exec.dispatch(&work)?;
    Ok(FaultDictionary {
        patterns: patterns as u32,
        outputs: outputs as u32,
        entries: dispatched.units.into_iter().flatten().collect(),
    })
}

/// Serial reference implementation: one scalar simulation per fault,
/// mirroring the packed pair semantics exactly (reset per pair, stale
/// force only when the good machine launches the slow edge). Kept
/// strictly as the differential-test oracle.
///
/// # Errors
///
/// Propagates engine errors; the good-machine run is performed first.
#[doc(hidden)]
pub fn grade_transitions_serial(
    m: &Module,
    faults: &[TransitionFault],
    pins: &[NetId],
    vectors: &[Vec<Logic>],
) -> Result<TransitionReport, SimError> {
    validate_vectors(pins, vectors)?;
    let good = serial_pair_outputs(m, None, pins, vectors)?;
    let mut detected = 0usize;
    let mut undetected = Vec::new();
    for &fault in faults {
        let observed = serial_pair_outputs(m, Some(fault), pins, vectors)?;
        let diff = good
            .iter()
            .flatten()
            .zip(observed.iter().flatten())
            .any(|(g, o)| g.is_known() && o.is_known() && g != o);
        if diff {
            detected += 1;
        } else {
            undetected.push(fault);
        }
    }
    Ok(TransitionReport {
        total: faults.len(),
        detected,
        undetected,
        process_fallbacks: 0,
    })
}

/// Scalar per-pair output streams (one `Vec<Logic>` of `output_nets`
/// values per launch–capture pair), with an optional injected fault.
fn serial_pair_outputs(
    m: &Module,
    fault: Option<TransitionFault>,
    pins: &[NetId],
    vectors: &[Vec<Logic>],
) -> Result<Vec<Vec<Logic>>, SimError> {
    let mut sim: Simulator = Simulator::new(m)?;
    let mut out = Vec::new();
    for pair in vectors.windows(2) {
        sim.clear_forces();
        sim.reset_to_x();
        for (&pin, &v) in pins.iter().zip(&pair[0]) {
            sim.set(pin, v);
        }
        sim.settle()?;
        let stale = fault.and_then(|f| {
            let launch = sim.get_lane(f.net, 0);
            (launch == f.slow.stale_value()).then_some((f.net, launch))
        });
        for (&pin, &v) in pins.iter().zip(&pair[1]) {
            sim.set(pin, v);
        }
        if let Some((net, value)) = stale {
            sim.force(net, value);
        }
        sim.settle()?;
        out.push(
            sim.program()
                .output_nets
                .iter()
                .map(|&n| sim.get_lane(n, 0))
                .collect(),
        );
    }
    Ok(out)
}

/// The failure signature an observed faulty device produces over the
/// launch–capture pairs of `vectors`: one bit per (pair, output)
/// position where the device provably differs from the good machine —
/// the "tester log" side of dictionary diagnosis, built scalar so the
/// end-to-end test injects a fault the diagnosis stack knows nothing
/// about.
///
/// # Errors
///
/// Propagates engine errors.
#[doc(hidden)]
pub fn observed_transition_signature(
    m: &Module,
    fault: TransitionFault,
    pins: &[NetId],
    vectors: &[Vec<Logic>],
) -> Result<Vec<u64>, SimError> {
    validate_vectors(pins, vectors)?;
    let good = serial_pair_outputs(m, None, pins, vectors)?;
    let observed = serial_pair_outputs(m, Some(fault), pins, vectors)?;
    let outs = good.first().map_or(0, Vec::len);
    let pairs = good.len();
    let mut sig = vec![0u64; signature_words(pairs, outs)];
    for (p, (g, o)) in good.iter().zip(&observed).enumerate() {
        for (i, (gv, ov)) in g.iter().zip(o).enumerate() {
            if gv.is_known() && ov.is_known() && gv != ov {
                let bit = p * outs + i;
                sig[bit / 64] |= 1 << (bit % 64);
            }
        }
    }
    Ok(sig)
}

// ---------- worker-side wire job ----------

/// An opened transition job inside a worker process, monomorphized at
/// the lane-group width the job header requested.
struct TransitionJob<const N: usize> {
    program: Arc<SimProgram>,
    pins: Vec<NetId>,
    vectors: Vec<Vec<Logic>>,
    dict: bool,
}

impl<const N: usize> shard::WireJob for TransitionJob<N> {
    fn run_unit(&mut self, unit: &[u8]) -> Result<Vec<u8>, String> {
        let chunk =
            decode_transition_faults(unit).map_err(|e| format!("transition fault unit: {e}"))?;
        let per_pass = faults_per_pass(N);
        if chunk.len() > per_pass {
            return Err(format!(
                "transition fault unit has {} faults, a pass holds at most {per_pass}",
                chunk.len()
            ));
        }
        for f in &chunk {
            if f.net.index() >= self.program.net_count {
                return Err(format!("transition fault net {} out of range", f.net));
            }
        }
        if self.dict {
            let entries = dict_chunk::<N>(&self.program, &self.pins, &self.vectors, &chunk)
                .map_err(|e| e.to_string())?;
            Ok(encode_dict_entries(&entries))
        } else {
            let mask = grade_chunk::<N>(&self.program, &self.pins, &self.vectors, &chunk)
                .map_err(|e| e.to_string())?;
            Ok(encode_lane_mask(&mask))
        }
    }
}

/// Decodes a [`WIRE_KIND`] job block (compiled program + lane-group
/// width + mode + pin list + vector set) into the executable job the
/// worker loop drives — the `steac-worker` side of
/// [`grade_transitions`] / [`transition_dictionary`].
///
/// # Errors
///
/// A diagnostic on corrupt job bytes.
pub fn open_wire_job(job: &[u8]) -> Result<Box<dyn shard::WireJob>, String> {
    let mut r = wire::WireReader::new(job);
    let program = wire::decode_program(
        r.get_block("transition job program")
            .map_err(|e| e.to_string())?,
    )
    .map_err(|e| format!("transition job program: {e}"))?;
    let fail = |e: wire::WireError| format!("transition job: {e}");
    let groups = r.get_u8("transition job lane groups").map_err(fail)?;
    let dict = match r.get_u8("transition job mode").map_err(fail)? {
        MODE_GRADE => false,
        MODE_DICT => true,
        mode => return Err(format!("transition job mode {mode} unknown")),
    };
    let pin_count = r.get_count("transition job pins", 4).map_err(fail)?;
    let mut pins = Vec::with_capacity(pin_count);
    for _ in 0..pin_count {
        let net = r.get_u32("transition job pin").map_err(fail)?;
        if net as usize >= program.net_count {
            return Err(format!("transition job pin net {net} out of range"));
        }
        pins.push(NetId(net));
    }
    let vector_count = r.get_count("transition job vectors", 8).map_err(fail)?;
    let mut vectors = Vec::with_capacity(vector_count);
    for _ in 0..vector_count {
        let len = r.get_count("transition job vector", 1).map_err(fail)?;
        if len != pins.len() {
            return Err(format!(
                "transition job vector has {len} values, pin list has {}",
                pins.len()
            ));
        }
        let mut v = Vec::with_capacity(len);
        for _ in 0..len {
            v.push(r.get_logic("transition job vector value").map_err(fail)?);
        }
        vectors.push(v);
    }
    r.finish().map_err(fail)?;
    let program = Arc::new(program);
    macro_rules! open {
        ($n:literal) => {
            Box::new(TransitionJob::<$n> {
                program,
                pins,
                vectors,
                dict,
            }) as Box<dyn shard::WireJob>
        };
    }
    Ok(match groups as usize {
        1 => open!(1),
        2 => open!(2),
        4 => open!(4),
        8 => open!(8),
        _ => {
            return Err(format!(
                "transition job lane-group width {groups} unsupported"
            ))
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use steac_netlist::{GateKind, NetlistBuilder};

    fn and2() -> Module {
        let mut b = NetlistBuilder::new("m");
        let a = b.input("a");
        let c = b.input("b");
        let y = b.gate(GateKind::And2, &[a, c]);
        b.output("y", y);
        b.finish().unwrap()
    }

    fn pins(m: &Module) -> Vec<NetId> {
        [m.port("a").unwrap().net, m.port("b").unwrap().net].to_vec()
    }

    /// Walking both inputs through every edge detects every transition
    /// fault of an AND gate.
    #[test]
    fn exhaustive_pairs_cover_the_and_gate() {
        use Logic::{One, Zero};
        let m = and2();
        let faults = enumerate_transition_faults(&m);
        // 00 → 11 → 00 → 01 → 11 → 10 → 11 → 01 launches every edge
        // with the other input held at 1 (the propagating condition).
        let vectors = vec![
            vec![Zero, Zero],
            vec![One, One],
            vec![Zero, Zero],
            vec![Zero, One],
            vec![One, One],
            vec![One, Zero],
            vec![One, One],
            vec![Zero, One],
        ];
        let rep = grade_transitions(&Exec::serial(), &m, &faults, &pins(&m), &vectors).unwrap();
        assert_eq!(rep.coverage_percent(), 100.0, "{rep}");
    }

    /// A single vector forms no launch–capture pair, so nothing can be
    /// detected.
    #[test]
    fn one_vector_detects_nothing() {
        use Logic::One;
        let m = and2();
        let faults = enumerate_transition_faults(&m);
        let rep =
            grade_transitions(&Exec::serial(), &m, &faults, &pins(&m), &[vec![One, One]]).unwrap();
        assert_eq!(rep.detected, 0);
        assert_eq!(rep.undetected.len(), rep.total);
    }

    /// An untriggered fault (no launch of its slow edge) never raises a
    /// spurious detection: holding both inputs at 1 launches no rising
    /// edge on the output, so STR@y must escape.
    #[test]
    fn untriggered_faults_escape() {
        use Logic::One;
        let m = and2();
        let y = m.port("y").unwrap().net;
        let faults = [TransitionFault {
            net: y,
            slow: SlowEdge::Rise,
        }];
        let vectors = vec![vec![One, One], vec![One, One]];
        let rep = grade_transitions(&Exec::serial(), &m, &faults, &pins(&m), &vectors).unwrap();
        assert_eq!(rep.detected, 0);
    }

    /// Packed grading equals the scalar oracle on the exhaustive pairs.
    #[test]
    fn packed_matches_serial_oracle() {
        use Logic::{One, Zero};
        let m = and2();
        let faults = enumerate_transition_faults(&m);
        let vectors = vec![
            vec![Zero, Zero],
            vec![One, One],
            vec![One, Zero],
            vec![Zero, One],
        ];
        let packed = grade_transitions(&Exec::serial(), &m, &faults, &pins(&m), &vectors).unwrap();
        let serial = grade_transitions_serial(&m, &faults, &pins(&m), &vectors).unwrap();
        assert_eq!(packed, serial);
    }

    /// Dictionary entries agree with the grading verdicts and with the
    /// observed-signature helper.
    #[test]
    fn dictionary_agrees_with_grading_and_observation() {
        use Logic::{One, Zero};
        let m = and2();
        let faults = enumerate_transition_faults(&m);
        let p = pins(&m);
        let vectors = vec![
            vec![Zero, Zero],
            vec![One, One],
            vec![One, Zero],
            vec![One, One],
        ];
        let rep = grade_transitions(&Exec::serial(), &m, &faults, &p, &vectors).unwrap();
        let dict = transition_dictionary(&Exec::serial(), &m, &faults, &p, &vectors).unwrap();
        assert_eq!(dict.entries.len(), faults.len());
        for (f, e) in faults.iter().zip(&dict.entries) {
            let detected = !rep.undetected.contains(f);
            assert_eq!(e.first_pattern.is_some(), detected, "{f}");
            assert_eq!(e.signature.iter().any(|&w| w != 0), detected, "{f}");
            let observed = observed_transition_signature(&m, *f, &p, &vectors).unwrap();
            assert_eq!(e.signature, observed, "{f}");
        }
    }

    /// Unit payloads survive the wire codec.
    #[test]
    fn transition_fault_codec_round_trips() {
        let faults = enumerate_transition_faults(&and2());
        let bytes = encode_transition_faults(&faults);
        assert_eq!(decode_transition_faults(&bytes).unwrap(), faults);
        assert!(decode_transition_faults(&bytes[..bytes.len() - 1]).is_err());
    }
}
