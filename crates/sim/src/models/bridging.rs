//! Bridging fault model: AND/OR shorts between topologically adjacent
//! nets.
//!
//! A bridging fault shorts two nets so the pair resolves to the wired
//! AND (or wired OR) of the values the fault-free circuit would drive.
//! Candidate pairs come from [`SimProgram`]'s instruction stream —
//! nets feeding the same instruction are *topologically adjacent*, the
//! standard netlist proxy for physical proximity when no layout exists
//! (nets converging on a gate are routed to the same place). Adjacency
//! is derived from the **unoptimized** stream so the candidate list
//! reflects the netlist's structure, not whatever `STEAC_OPT` did to
//! it.
//!
//! The packed pass evaluates each vector twice: an unforced settle
//! yields the fault-free values of every bridged net pair on lane 0,
//! then each faulty lane forces *both* nets of its pair to the wired
//! value (4-valued: `0 AND x = 0`, `1 OR x = 1`, else X when either
//! side is unknown) and the circuit settles again. Lane 0 stays
//! unforced — the good machine — and detection uses the same
//! masked-compare rule as every other model.

use crate::exec::{Exec, ExecWork};
use crate::fault::{
    decode_lane_mask, detection_lanes, encode_lane_mask, faults_per_pass, validate_vectors,
};
use crate::logic::Logic;
use crate::models::dictionary::{
    decode_dict_entries, encode_dict_entries, signature_words, DictEntry, FaultDictionary,
};
use crate::packed::{
    mask_and, mask_bit, mask_none, mask_or, mask_range, LaneMask, DEFAULT_LANE_GROUPS,
};
use crate::program::SimProgram;
use crate::shard::{self, PoolError};
use crate::wire;
use crate::{SimError, Simulator};
use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;
use steac_netlist::{Module, NetId};

/// How the shorted pair resolves.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BridgeKind {
    /// Wired-AND: a 0 on either net wins.
    And,
    /// Wired-OR: a 1 on either net wins.
    Or,
}

impl BridgeKind {
    /// The 4-valued wired value of the shorted pair given the fault-free
    /// values of both nets: the dominant value wins outright, two
    /// recessive values stay recessive, anything else is unknown.
    #[must_use]
    pub fn wired(self, a: Logic, b: Logic) -> Logic {
        match self {
            BridgeKind::And => a.and(b),
            BridgeKind::Or => a.or(b),
        }
    }
}

impl fmt::Display for BridgeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            BridgeKind::And => "AND",
            BridgeKind::Or => "OR",
        })
    }
}

/// A single bridging fault: two distinct nets and the wired resolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BridgingFault {
    /// One side of the short.
    pub a: NetId,
    /// The other side.
    pub b: NetId,
    /// Wired-AND or wired-OR resolution.
    pub kind: BridgeKind,
}

impl fmt::Display for BridgingFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}-bridge@{}+{}", self.kind, self.a, self.b)
    }
}

/// Distinct net pairs feeding the same instruction of `program`'s comb
/// stream, each ordered `(low, high)` and listed once, in first-seen
/// order — the topological-adjacency candidate list.
#[must_use]
pub fn adjacent_net_pairs(program: &SimProgram) -> Vec<(NetId, NetId)> {
    let mut seen = BTreeSet::new();
    let mut pairs = Vec::new();
    for instr in &program.comb {
        let ins = &instr.ins[..instr.op.arity()];
        for (i, &sa) in ins.iter().enumerate() {
            for &sb in &ins[i + 1..] {
                // Only value slots inside the net range name real nets
                // (state slots live past `net_count`).
                if sa == sb || sa as usize >= program.net_count || sb as usize >= program.net_count
                {
                    continue;
                }
                let (a, b) = (program.net_of_slot(sa), program.net_of_slot(sb));
                let key = if a.0 <= b.0 { (a.0, b.0) } else { (b.0, a.0) };
                if seen.insert(key) {
                    pairs.push((NetId(key.0), NetId(key.1)));
                }
            }
        }
    }
    pairs
}

/// Enumerates the bridging fault list of a module: an AND- and an
/// OR-bridge per adjacent net pair of the unoptimized instruction
/// stream (see [`adjacent_net_pairs`]).
///
/// # Errors
///
/// Compile errors from the netlist.
pub fn enumerate_bridges(m: &Module) -> Result<Vec<BridgingFault>, SimError> {
    let program = SimProgram::compile_unoptimized(m)?;
    let mut v = Vec::new();
    for (a, b) in adjacent_net_pairs(&program) {
        v.push(BridgingFault {
            a,
            b,
            kind: BridgeKind::And,
        });
        v.push(BridgingFault {
            a,
            b,
            kind: BridgeKind::Or,
        });
    }
    Ok(v)
}

/// Result of grading a vector set against a bridging fault list.
/// Mirrors [`crate::fault::CoverageReport`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BridgingReport {
    /// Number of faults simulated.
    pub total: usize,
    /// Number of detected faults.
    pub detected: usize,
    /// Faults that escaped, for diagnosis.
    pub undetected: Vec<BridgingFault>,
    /// In-thread recomputations after process-dispatch failures (see
    /// [`crate::fault::CoverageReport::process_fallbacks`]).
    pub process_fallbacks: usize,
}

impl BridgingReport {
    /// Fault coverage in percent (100 for an empty fault list).
    #[must_use]
    pub fn coverage_percent(&self) -> f64 {
        if self.total == 0 {
            100.0
        } else {
            100.0 * self.detected as f64 / self.total as f64
        }
    }
}

impl fmt::Display for BridgingReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/{} bridging faults detected ({:.2}%)",
            self.detected,
            self.total,
            self.coverage_percent()
        )
    }
}

/// Drives one vector for one fault chunk: unforced settle for the
/// fault-free bridge values, then per-lane wired forces on both nets of
/// each pair and a second settle. Afterwards the simulator holds the
/// faulty state (read outputs, then call again for the next vector).
fn run_vector<const N: usize>(
    sim: &mut Simulator<N>,
    pins: &[NetId],
    vector: &[Logic],
    chunk: &[BridgingFault],
) -> Result<(), SimError> {
    sim.clear_forces();
    for (&pin, &v) in pins.iter().zip(vector) {
        sim.set(pin, v);
    }
    sim.settle()?;
    let wired: Vec<Logic> = chunk
        .iter()
        .map(|f| f.kind.wired(sim.get_lane(f.a, 0), sim.get_lane(f.b, 0)))
        .collect();
    for (i, (f, &w)) in chunk.iter().zip(&wired).enumerate() {
        sim.force_lane(f.a, i + 1, w);
        sim.force_lane(f.b, i + 1, w);
    }
    sim.settle()
}

/// One grading pass over a bridging fault chunk — the exact code every
/// backend executes. Lane 0 is the good machine, lanes
/// `1..=chunk.len()` each carry one bridge.
fn grade_chunk<const N: usize>(
    program: &Arc<SimProgram>,
    pins: &[NetId],
    vectors: &[Vec<Logic>],
    chunk: &[BridgingFault],
) -> Result<LaneMask<N>, SimError> {
    let mut sim: Simulator<N> = Simulator::from_program(Arc::clone(program));
    let want = mask_range::<N>(1, chunk.len());
    let mut mask = mask_none::<N>();
    for vector in vectors {
        run_vector(&mut sim, pins, vector, chunk)?;
        for &net in &sim.program().output_nets {
            mask = mask_or(mask, detection_lanes(sim.get_packed(net)));
        }
        if mask_and(mask, want) == want {
            break; // every fault in this pass dropped
        }
    }
    Ok(mask)
}

/// One dictionary pass over a bridging fault chunk: the grading loop
/// without early exit, recording per-(vector, output) detection bits
/// and the first detecting vector per fault.
fn dict_chunk<const N: usize>(
    program: &Arc<SimProgram>,
    pins: &[NetId],
    vectors: &[Vec<Logic>],
    chunk: &[BridgingFault],
) -> Result<Vec<DictEntry>, SimError> {
    let outs = program.output_nets.len();
    let words = signature_words(vectors.len(), outs);
    let mut entries = vec![
        DictEntry {
            first_pattern: None,
            signature: vec![0u64; words],
        };
        chunk.len()
    ];
    let mut sim: Simulator<N> = Simulator::from_program(Arc::clone(program));
    for (p, vector) in vectors.iter().enumerate() {
        run_vector(&mut sim, pins, vector, chunk)?;
        for (o, &net) in sim.program().output_nets.iter().enumerate() {
            let det = detection_lanes(sim.get_packed(net));
            let bit = p * outs + o;
            for (i, e) in entries.iter_mut().enumerate() {
                if mask_bit(&det, i + 1) {
                    e.signature[bit / 64] |= 1 << (bit % 64);
                    if e.first_pattern.is_none() {
                        e.first_pattern = Some(p as u32);
                    }
                }
            }
        }
    }
    Ok(entries)
}

// ---------- Exec work descriptions ----------

/// Work-unit kind the worker-side job registry routes to
/// [`open_wire_job`]: bridging grading (or dictionary building) of a
/// fault chunk.
pub const WIRE_KIND: u16 = 5;

const MODE_GRADE: u8 = 0;
const MODE_DICT: u8 = 1;

fn encode_job(
    program: &SimProgram,
    groups: u8,
    mode: u8,
    pins: &[NetId],
    vectors: &[Vec<Logic>],
) -> Vec<u8> {
    let mut w = wire::WireWriter::new();
    w.put_block(&wire::encode_program(program));
    w.put_u8(groups);
    w.put_u8(mode);
    w.put_usize(pins.len());
    for pin in pins {
        w.put_u32(pin.0);
    }
    w.put_usize(vectors.len());
    for v in vectors {
        w.put_usize(v.len());
        for &value in v {
            w.put_logic(value);
        }
    }
    w.finish()
}

/// Serializes a bridging fault chunk (work-unit payload): count, then
/// both nets + kind per fault.
pub(crate) fn encode_bridging_faults(faults: &[BridgingFault]) -> Vec<u8> {
    let mut w = wire::WireWriter::new();
    w.put_usize(faults.len());
    for f in faults {
        w.put_u32(f.a.0);
        w.put_u32(f.b.0);
        w.put_u8(match f.kind {
            BridgeKind::And => 0,
            BridgeKind::Or => 1,
        });
    }
    w.finish()
}

/// Deserializes a bridging fault chunk.
///
/// # Errors
///
/// [`wire::WireError`] on truncated or corrupt bytes.
pub(crate) fn decode_bridging_faults(bytes: &[u8]) -> Result<Vec<BridgingFault>, wire::WireError> {
    let mut r = wire::WireReader::new(bytes);
    let count = r.get_count("bridging fault count", 9)?;
    let mut faults = Vec::with_capacity(count);
    for _ in 0..count {
        let a = NetId(r.get_u32("bridging fault net a")?);
        let b = NetId(r.get_u32("bridging fault net b")?);
        let kind = match r.get_u8("bridging fault kind")? {
            0 => BridgeKind::And,
            1 => BridgeKind::Or,
            _ => {
                return Err(wire::WireError::Corrupt {
                    context: "bridging fault kind",
                })
            }
        };
        faults.push(BridgingFault { a, b, kind });
    }
    r.finish()?;
    Ok(faults)
}

/// The [`ExecWork`] description of bridging grading.
struct GradeWork<'a, const N: usize> {
    program: Arc<SimProgram>,
    pins: &'a [NetId],
    vectors: &'a [Vec<Logic>],
    chunks: Vec<&'a [BridgingFault]>,
}

impl<const N: usize> ExecWork for GradeWork<'_, N> {
    type Output = LaneMask<N>;
    type Error = SimError;

    fn kind(&self) -> u16 {
        WIRE_KIND
    }

    fn unit_count(&self) -> usize {
        self.chunks.len()
    }

    fn encode_job(&self) -> Vec<u8> {
        encode_job(&self.program, N as u8, MODE_GRADE, self.pins, self.vectors)
    }

    fn encode_unit(&self, unit: usize) -> Vec<u8> {
        encode_bridging_faults(self.chunks[unit])
    }

    fn run_unit_local(&self, unit: usize) -> Result<LaneMask<N>, SimError> {
        grade_chunk::<N>(&self.program, self.pins, self.vectors, self.chunks[unit])
    }

    fn decode_result(&self, _unit: usize, bytes: &[u8]) -> Result<LaneMask<N>, String> {
        decode_lane_mask::<N>(bytes)
    }

    fn pool_error(&self, error: PoolError) -> SimError {
        error.into()
    }
}

/// The [`ExecWork`] description of bridging dictionary building.
struct DictWork<'a, const N: usize> {
    program: Arc<SimProgram>,
    pins: &'a [NetId],
    vectors: &'a [Vec<Logic>],
    chunks: Vec<&'a [BridgingFault]>,
}

impl<const N: usize> ExecWork for DictWork<'_, N> {
    type Output = Vec<DictEntry>;
    type Error = SimError;

    fn kind(&self) -> u16 {
        WIRE_KIND
    }

    fn unit_count(&self) -> usize {
        self.chunks.len()
    }

    fn encode_job(&self) -> Vec<u8> {
        encode_job(&self.program, N as u8, MODE_DICT, self.pins, self.vectors)
    }

    fn encode_unit(&self, unit: usize) -> Vec<u8> {
        encode_bridging_faults(self.chunks[unit])
    }

    fn run_unit_local(&self, unit: usize) -> Result<Vec<DictEntry>, SimError> {
        dict_chunk::<N>(&self.program, self.pins, self.vectors, self.chunks[unit])
    }

    fn decode_result(&self, _unit: usize, bytes: &[u8]) -> Result<Vec<DictEntry>, String> {
        decode_dict_entries(bytes)
    }

    fn pool_error(&self, error: PoolError) -> SimError {
        error.into()
    }
}

// ---------- entry points ----------

/// Packed bridging grading of a static vector set (unforced settle,
/// per-lane wired forces, forced settle, compare outputs), with
/// per-pass fault dropping — through the same `Exec` seam as every
/// model and byte-identical on every backend.
///
/// # Errors
///
/// As [`crate::fault::grade_vectors`].
pub fn grade_bridges(
    exec: &Exec,
    m: &Module,
    faults: &[BridgingFault],
    pins: &[NetId],
    vectors: &[Vec<Logic>],
) -> Result<BridgingReport, SimError> {
    grade_bridges_wide(exec, m, faults, pins, vectors, DEFAULT_LANE_GROUPS)
}

/// [`grade_bridges`] with an explicit lane-group width; the report is
/// bit-identical at every width in
/// [`SUPPORTED_LANE_GROUPS`](crate::fault::SUPPORTED_LANE_GROUPS).
///
/// # Errors
///
/// [`SimError::UnsupportedWidth`] for other widths; otherwise as
/// [`grade_bridges`].
pub fn grade_bridges_wide(
    exec: &Exec,
    m: &Module,
    faults: &[BridgingFault],
    pins: &[NetId],
    vectors: &[Vec<Logic>],
    groups: usize,
) -> Result<BridgingReport, SimError> {
    match groups {
        1 => grade_bridges_n::<1>(exec, m, faults, pins, vectors),
        2 => grade_bridges_n::<2>(exec, m, faults, pins, vectors),
        4 => grade_bridges_n::<4>(exec, m, faults, pins, vectors),
        8 => grade_bridges_n::<8>(exec, m, faults, pins, vectors),
        _ => Err(SimError::UnsupportedWidth { groups }),
    }
}

fn grade_bridges_n<const N: usize>(
    exec: &Exec,
    m: &Module,
    faults: &[BridgingFault],
    pins: &[NetId],
    vectors: &[Vec<Logic>],
) -> Result<BridgingReport, SimError> {
    validate_vectors(pins, vectors)?;
    let per_pass = faults_per_pass(N);
    let program = Arc::new(SimProgram::compile(m)?);
    let work = GradeWork::<N> {
        program,
        pins,
        vectors,
        chunks: faults.chunks(per_pass).collect(),
    };
    let dispatched = exec.dispatch(&work)?;
    let flags = shard::flags_from_lane_masks(faults.len(), per_pass, 1, &dispatched.units);
    let mut detected = 0usize;
    let mut undetected = Vec::new();
    for (&f, &hit) in faults.iter().zip(&flags) {
        if hit {
            detected += 1;
        } else {
            undetected.push(f);
        }
    }
    Ok(BridgingReport {
        total: faults.len(),
        detected,
        undetected,
        process_fallbacks: dispatched.fallback_count(),
    })
}

/// Builds the bridging fault dictionary for `faults` over `vectors`:
/// per fault, the first detecting vector and the packed
/// per-(vector, output) detection signature.
///
/// # Errors
///
/// As [`grade_bridges`].
pub fn bridging_dictionary(
    exec: &Exec,
    m: &Module,
    faults: &[BridgingFault],
    pins: &[NetId],
    vectors: &[Vec<Logic>],
) -> Result<FaultDictionary, SimError> {
    bridging_dictionary_wide(exec, m, faults, pins, vectors, DEFAULT_LANE_GROUPS)
}

/// [`bridging_dictionary`] with an explicit lane-group width.
///
/// # Errors
///
/// [`SimError::UnsupportedWidth`] for widths outside
/// [`SUPPORTED_LANE_GROUPS`](crate::fault::SUPPORTED_LANE_GROUPS);
/// otherwise as [`bridging_dictionary`].
pub fn bridging_dictionary_wide(
    exec: &Exec,
    m: &Module,
    faults: &[BridgingFault],
    pins: &[NetId],
    vectors: &[Vec<Logic>],
    groups: usize,
) -> Result<FaultDictionary, SimError> {
    match groups {
        1 => bridging_dictionary_n::<1>(exec, m, faults, pins, vectors),
        2 => bridging_dictionary_n::<2>(exec, m, faults, pins, vectors),
        4 => bridging_dictionary_n::<4>(exec, m, faults, pins, vectors),
        8 => bridging_dictionary_n::<8>(exec, m, faults, pins, vectors),
        _ => Err(SimError::UnsupportedWidth { groups }),
    }
}

fn bridging_dictionary_n<const N: usize>(
    exec: &Exec,
    m: &Module,
    faults: &[BridgingFault],
    pins: &[NetId],
    vectors: &[Vec<Logic>],
) -> Result<FaultDictionary, SimError> {
    validate_vectors(pins, vectors)?;
    let per_pass = faults_per_pass(N);
    let program = Arc::new(SimProgram::compile(m)?);
    let outputs = program.output_nets.len();
    let work = DictWork::<N> {
        program,
        pins,
        vectors,
        chunks: faults.chunks(per_pass).collect(),
    };
    let dispatched = exec.dispatch(&work)?;
    Ok(FaultDictionary {
        patterns: vectors.len() as u32,
        outputs: outputs as u32,
        entries: dispatched.units.into_iter().flatten().collect(),
    })
}

/// Serial reference implementation: one scalar simulation per fault,
/// mirroring the packed per-vector semantics exactly. Kept strictly as
/// the differential-test oracle.
///
/// # Errors
///
/// Propagates engine errors; the good-machine run is performed first.
#[doc(hidden)]
pub fn grade_bridges_serial(
    m: &Module,
    faults: &[BridgingFault],
    pins: &[NetId],
    vectors: &[Vec<Logic>],
) -> Result<BridgingReport, SimError> {
    validate_vectors(pins, vectors)?;
    // Good per-vector output streams, plus the fault-free values of
    // every bridged net — the wired value is always computed from the
    // good machine, exactly as the packed pass reads lane 0.
    let mut bridged: Vec<NetId> = faults.iter().flat_map(|f| [f.a, f.b]).collect();
    bridged.sort_unstable();
    bridged.dedup();
    let mut good_sim: Simulator = Simulator::new(m)?;
    let mut good = Vec::new();
    let mut good_bridged = Vec::new();
    for vector in vectors {
        for (&pin, &v) in pins.iter().zip(vector) {
            good_sim.set(pin, v);
        }
        good_sim.settle()?;
        let outs: Vec<Logic> = good_sim
            .program()
            .output_nets
            .iter()
            .map(|&n| good_sim.get_lane(n, 0))
            .collect();
        good.push(outs);
        good_bridged.push(
            bridged
                .iter()
                .map(|&n| good_sim.get_lane(n, 0))
                .collect::<Vec<Logic>>(),
        );
    }
    let net_value = |values: &[Logic], net: NetId| {
        values[bridged.binary_search(&net).expect("bridged net recorded")]
    };
    let mut detected = 0usize;
    let mut undetected = Vec::new();
    for &fault in faults {
        let mut sim: Simulator = Simulator::new(m)?;
        let mut diff = false;
        for ((vector, good_outs), fault_free) in vectors.iter().zip(&good).zip(&good_bridged) {
            sim.clear_forces();
            for (&pin, &v) in pins.iter().zip(vector) {
                sim.set(pin, v);
            }
            sim.settle()?;
            let w = fault.kind.wired(
                net_value(fault_free, fault.a),
                net_value(fault_free, fault.b),
            );
            sim.force(fault.a, w);
            sim.force(fault.b, w);
            sim.settle()?;
            let nets: Vec<NetId> = sim.program().output_nets.clone();
            diff |= nets.iter().zip(good_outs).any(|(&n, g)| {
                let o = sim.get_lane(n, 0);
                g.is_known() && o.is_known() && *g != o
            });
        }
        if diff {
            detected += 1;
        } else {
            undetected.push(fault);
        }
    }
    Ok(BridgingReport {
        total: faults.len(),
        detected,
        undetected,
        process_fallbacks: 0,
    })
}

// ---------- worker-side wire job ----------

/// An opened bridging job inside a worker process, monomorphized at
/// the lane-group width the job header requested.
struct BridgingJob<const N: usize> {
    program: Arc<SimProgram>,
    pins: Vec<NetId>,
    vectors: Vec<Vec<Logic>>,
    dict: bool,
}

impl<const N: usize> shard::WireJob for BridgingJob<N> {
    fn run_unit(&mut self, unit: &[u8]) -> Result<Vec<u8>, String> {
        let chunk =
            decode_bridging_faults(unit).map_err(|e| format!("bridging fault unit: {e}"))?;
        let per_pass = faults_per_pass(N);
        if chunk.len() > per_pass {
            return Err(format!(
                "bridging fault unit has {} faults, a pass holds at most {per_pass}",
                chunk.len()
            ));
        }
        for f in &chunk {
            if f.a.index() >= self.program.net_count || f.b.index() >= self.program.net_count {
                return Err(format!("bridging fault {f} out of range"));
            }
        }
        if self.dict {
            let entries = dict_chunk::<N>(&self.program, &self.pins, &self.vectors, &chunk)
                .map_err(|e| e.to_string())?;
            Ok(encode_dict_entries(&entries))
        } else {
            let mask = grade_chunk::<N>(&self.program, &self.pins, &self.vectors, &chunk)
                .map_err(|e| e.to_string())?;
            Ok(encode_lane_mask(&mask))
        }
    }
}

/// Decodes a [`WIRE_KIND`] job block into the executable job the worker
/// loop drives — the `steac-worker` side of [`grade_bridges`] /
/// [`bridging_dictionary`].
///
/// # Errors
///
/// A diagnostic on corrupt job bytes.
pub fn open_wire_job(job: &[u8]) -> Result<Box<dyn shard::WireJob>, String> {
    let mut r = wire::WireReader::new(job);
    let program = wire::decode_program(
        r.get_block("bridging job program")
            .map_err(|e| e.to_string())?,
    )
    .map_err(|e| format!("bridging job program: {e}"))?;
    let fail = |e: wire::WireError| format!("bridging job: {e}");
    let groups = r.get_u8("bridging job lane groups").map_err(fail)?;
    let dict = match r.get_u8("bridging job mode").map_err(fail)? {
        MODE_GRADE => false,
        MODE_DICT => true,
        mode => return Err(format!("bridging job mode {mode} unknown")),
    };
    let pin_count = r.get_count("bridging job pins", 4).map_err(fail)?;
    let mut pins = Vec::with_capacity(pin_count);
    for _ in 0..pin_count {
        let net = r.get_u32("bridging job pin").map_err(fail)?;
        if net as usize >= program.net_count {
            return Err(format!("bridging job pin net {net} out of range"));
        }
        pins.push(NetId(net));
    }
    let vector_count = r.get_count("bridging job vectors", 8).map_err(fail)?;
    let mut vectors = Vec::with_capacity(vector_count);
    for _ in 0..vector_count {
        let len = r.get_count("bridging job vector", 1).map_err(fail)?;
        if len != pins.len() {
            return Err(format!(
                "bridging job vector has {len} values, pin list has {}",
                pins.len()
            ));
        }
        let mut v = Vec::with_capacity(len);
        for _ in 0..len {
            v.push(r.get_logic("bridging job vector value").map_err(fail)?);
        }
        vectors.push(v);
    }
    r.finish().map_err(fail)?;
    let program = Arc::new(program);
    macro_rules! open {
        ($n:literal) => {
            Box::new(BridgingJob::<$n> {
                program,
                pins,
                vectors,
                dict,
            }) as Box<dyn shard::WireJob>
        };
    }
    Ok(match groups as usize {
        1 => open!(1),
        2 => open!(2),
        4 => open!(4),
        8 => open!(8),
        _ => {
            return Err(format!(
                "bridging job lane-group width {groups} unsupported"
            ))
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use steac_netlist::{GateKind, NetlistBuilder};

    fn and2() -> Module {
        let mut b = NetlistBuilder::new("m");
        let a = b.input("a");
        let c = b.input("b");
        let y = b.gate(GateKind::And2, &[a, c]);
        b.output("y", y);
        b.finish().unwrap()
    }

    fn pins(m: &Module) -> Vec<NetId> {
        [m.port("a").unwrap().net, m.port("b").unwrap().net].to_vec()
    }

    #[test]
    fn adjacency_pairs_the_gate_inputs() {
        let m = and2();
        let bridges = enumerate_bridges(&m).unwrap();
        // One adjacent pair (a, b feeding the AND), two bridge kinds.
        assert_eq!(bridges.len(), 2);
        assert_ne!(bridges[0].a, bridges[0].b);
    }

    /// An OR-bridge across an AND gate's inputs flips the output on the
    /// 01/10 vectors; an AND-bridge there is only visible on... nothing
    /// for y = a AND b (wired-AND equals the gate), so exactly the OR
    /// bridge is detected.
    #[test]
    fn wired_or_detected_wired_and_undetectable_on_and_gate() {
        use Logic::{One, Zero};
        let m = and2();
        let bridges = enumerate_bridges(&m).unwrap();
        let vectors = vec![
            vec![Zero, Zero],
            vec![Zero, One],
            vec![One, Zero],
            vec![One, One],
        ];
        let rep = grade_bridges(&Exec::serial(), &m, &bridges, &pins(&m), &vectors).unwrap();
        assert_eq!(rep.total, 2);
        assert_eq!(rep.detected, 1, "{rep}");
        assert_eq!(rep.undetected[0].kind, BridgeKind::And);
    }

    /// Packed grading equals the scalar oracle.
    #[test]
    fn packed_matches_serial_oracle() {
        use Logic::{One, Zero};
        let m = and2();
        let bridges = enumerate_bridges(&m).unwrap();
        let vectors = vec![vec![Zero, One], vec![One, Zero], vec![One, One]];
        let packed = grade_bridges(&Exec::serial(), &m, &bridges, &pins(&m), &vectors).unwrap();
        let serial = grade_bridges_serial(&m, &bridges, &pins(&m), &vectors).unwrap();
        assert_eq!(packed, serial);
    }

    /// Dictionary entries agree with the grading verdicts.
    #[test]
    fn dictionary_agrees_with_grading() {
        use Logic::{One, Zero};
        let m = and2();
        let bridges = enumerate_bridges(&m).unwrap();
        let p = pins(&m);
        let vectors = vec![vec![Zero, One], vec![One, Zero], vec![One, One]];
        let rep = grade_bridges(&Exec::serial(), &m, &bridges, &p, &vectors).unwrap();
        let dict = bridging_dictionary(&Exec::serial(), &m, &bridges, &p, &vectors).unwrap();
        assert_eq!(dict.entries.len(), bridges.len());
        for (f, e) in bridges.iter().zip(&dict.entries) {
            let detected = !rep.undetected.contains(f);
            assert_eq!(e.first_pattern.is_some(), detected, "{f}");
        }
    }

    #[test]
    fn bridging_fault_codec_round_trips() {
        let faults = enumerate_bridges(&and2()).unwrap();
        let bytes = encode_bridging_faults(&faults);
        assert_eq!(decode_bridging_faults(&bytes).unwrap(), faults);
        assert!(decode_bridging_faults(&bytes[..bytes.len() - 1]).is_err());
    }
}
