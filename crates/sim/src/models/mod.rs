//! The fault-model subsystem: every model is a registered [`ExecWork`].
//!
//! Stuck-at grading ([`crate::fault`]) was the repo's founding workload;
//! this module generalises it into a *registry of fault models*, each of
//! which inherits the whole platform for free by speaking the same
//! `ExecWork` contract: all five backends (serial / threads / processes
//! / remote-spawn / remote-tcp), the optimizer pipeline, wide lane
//! groups, per-pass fault dropping, and the byte-identical-reports
//! differential-test pattern.
//!
//! | model | module | work-unit kind | fault site |
//! |---|---|---|---|
//! | stuck-at | [`crate::fault`] | 1 | net stuck at 0/1 |
//! | transition/delay | [`transition`] | 4 | net slow-to-rise/fall |
//! | bridging | [`bridging`] | 5 | AND/OR short between adjacent nets |
//! | dictionary diagnosis | [`dictionary`] | 6 | — (consumes dictionaries) |
//!
//! (Inter-cell memory coupling is the fourth model; its faults are
//! `steac-membist` [`MemFault`]s and ride that crate's March walk
//! workload, kind 3.)
//!
//! Each gate-level model can emit an optional **fault dictionary**
//! ([`dictionary::FaultDictionary`]): per fault, the first detecting
//! pattern and a packed per-(pattern, output) detection signature. The
//! [`dictionary::diagnose`] workload consumes a dictionary plus an
//! observed failure signature and ranks candidate fault sites by
//! signature distance — localization as an `Exec`-dispatched workload
//! rather than a post-processing script.
//!
//! # Model selection
//!
//! Flows that grade "with the configured model" (the zoo corpus, the
//! scaling bench) select it via [`ModelKind`]: `STEAC_MODEL=stuck-at`
//! (default) / `transition` / `bridging`, parsed by
//! [`ModelKind::from_env`].
//!
//! [`ExecWork`]: crate::exec::ExecWork
//! [`MemFault`]: https://docs.rs/steac-membist

pub mod bridging;
pub mod dictionary;
pub mod transition;

use std::fmt;

/// Gate-level fault models a vector-grading flow can select between.
///
/// This is the registry key the zoo corpus and the benches dispatch on;
/// the memory coupling model lives in `steac-membist` and is selected
/// by algorithm, not by this enum.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ModelKind {
    /// Single stuck-at faults ([`crate::fault::grade_vectors`]).
    #[default]
    StuckAt,
    /// Transition/delay faults ([`transition::grade_transitions`]).
    Transition,
    /// AND/OR bridging faults ([`bridging::grade_bridges`]).
    Bridging,
}

impl ModelKind {
    /// Every selectable model, in registry order.
    pub const ALL: [ModelKind; 3] = [
        ModelKind::StuckAt,
        ModelKind::Transition,
        ModelKind::Bridging,
    ];

    /// Parses a `STEAC_MODEL` value. Accepts the canonical names
    /// `stuck-at`, `transition` and `bridging` (plus the common
    /// `stuckat`/`sa` spellings).
    #[must_use]
    pub fn parse(spec: &str) -> Option<ModelKind> {
        match spec.trim().to_ascii_lowercase().as_str() {
            "stuck-at" | "stuckat" | "sa" => Some(ModelKind::StuckAt),
            "transition" | "delay" => Some(ModelKind::Transition),
            "bridging" | "bridge" => Some(ModelKind::Bridging),
            _ => None,
        }
    }

    /// Resolves the model from `STEAC_MODEL`, defaulting to stuck-at.
    ///
    /// # Panics
    ///
    /// Panics on an unrecognised `STEAC_MODEL` value — a misspelled
    /// model silently grading stuck-at would invalidate whatever the
    /// caller thought it measured.
    #[must_use]
    pub fn from_env() -> ModelKind {
        match std::env::var("STEAC_MODEL") {
            Ok(spec) => ModelKind::parse(&spec)
                .unwrap_or_else(|| panic!("STEAC_MODEL={spec}: unknown fault model")),
            Err(_) => ModelKind::StuckAt,
        }
    }
}

impl fmt::Display for ModelKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ModelKind::StuckAt => "stuck-at",
            ModelKind::Transition => "transition",
            ModelKind::Bridging => "bridging",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_names_round_trip_through_parse() {
        for kind in ModelKind::ALL {
            assert_eq!(ModelKind::parse(&kind.to_string()), Some(kind));
        }
        assert_eq!(ModelKind::parse("delay"), Some(ModelKind::Transition));
        assert_eq!(ModelKind::parse("qqq"), None);
    }
}
