//! Bit-parallel packed 4-value logic: 64 independent simulation lanes per
//! word pair.
//!
//! [`PackedLogic`] carries one [`Logic`] value per lane in two bit planes:
//!
//! | value | `ones` bit | `unknowns` bit |
//! |-------|------------|----------------|
//! | `0`   | 0          | 0              |
//! | `1`   | 1          | 0              |
//! | `X`   | 0          | 1              |
//! | `Z`   | 1          | 1              |
//!
//! Every operation is a handful of word-wide boolean instructions and is
//! **lane-exact**: for each lane, the packed result equals the scalar
//! [`Logic`] algebra applied to that lane's inputs (a property-tested
//! invariant, see `tests/proptests.rs`). This is what lets the engine
//! evaluate 64 patterns — or one good machine plus 63 faulty machines — in
//! a single pass over the compiled netlist.

use crate::logic::Logic;

/// Number of independent simulation lanes in one packed word.
pub const LANES: usize = 64;

/// 64 lanes of 4-value logic in two bit planes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PackedLogic {
    /// Value plane: lane bit set ⇒ the lane's known value is `1` (or the
    /// lane is `Z` when the `unknowns` bit is also set).
    pub ones: u64,
    /// Unknown plane: lane bit set ⇒ the lane holds `X` or `Z`.
    pub unknowns: u64,
}

impl Default for PackedLogic {
    fn default() -> Self {
        PackedLogic::splat(Logic::X)
    }
}

impl PackedLogic {
    /// All lanes `X` (power-on state).
    pub const ALL_X: PackedLogic = PackedLogic {
        ones: 0,
        unknowns: u64::MAX,
    };

    /// All lanes `0`.
    pub const ALL_ZERO: PackedLogic = PackedLogic {
        ones: 0,
        unknowns: 0,
    };

    /// All lanes `1`.
    pub const ALL_ONE: PackedLogic = PackedLogic {
        ones: u64::MAX,
        unknowns: 0,
    };

    /// Broadcasts one scalar value to every lane.
    #[must_use]
    pub fn splat(v: Logic) -> Self {
        match v {
            Logic::Zero => PackedLogic {
                ones: 0,
                unknowns: 0,
            },
            Logic::One => PackedLogic {
                ones: u64::MAX,
                unknowns: 0,
            },
            Logic::X => PackedLogic {
                ones: 0,
                unknowns: u64::MAX,
            },
            Logic::Z => PackedLogic {
                ones: u64::MAX,
                unknowns: u64::MAX,
            },
        }
    }

    /// Packs up to [`LANES`] scalar values (missing lanes become `X`).
    #[must_use]
    pub fn from_lanes(values: &[Logic]) -> Self {
        let mut p = PackedLogic::ALL_X;
        for (i, &v) in values.iter().take(LANES).enumerate() {
            p.set_lane(i, v);
        }
        p
    }

    /// Reads one lane back as a scalar.
    ///
    /// # Panics
    ///
    /// Panics if `lane >= LANES`.
    #[must_use]
    pub fn lane(self, lane: usize) -> Logic {
        assert!(lane < LANES, "lane {lane} out of range");
        let one = (self.ones >> lane) & 1 == 1;
        let unk = (self.unknowns >> lane) & 1 == 1;
        match (one, unk) {
            (false, false) => Logic::Zero,
            (true, false) => Logic::One,
            (false, true) => Logic::X,
            (true, true) => Logic::Z,
        }
    }

    /// Writes one lane.
    ///
    /// # Panics
    ///
    /// Panics if `lane >= LANES`.
    pub fn set_lane(&mut self, lane: usize, v: Logic) {
        assert!(lane < LANES, "lane {lane} out of range");
        let bit = 1u64 << lane;
        let (one, unk) = match v {
            Logic::Zero => (false, false),
            Logic::One => (true, false),
            Logic::X => (false, true),
            Logic::Z => (true, true),
        };
        if one {
            self.ones |= bit;
        } else {
            self.ones &= !bit;
        }
        if unk {
            self.unknowns |= bit;
        } else {
            self.unknowns &= !bit;
        }
    }

    /// Unpacks all lanes.
    #[must_use]
    pub fn to_lanes(self) -> [Logic; LANES] {
        let mut out = [Logic::X; LANES];
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = self.lane(i);
        }
        out
    }

    /// Lane mask of known (`0`/`1`) values.
    #[must_use]
    pub fn known(self) -> u64 {
        !self.unknowns
    }

    /// Lane mask of lanes holding exactly `0`.
    #[must_use]
    pub fn is_zero(self) -> u64 {
        !self.ones & !self.unknowns
    }

    /// Lane mask of lanes holding exactly `1`.
    #[must_use]
    pub fn is_one(self) -> u64 {
        self.ones & !self.unknowns
    }

    /// Lane mask of lanes holding exactly `Z`.
    #[must_use]
    pub fn is_z(self) -> u64 {
        self.ones & self.unknowns
    }

    /// Per-lane merge: lanes where `mask` is set take `self`, the rest
    /// take `other`.
    #[must_use]
    pub fn select(self, other: PackedLogic, mask: u64) -> PackedLogic {
        PackedLogic {
            ones: (self.ones & mask) | (other.ones & !mask),
            unknowns: (self.unknowns & mask) | (other.unknowns & !mask),
        }
    }

    /// Lane-wise NOT; `X`/`Z` lanes yield `X`.
    // Mirrors [`Logic::not`]; see the note there on `ops::Not`.
    #[allow(clippy::should_implement_trait)]
    #[must_use]
    pub fn not(self) -> PackedLogic {
        PackedLogic {
            ones: !self.ones & !self.unknowns,
            unknowns: self.unknowns,
        }
    }

    /// Lane-wise buffer: known values pass, `X`/`Z` yield `X`.
    #[must_use]
    pub fn buf(self) -> PackedLogic {
        PackedLogic {
            ones: self.ones & !self.unknowns,
            unknowns: self.unknowns,
        }
    }

    /// Lane-wise AND with X-pessimism (`0 AND anything = 0`).
    #[must_use]
    pub fn and(self, other: PackedLogic) -> PackedLogic {
        let zero = self.is_zero() | other.is_zero();
        let one = self.is_one() & other.is_one();
        PackedLogic {
            ones: one,
            unknowns: !(zero | one),
        }
    }

    /// Lane-wise OR with X-pessimism (`1 OR anything = 1`).
    #[must_use]
    pub fn or(self, other: PackedLogic) -> PackedLogic {
        let one = self.is_one() | other.is_one();
        let zero = self.is_zero() & other.is_zero();
        PackedLogic {
            ones: one,
            unknowns: !(zero | one),
        }
    }

    /// Lane-wise XOR; any `X`/`Z` input lane yields `X`.
    #[must_use]
    pub fn xor(self, other: PackedLogic) -> PackedLogic {
        let known = self.known() & other.known();
        PackedLogic {
            ones: (self.ones ^ other.ones) & known,
            unknowns: !known,
        }
    }

    /// Lane-wise 2-to-1 mux matching [`Logic::mux`]: `a` when `sel = 0`,
    /// `b` when `sel = 1`; with an unknown select, the common value of
    /// `a` and `b` when they agree and are not `Z`, else `X`.
    #[must_use]
    pub fn mux(a: PackedLogic, b: PackedLogic, sel: PackedLogic) -> PackedLogic {
        let sel0 = sel.is_zero();
        let sel1 = sel.is_one();
        let selu = sel.unknowns;
        // Lanes where a and b encode the identical value, and that value
        // is not Z (X-optimistic agreement).
        let agree = !((a.ones ^ b.ones) | (a.unknowns ^ b.unknowns)) & !a.is_z();
        let ones = (a.ones & sel0) | (b.ones & sel1) | (a.ones & selu & agree);
        let unknowns = (a.unknowns & sel0) | (b.unknowns & sel1) | (selu & (!agree | a.unknowns));
        PackedLogic { ones, unknowns }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL: [Logic; 4] = [Logic::Zero, Logic::One, Logic::X, Logic::Z];

    /// A packed word whose first four lanes hold `v` against each possible
    /// partner value in the other operand.
    fn pairs() -> Vec<(Logic, Logic)> {
        let mut v = Vec::new();
        for a in ALL {
            for b in ALL {
                v.push((a, b));
            }
        }
        v
    }

    #[test]
    fn splat_and_lane_round_trip() {
        for v in ALL {
            let p = PackedLogic::splat(v);
            for lane in [0, 1, 31, 63] {
                assert_eq!(p.lane(lane), v, "splat({v}) lane {lane}");
            }
        }
    }

    #[test]
    fn set_lane_round_trip() {
        let mut p = PackedLogic::ALL_X;
        for (i, v) in ALL.iter().cycle().take(LANES).enumerate() {
            p.set_lane(i, *v);
        }
        for (i, v) in ALL.iter().cycle().take(LANES).enumerate() {
            assert_eq!(p.lane(i), *v);
        }
    }

    #[test]
    fn binary_ops_match_scalar_exhaustively() {
        let cases = pairs();
        let a = PackedLogic::from_lanes(&cases.iter().map(|c| c.0).collect::<Vec<_>>());
        let b = PackedLogic::from_lanes(&cases.iter().map(|c| c.1).collect::<Vec<_>>());
        for (i, (sa, sb)) in cases.iter().enumerate() {
            assert_eq!(a.and(b).lane(i), sa.and(*sb), "and({sa},{sb})");
            assert_eq!(a.or(b).lane(i), sa.or(*sb), "or({sa},{sb})");
            assert_eq!(a.xor(b).lane(i), sa.xor(*sb), "xor({sa},{sb})");
        }
    }

    #[test]
    fn unary_ops_match_scalar_exhaustively() {
        let a = PackedLogic::from_lanes(&ALL);
        for (i, v) in ALL.iter().enumerate() {
            assert_eq!(a.not().lane(i), v.not(), "not({v})");
            let expect_buf = match v {
                Logic::Z => Logic::X,
                x => *x,
            };
            assert_eq!(a.buf().lane(i), expect_buf, "buf({v})");
        }
    }

    #[test]
    fn mux_matches_scalar_exhaustively() {
        for sel in ALL {
            let cases = pairs();
            let a = PackedLogic::from_lanes(&cases.iter().map(|c| c.0).collect::<Vec<_>>());
            let b = PackedLogic::from_lanes(&cases.iter().map(|c| c.1).collect::<Vec<_>>());
            let s = PackedLogic::splat(sel);
            let m = PackedLogic::mux(a, b, s);
            for (i, (sa, sb)) in cases.iter().enumerate() {
                assert_eq!(m.lane(i), Logic::mux(*sa, *sb, sel), "mux({sa},{sb},{sel})");
            }
        }
    }

    #[test]
    fn select_merges_lanes() {
        let a = PackedLogic::splat(Logic::One);
        let b = PackedLogic::splat(Logic::Zero);
        let m = a.select(b, 0b1010);
        assert_eq!(m.lane(0), Logic::Zero);
        assert_eq!(m.lane(1), Logic::One);
        assert_eq!(m.lane(2), Logic::Zero);
        assert_eq!(m.lane(3), Logic::One);
        assert_eq!(m.lane(4), Logic::Zero);
    }

    #[test]
    fn predicates_report_lane_masks() {
        let p = PackedLogic::from_lanes(&ALL);
        assert_eq!(p.is_zero() & 0xF, 0b0001);
        assert_eq!(p.is_one() & 0xF, 0b0010);
        assert_eq!(p.is_z() & 0xF, 0b1000);
        assert_eq!(p.known() & 0xF, 0b0011);
    }
}
