//! Bit-parallel packed 4-value logic: `64 × N` independent simulation
//! lanes per word-group pair.
//!
//! [`PackedLogic`] carries one [`Logic`] value per lane in two bit planes,
//! each plane an `[u64; N]` *lane group* (`N = 1`, the default, is the
//! classic 64-lane kernel; `N = 4` is the 256-lane wide path):
//!
//! | value | `ones` bit | `unknowns` bit |
//! |-------|------------|----------------|
//! | `0`   | 0          | 0              |
//! | `1`   | 1          | 0              |
//! | `X`   | 0          | 1              |
//! | `Z`   | 1          | 1              |
//!
//! Every operation is a handful of word-wide boolean instructions per
//! group — element-wise over the group array, so the compiler can keep
//! the `N = 4` case in vector registers — and is **lane-exact**: for each
//! lane, the packed result equals the scalar [`Logic`] algebra applied to
//! that lane's inputs (a property-tested invariant, see
//! `tests/proptests.rs`, which also pins lane-width invariance across
//! `N = 1/4/8`). This is what lets the engine evaluate `64 × N` patterns
//! — or one good machine plus `64 × N − 1` faulty machines — in a single
//! pass over the compiled netlist.
//!
//! Lane *masks* are plain `[u64; N]` arrays (bit `l % 64` of word
//! `l / 64` is lane `l`), manipulated with the free `mask_*` helpers
//! below so workload code never spells out per-word loops.

use crate::logic::Logic;

/// Number of independent simulation lanes in one `u64` lane group.
pub const LANES: usize = 64;

/// Default lane-group count for the wide batch paths (fault grading,
/// playback, March walks): 4 groups = 256 lanes per pass.
pub const DEFAULT_LANE_GROUPS: usize = 4;

/// A lane mask over `N` lane groups: bit `l % 64` of word `l / 64`
/// covers lane `l`.
pub type LaneMask<const N: usize> = [u64; N];

/// The all-clear mask.
#[must_use]
pub const fn mask_none<const N: usize>() -> LaneMask<N> {
    [0; N]
}

/// The all-set mask.
#[must_use]
pub const fn mask_all<const N: usize>() -> LaneMask<N> {
    [u64::MAX; N]
}

/// Bitwise NOT.
#[inline]
#[must_use]
pub fn mask_not<const N: usize>(a: LaneMask<N>) -> LaneMask<N> {
    let mut out = [0; N];
    for g in 0..N {
        out[g] = !a[g];
    }
    out
}

/// Bitwise AND.
#[inline]
#[must_use]
pub fn mask_and<const N: usize>(a: LaneMask<N>, b: LaneMask<N>) -> LaneMask<N> {
    let mut out = [0; N];
    for g in 0..N {
        out[g] = a[g] & b[g];
    }
    out
}

/// Bitwise OR.
#[inline]
#[must_use]
pub fn mask_or<const N: usize>(a: LaneMask<N>, b: LaneMask<N>) -> LaneMask<N> {
    let mut out = [0; N];
    for g in 0..N {
        out[g] = a[g] | b[g];
    }
    out
}

/// `a & !b` (clears the lanes set in `b`).
#[inline]
#[must_use]
pub fn mask_andnot<const N: usize>(a: LaneMask<N>, b: LaneMask<N>) -> LaneMask<N> {
    let mut out = [0; N];
    for g in 0..N {
        out[g] = a[g] & !b[g];
    }
    out
}

/// Whether any lane is set.
#[inline]
#[must_use]
pub fn mask_any<const N: usize>(a: &LaneMask<N>) -> bool {
    a.iter().any(|&w| w != 0)
}

/// Reads one lane bit.
///
/// # Panics
///
/// Panics if `lane >= 64 * N`.
#[inline]
#[must_use]
pub fn mask_bit<const N: usize>(a: &LaneMask<N>, lane: usize) -> bool {
    a[lane / LANES] >> (lane % LANES) & 1 == 1
}

/// Sets one lane bit.
///
/// # Panics
///
/// Panics if `lane >= 64 * N`.
#[inline]
pub fn mask_set_bit<const N: usize>(a: &mut LaneMask<N>, lane: usize) {
    a[lane / LANES] |= 1u64 << (lane % LANES);
}

/// Mask with lanes `start .. start + len` set.
///
/// # Panics
///
/// Panics if `start + len > 64 * N`.
#[must_use]
pub fn mask_range<const N: usize>(start: usize, len: usize) -> LaneMask<N> {
    assert!(start + len <= LANES * N, "lane range out of bounds");
    let mut out = [0; N];
    for lane in start..start + len {
        mask_set_bit(&mut out, lane);
    }
    out
}

/// Number of set lanes.
#[inline]
#[must_use]
pub fn mask_count<const N: usize>(a: &LaneMask<N>) -> u32 {
    a.iter().map(|w| w.count_ones()).sum()
}

/// Replicates one 64-lane mask word across all `N` groups, so the same
/// per-lane pattern repeats every 64 lanes (see
/// [`crate::engine::Simulator::import_forces_replicated`]).
#[inline]
#[must_use]
pub fn mask_replicate<const N: usize>(word: u64) -> LaneMask<N> {
    [word; N]
}

/// `64 × N` lanes of 4-value logic in two bit planes of `N` lane groups.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PackedLogic<const N: usize = 1> {
    /// Value plane: lane bit set ⇒ the lane's known value is `1` (or the
    /// lane is `Z` when the `unknowns` bit is also set).
    pub ones: [u64; N],
    /// Unknown plane: lane bit set ⇒ the lane holds `X` or `Z`.
    pub unknowns: [u64; N],
}

impl<const N: usize> Default for PackedLogic<N> {
    fn default() -> Self {
        PackedLogic::ALL_X
    }
}

impl<const N: usize> PackedLogic<N> {
    /// Total independent lanes in this width (`64 × N`).
    pub const WIDTH: usize = LANES * N;

    /// All lanes `X` (power-on state).
    pub const ALL_X: PackedLogic<N> = PackedLogic {
        ones: [0; N],
        unknowns: [u64::MAX; N],
    };

    /// All lanes `0`.
    pub const ALL_ZERO: PackedLogic<N> = PackedLogic {
        ones: [0; N],
        unknowns: [0; N],
    };

    /// All lanes `1`.
    pub const ALL_ONE: PackedLogic<N> = PackedLogic {
        ones: [u64::MAX; N],
        unknowns: [0; N],
    };

    /// Broadcasts one scalar value to every lane.
    #[must_use]
    pub fn splat(v: Logic) -> Self {
        match v {
            Logic::Zero => PackedLogic::ALL_ZERO,
            Logic::One => PackedLogic::ALL_ONE,
            Logic::X => PackedLogic::ALL_X,
            Logic::Z => PackedLogic {
                ones: [u64::MAX; N],
                unknowns: [u64::MAX; N],
            },
        }
    }

    /// Packs up to `64 × N` scalar values (missing lanes become `X`).
    #[must_use]
    pub fn from_lanes(values: &[Logic]) -> Self {
        let mut p = PackedLogic::ALL_X;
        for (i, &v) in values.iter().take(Self::WIDTH).enumerate() {
            p.set_lane(i, v);
        }
        p
    }

    /// Replicates one 64-lane word pair across all `N` groups, so lane
    /// `l` of the wide value equals lane `l % 64` of `narrow`.
    #[inline]
    #[must_use]
    pub fn replicate(narrow: PackedLogic<1>) -> Self {
        PackedLogic {
            ones: [narrow.ones[0]; N],
            unknowns: [narrow.unknowns[0]; N],
        }
    }

    /// One 64-lane group of this value (lanes `g * 64 .. g * 64 + 64`).
    ///
    /// # Panics
    ///
    /// Panics if `g >= N`.
    #[inline]
    #[must_use]
    pub fn group(self, g: usize) -> PackedLogic<1> {
        PackedLogic {
            ones: [self.ones[g]],
            unknowns: [self.unknowns[g]],
        }
    }

    /// Reads one lane back as a scalar.
    ///
    /// # Panics
    ///
    /// Panics if `lane >= 64 * N`.
    #[must_use]
    pub fn lane(self, lane: usize) -> Logic {
        assert!(lane < Self::WIDTH, "lane {lane} out of range");
        let (g, b) = (lane / LANES, lane % LANES);
        let one = (self.ones[g] >> b) & 1 == 1;
        let unk = (self.unknowns[g] >> b) & 1 == 1;
        match (one, unk) {
            (false, false) => Logic::Zero,
            (true, false) => Logic::One,
            (false, true) => Logic::X,
            (true, true) => Logic::Z,
        }
    }

    /// Writes one lane.
    ///
    /// # Panics
    ///
    /// Panics if `lane >= 64 * N`.
    pub fn set_lane(&mut self, lane: usize, v: Logic) {
        assert!(lane < Self::WIDTH, "lane {lane} out of range");
        let (g, b) = (lane / LANES, lane % LANES);
        let bit = 1u64 << b;
        let (one, unk) = match v {
            Logic::Zero => (false, false),
            Logic::One => (true, false),
            Logic::X => (false, true),
            Logic::Z => (true, true),
        };
        if one {
            self.ones[g] |= bit;
        } else {
            self.ones[g] &= !bit;
        }
        if unk {
            self.unknowns[g] |= bit;
        } else {
            self.unknowns[g] &= !bit;
        }
    }

    /// Unpacks all `64 × N` lanes.
    #[must_use]
    pub fn to_lanes(self) -> Vec<Logic> {
        (0..Self::WIDTH).map(|i| self.lane(i)).collect()
    }

    /// Lane mask of known (`0`/`1`) values.
    #[inline]
    #[must_use]
    pub fn known(self) -> LaneMask<N> {
        mask_not(self.unknowns)
    }

    /// Lane mask of lanes where `self` and `other` encode different
    /// values.
    #[inline]
    #[must_use]
    pub fn diff(self, other: PackedLogic<N>) -> LaneMask<N> {
        let mut out = [0; N];
        for (g, o) in out.iter_mut().enumerate() {
            *o = (self.ones[g] ^ other.ones[g]) | (self.unknowns[g] ^ other.unknowns[g]);
        }
        out
    }

    /// Lane mask of lanes holding exactly `0`.
    #[inline]
    #[must_use]
    pub fn is_zero(self) -> LaneMask<N> {
        let mut out = [0; N];
        for (g, o) in out.iter_mut().enumerate() {
            *o = !self.ones[g] & !self.unknowns[g];
        }
        out
    }

    /// Lane mask of lanes holding exactly `1`.
    #[inline]
    #[must_use]
    pub fn is_one(self) -> LaneMask<N> {
        let mut out = [0; N];
        for (g, o) in out.iter_mut().enumerate() {
            *o = self.ones[g] & !self.unknowns[g];
        }
        out
    }

    /// Lane mask of lanes holding exactly `Z`.
    #[inline]
    #[must_use]
    pub fn is_z(self) -> LaneMask<N> {
        let mut out = [0; N];
        for (g, o) in out.iter_mut().enumerate() {
            *o = self.ones[g] & self.unknowns[g];
        }
        out
    }

    /// Per-lane merge: lanes where `mask` is set take `self`, the rest
    /// take `other`.
    #[inline]
    #[must_use]
    pub fn select(self, other: PackedLogic<N>, mask: LaneMask<N>) -> PackedLogic<N> {
        let mut out = PackedLogic::ALL_ZERO;
        for (g, &m) in mask.iter().enumerate() {
            out.ones[g] = (self.ones[g] & m) | (other.ones[g] & !m);
            out.unknowns[g] = (self.unknowns[g] & m) | (other.unknowns[g] & !m);
        }
        out
    }

    /// Lane-wise NOT; `X`/`Z` lanes yield `X`.
    // Mirrors [`Logic::not`]; see the note there on `ops::Not`.
    #[allow(clippy::should_implement_trait)]
    #[inline]
    #[must_use]
    pub fn not(self) -> PackedLogic<N> {
        let mut out = PackedLogic::ALL_ZERO;
        for g in 0..N {
            out.ones[g] = !self.ones[g] & !self.unknowns[g];
            out.unknowns[g] = self.unknowns[g];
        }
        out
    }

    /// Lane-wise buffer: known values pass, `X`/`Z` yield `X`.
    #[inline]
    #[must_use]
    pub fn buf(self) -> PackedLogic<N> {
        let mut out = PackedLogic::ALL_ZERO;
        for g in 0..N {
            out.ones[g] = self.ones[g] & !self.unknowns[g];
            out.unknowns[g] = self.unknowns[g];
        }
        out
    }

    /// Lane-wise AND with X-pessimism (`0 AND anything = 0`).
    #[inline]
    #[must_use]
    pub fn and(self, other: PackedLogic<N>) -> PackedLogic<N> {
        let mut out = PackedLogic::ALL_ZERO;
        for g in 0..N {
            let zero = (!self.ones[g] & !self.unknowns[g]) | (!other.ones[g] & !other.unknowns[g]);
            let one = (self.ones[g] & !self.unknowns[g]) & (other.ones[g] & !other.unknowns[g]);
            out.ones[g] = one;
            out.unknowns[g] = !(zero | one);
        }
        out
    }

    /// Lane-wise OR with X-pessimism (`1 OR anything = 1`).
    #[inline]
    #[must_use]
    pub fn or(self, other: PackedLogic<N>) -> PackedLogic<N> {
        let mut out = PackedLogic::ALL_ZERO;
        for g in 0..N {
            let one = (self.ones[g] & !self.unknowns[g]) | (other.ones[g] & !other.unknowns[g]);
            let zero = (!self.ones[g] & !self.unknowns[g]) & (!other.ones[g] & !other.unknowns[g]);
            out.ones[g] = one;
            out.unknowns[g] = !(zero | one);
        }
        out
    }

    /// Lane-wise XOR; any `X`/`Z` input lane yields `X`.
    #[inline]
    #[must_use]
    pub fn xor(self, other: PackedLogic<N>) -> PackedLogic<N> {
        let mut out = PackedLogic::ALL_ZERO;
        for g in 0..N {
            let known = !self.unknowns[g] & !other.unknowns[g];
            out.ones[g] = (self.ones[g] ^ other.ones[g]) & known;
            out.unknowns[g] = !known;
        }
        out
    }

    /// Lane-wise 2-to-1 mux matching [`Logic::mux`]: `a` when `sel = 0`,
    /// `b` when `sel = 1`; with an unknown select, the common value of
    /// `a` and `b` when they agree and are not `Z`, else `X`.
    #[inline]
    #[must_use]
    pub fn mux(a: PackedLogic<N>, b: PackedLogic<N>, sel: PackedLogic<N>) -> PackedLogic<N> {
        let mut out = PackedLogic::ALL_ZERO;
        for g in 0..N {
            let sel0 = !sel.ones[g] & !sel.unknowns[g];
            let sel1 = sel.ones[g] & !sel.unknowns[g];
            let selu = sel.unknowns[g];
            // Lanes where a and b encode the identical value, and that
            // value is not Z (X-optimistic agreement).
            let agree = !((a.ones[g] ^ b.ones[g]) | (a.unknowns[g] ^ b.unknowns[g]))
                & !(a.ones[g] & a.unknowns[g]);
            out.ones[g] = (a.ones[g] & sel0) | (b.ones[g] & sel1) | (a.ones[g] & selu & agree);
            out.unknowns[g] =
                (a.unknowns[g] & sel0) | (b.unknowns[g] & sel1) | (selu & (!agree | a.unknowns[g]));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL: [Logic; 4] = [Logic::Zero, Logic::One, Logic::X, Logic::Z];

    /// A packed word whose first four lanes hold `v` against each possible
    /// partner value in the other operand.
    fn pairs() -> Vec<(Logic, Logic)> {
        let mut v = Vec::new();
        for a in ALL {
            for b in ALL {
                v.push((a, b));
            }
        }
        v
    }

    #[test]
    fn splat_and_lane_round_trip() {
        for v in ALL {
            let p: PackedLogic = PackedLogic::splat(v);
            for lane in [0, 1, 31, 63] {
                assert_eq!(p.lane(lane), v, "splat({v}) lane {lane}");
            }
            let wide: PackedLogic<4> = PackedLogic::splat(v);
            for lane in [0, 63, 64, 128, 255] {
                assert_eq!(wide.lane(lane), v, "wide splat({v}) lane {lane}");
            }
        }
    }

    #[test]
    fn set_lane_round_trip() {
        let mut p: PackedLogic = PackedLogic::ALL_X;
        for (i, v) in ALL.iter().cycle().take(LANES).enumerate() {
            p.set_lane(i, *v);
        }
        for (i, v) in ALL.iter().cycle().take(LANES).enumerate() {
            assert_eq!(p.lane(i), *v);
        }
    }

    #[test]
    fn wide_set_lane_round_trips_across_groups() {
        let mut p: PackedLogic<4> = PackedLogic::ALL_X;
        for (i, v) in ALL.iter().cycle().take(PackedLogic::<4>::WIDTH).enumerate() {
            p.set_lane(i, *v);
        }
        for (i, v) in ALL.iter().cycle().take(PackedLogic::<4>::WIDTH).enumerate() {
            assert_eq!(p.lane(i), *v, "lane {i}");
        }
        assert_eq!(p.to_lanes().len(), 256);
    }

    #[test]
    fn binary_ops_match_scalar_exhaustively() {
        let cases = pairs();
        let a: PackedLogic =
            PackedLogic::from_lanes(&cases.iter().map(|c| c.0).collect::<Vec<_>>());
        let b: PackedLogic =
            PackedLogic::from_lanes(&cases.iter().map(|c| c.1).collect::<Vec<_>>());
        for (i, (sa, sb)) in cases.iter().enumerate() {
            assert_eq!(a.and(b).lane(i), sa.and(*sb), "and({sa},{sb})");
            assert_eq!(a.or(b).lane(i), sa.or(*sb), "or({sa},{sb})");
            assert_eq!(a.xor(b).lane(i), sa.xor(*sb), "xor({sa},{sb})");
        }
    }

    /// Every group of a wide value computes the same algebra as the
    /// narrow kernel fed that group's lanes.
    #[test]
    fn wide_ops_are_groupwise_identical_to_narrow() {
        let cases = pairs();
        let mut a: PackedLogic<4> = PackedLogic::ALL_X;
        let mut b: PackedLogic<4> = PackedLogic::ALL_X;
        for g in 0..4 {
            for (i, (sa, sb)) in cases.iter().enumerate() {
                // Stagger the pattern per group so groups are distinct.
                a.set_lane(g * LANES + i, *sa);
                b.set_lane(g * LANES + (i + g) % cases.len(), *sb);
            }
        }
        for g in 0..4 {
            assert_eq!(a.and(b).group(g), a.group(g).and(b.group(g)), "group {g}");
            assert_eq!(a.or(b).group(g), a.group(g).or(b.group(g)), "group {g}");
            assert_eq!(a.xor(b).group(g), a.group(g).xor(b.group(g)), "group {g}");
            assert_eq!(a.not().group(g), a.group(g).not(), "group {g}");
            assert_eq!(
                PackedLogic::mux(a, b, a).group(g),
                PackedLogic::mux(a.group(g), b.group(g), a.group(g)),
                "group {g}"
            );
        }
    }

    #[test]
    fn unary_ops_match_scalar_exhaustively() {
        let a: PackedLogic = PackedLogic::from_lanes(&ALL);
        for (i, v) in ALL.iter().enumerate() {
            assert_eq!(a.not().lane(i), v.not(), "not({v})");
            let expect_buf = match v {
                Logic::Z => Logic::X,
                x => *x,
            };
            assert_eq!(a.buf().lane(i), expect_buf, "buf({v})");
        }
    }

    #[test]
    fn mux_matches_scalar_exhaustively() {
        for sel in ALL {
            let cases = pairs();
            let a: PackedLogic =
                PackedLogic::from_lanes(&cases.iter().map(|c| c.0).collect::<Vec<_>>());
            let b: PackedLogic =
                PackedLogic::from_lanes(&cases.iter().map(|c| c.1).collect::<Vec<_>>());
            let s: PackedLogic = PackedLogic::splat(sel);
            let m = PackedLogic::mux(a, b, s);
            for (i, (sa, sb)) in cases.iter().enumerate() {
                assert_eq!(m.lane(i), Logic::mux(*sa, *sb, sel), "mux({sa},{sb},{sel})");
            }
        }
    }

    #[test]
    fn select_merges_lanes() {
        let a: PackedLogic = PackedLogic::splat(Logic::One);
        let b: PackedLogic = PackedLogic::splat(Logic::Zero);
        let m = a.select(b, [0b1010]);
        assert_eq!(m.lane(0), Logic::Zero);
        assert_eq!(m.lane(1), Logic::One);
        assert_eq!(m.lane(2), Logic::Zero);
        assert_eq!(m.lane(3), Logic::One);
        assert_eq!(m.lane(4), Logic::Zero);
    }

    #[test]
    fn predicates_report_lane_masks() {
        let p: PackedLogic = PackedLogic::from_lanes(&ALL);
        assert_eq!(p.is_zero()[0] & 0xF, 0b0001);
        assert_eq!(p.is_one()[0] & 0xF, 0b0010);
        assert_eq!(p.is_z()[0] & 0xF, 0b1000);
        assert_eq!(p.known()[0] & 0xF, 0b0011);
    }

    #[test]
    fn replicate_repeats_every_64_lanes() {
        let mut narrow: PackedLogic = PackedLogic::ALL_X;
        narrow.set_lane(3, Logic::One);
        narrow.set_lane(40, Logic::Zero);
        let wide: PackedLogic<4> = PackedLogic::replicate(narrow);
        for lane in 0..PackedLogic::<4>::WIDTH {
            assert_eq!(wide.lane(lane), narrow.lane(lane % LANES), "lane {lane}");
        }
        assert_eq!(mask_replicate::<4>(0b101), [0b101; 4]);
    }

    #[test]
    fn mask_helpers_cover_group_boundaries() {
        let mut m = mask_none::<4>();
        mask_set_bit(&mut m, 0);
        mask_set_bit(&mut m, 63);
        mask_set_bit(&mut m, 64);
        mask_set_bit(&mut m, 255);
        assert!(mask_bit(&m, 0) && mask_bit(&m, 63) && mask_bit(&m, 64) && mask_bit(&m, 255));
        assert!(!mask_bit(&m, 1) && !mask_bit(&m, 65));
        assert_eq!(mask_count(&m), 4);
        assert!(mask_any(&m));
        assert!(!mask_any(&mask_none::<4>()));
        assert_eq!(mask_and(m, mask_not(m)), mask_none::<4>());
        assert_eq!(mask_or(m, mask_not(m)), mask_all::<4>());
        assert_eq!(mask_andnot(m, m), mask_none::<4>());

        let r = mask_range::<4>(1, 255);
        assert!(!mask_bit(&r, 0));
        assert_eq!(mask_count(&r), 255);
        assert_eq!(mask_range::<4>(60, 8), [0xF000_0000_0000_0000, 0xF, 0, 0]);
    }
}
