//! Scan-test drivers: shift/capture sequences over named scan ports.
//!
//! Mirrors what the ATE does when applying the translated scan patterns of
//! the paper's flow: shift in over `si` pins with `se = 1`, pulse the
//! capture clock with `se = 0`, shift out while shifting the next pattern
//! in.

use crate::engine::Simulator;
use crate::logic::Logic;
use crate::SimError;

/// Names of the scan-related ports of a module (one entry per chain).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScanPorts {
    /// Scan-in port per chain.
    pub si: Vec<String>,
    /// Scan-out port per chain.
    pub so: Vec<String>,
    /// Scan-enable port.
    pub se: String,
    /// Shift/capture clock port.
    pub clock: String,
}

impl ScanPorts {
    /// Conventional names produced by
    /// [`steac_netlist::stitch::stitch_scan`] with
    /// [`steac_netlist::StitchConfig::balanced`].
    #[must_use]
    pub fn conventional(chains: usize) -> Self {
        ScanPorts {
            si: (0..chains).map(|i| format!("scan_si[{i}]")).collect(),
            so: (0..chains).map(|i| format!("scan_so[{i}]")).collect(),
            se: "scan_se".to_string(),
            clock: "ck".to_string(),
        }
    }

    /// Number of chains.
    #[must_use]
    pub fn chain_count(&self) -> usize {
        self.si.len()
    }
}

/// Shifts `bits[chain][k]` into the chains (bit 0 first) while recording
/// what comes out of the `so` pins; all chains shift in lockstep for
/// `max(len)` cycles, shorter chains pad with `X`.
///
/// Returns the shifted-out bits per chain (same length as the shift).
///
/// # Errors
///
/// Returns [`SimError::UnknownName`] for bad port names or propagates
/// simulation errors.
pub fn shift(
    sim: &mut Simulator,
    ports: &ScanPorts,
    bits: &[Vec<Logic>],
) -> Result<Vec<Vec<Logic>>, SimError> {
    assert_eq!(bits.len(), ports.chain_count(), "one bit vector per chain");
    let len = bits.iter().map(Vec::len).max().unwrap_or(0);
    let mut out: Vec<Vec<Logic>> = vec![Vec::with_capacity(len); bits.len()];
    sim.set_by_name(&ports.se, Logic::One)?;
    for k in 0..len {
        for (c, chain_bits) in bits.iter().enumerate() {
            let v = chain_bits.get(k).copied().unwrap_or(Logic::X);
            sim.set_by_name(&ports.si[c], v)?;
        }
        // Sample scan-out before the shift pulse: so shows the current
        // last-flop state. Observing records all 64 lanes for PPSFP
        // grading; the returned lane-0 value feeds the scalar result.
        sim.settle()?;
        for (c, o) in out.iter_mut().enumerate() {
            o.push(sim.observe_by_name(&ports.so[c])?);
        }
        sim.clock_cycle_by_name(&ports.clock)?;
    }
    sim.set_by_name(&ports.se, Logic::Zero)?;
    sim.settle()?;
    Ok(out)
}

/// One functional capture cycle (`se = 0`, one clock pulse).
///
/// # Errors
///
/// Propagates name and stability errors.
pub fn capture(sim: &mut Simulator, ports: &ScanPorts) -> Result<(), SimError> {
    sim.set_by_name(&ports.se, Logic::Zero)?;
    sim.settle()?;
    sim.clock_cycle_by_name(&ports.clock)
}

/// Applies one full scan pattern: load `stimulus` (per chain), pulse
/// capture, then unload while loading `next` (or `X` padding when `None`).
/// Returns the unloaded response per chain.
///
/// # Bit ordering
///
/// For a chain of `L` flops (`si → f0 → … → f(L-1) → so`) shifted for `L`
/// cycles, bit `k` of both stimulus and response corresponds to flop
/// `L-1-k`: the first bit shifted in travels to the deepest flop, and the
/// deepest flop's capture value is the first bit shifted out. A pattern
/// shifted in therefore reads back identically if no capture intervenes
/// (FIFO property).
///
/// # Errors
///
/// Propagates name and stability errors.
pub fn load_capture_unload(
    sim: &mut Simulator,
    ports: &ScanPorts,
    stimulus: &[Vec<Logic>],
    next: Option<&[Vec<Logic>]>,
) -> Result<Vec<Vec<Logic>>, SimError> {
    shift(sim, ports, stimulus)?;
    capture(sim, ports)?;
    let pad: Vec<Vec<Logic>> = stimulus.iter().map(|c| vec![Logic::X; c.len()]).collect();
    let unload = shift(sim, ports, next.unwrap_or(&pad))?;
    Ok(unload)
}

#[cfg(test)]
mod tests {
    use super::*;
    use steac_netlist::{stitch_scan, GateKind, NetlistBuilder, StitchConfig};

    /// 4 flops, combinationally connected so capture inverts flop 0 into
    /// flop 1 and so on (a small pipeline).
    fn scan_module() -> steac_netlist::Module {
        let mut b = NetlistBuilder::new("m");
        let ck = b.input("ck");
        let d = b.input("d");
        let mut cur = d;
        for _ in 0..4 {
            let inv = b.gate(GateKind::Inv, &[cur]);
            cur = b.gate(GateKind::Dff, &[inv, ck]);
        }
        b.output("q", cur);
        let mut m = b.finish().unwrap();
        stitch_scan(&mut m, &StitchConfig::balanced(1)).unwrap();
        m
    }

    #[test]
    fn shift_through_whole_chain() {
        let m = scan_module();
        let mut sim: Simulator = Simulator::new(&m).unwrap();
        let mut ports = ScanPorts::conventional(1);
        ports.clock = "ck".to_string();
        sim.set_by_name("d", Logic::Zero).unwrap();
        // Load pattern 1,0,1,0.
        use Logic::{One, Zero};
        let loaded = vec![vec![One, Zero, One, Zero]];
        shift(&mut sim, &ports, &loaded).unwrap();
        // Unload: with 4 more shift cycles, the bits come out in order.
        let out = shift(&mut sim, &ports, &[vec![Zero; 4]]).unwrap();
        // First bit shifted in (One) reached the deepest flop, so it exits
        // first... chain order: si -> f0 -> f1 -> f2 -> f3 -> so. After 4
        // shifts, f3 holds the first-shifted bit.
        assert_eq!(out[0], vec![One, Zero, One, Zero]);
    }

    #[test]
    fn capture_replaces_chain_contents() {
        let m = scan_module();
        let mut sim: Simulator = Simulator::new(&m).unwrap();
        let mut ports = ScanPorts::conventional(1);
        ports.clock = "ck".to_string();
        use Logic::{One, Zero};
        sim.set_by_name("d", Logic::One).unwrap();
        let resp =
            load_capture_unload(&mut sim, &ports, &[vec![Zero, Zero, Zero, Zero]], None).unwrap();
        // Chain loaded with all zeros, PI d=1. Capture: f0 = inv(d) = 0,
        // f1..f3 = inv(previous stage's 0) = 1. Response bit k maps to
        // flop 3-k, so the stream is [f3, f2, f1, f0] = [1, 1, 1, 0].
        assert_eq!(resp[0], vec![One, One, One, Zero]);
    }
}
