//! End-to-end fault-dictionary diagnosis on a seeded zoo instance:
//! build a glue netlist, produce a fault dictionary through the
//! `Exec::from_env` backend, observe the failure signature of one
//! injected fault, and diagnose it back — the true site must land in
//! the top-3 ranked candidates. The CI dictionary leg runs this with
//! `STEAC_MODEL=transition` (and the matrix re-runs it per backend);
//! `STEAC_MODEL=bridging` drives the same loop through the bridging
//! dictionary, and stuck-at (the default, which has no dictionary
//! mode) falls back to the transition dictionary so the test is
//! meaningful under every model setting.

use steac_suite::steac_netlist::NetId;
use steac_suite::steac_sim::models::{bridging, dictionary, transition, ModelKind};
use steac_suite::steac_sim::{Exec, Logic};
use steac_suite::steac_zoo::{glue_netlist, seeded_vectors, ZooParams};

fn glue_case() -> (
    steac_suite::steac_netlist::Module,
    Vec<NetId>,
    Vec<Vec<Logic>>,
) {
    let soc = ZooParams::smoke().soc(1);
    let m = glue_netlist(&soc);
    let pins: Vec<NetId> = m
        .ports_with_dir(steac_suite::steac_netlist::PortDir::Input)
        .map(|p| p.net)
        .collect();
    let vectors = seeded_vectors(soc.seed, pins.len(), 48);
    (m, pins, vectors)
}

/// The first detected dictionary entry whose signature is unique — a
/// deterministic pick, and the uniqueness makes top-3 a meaningful
/// claim rather than a tie-break accident.
fn unique_detected_entry(dict: &dictionary::FaultDictionary) -> usize {
    dict.entries
        .iter()
        .enumerate()
        .position(|(i, e)| {
            e.first_pattern.is_some()
                && dict
                    .entries
                    .iter()
                    .enumerate()
                    .all(|(j, o)| j == i || o.signature != e.signature)
        })
        .expect("some detected fault has a unique signature")
}

#[test]
fn dictionary_diagnosis_ranks_the_injected_fault_top3() {
    let (m, pins, vectors) = glue_case();
    let exec = Exec::from_env();
    let (dict, observed, truth) = match ModelKind::from_env() {
        ModelKind::Bridging => {
            let faults = bridging::enumerate_bridges(&m).expect("glue compiles");
            let dict = bridging::bridging_dictionary(&exec, &m, &faults, &pins, &vectors)
                .expect("dictionary build");
            let truth = unique_detected_entry(&dict);
            // The "silicon" observation: the dictionary's own simulation
            // of the injected bridge.
            let observed = dict.entries[truth].signature.clone();
            (dict, observed, truth)
        }
        ModelKind::StuckAt | ModelKind::Transition => {
            let faults = transition::enumerate_transition_faults(&m);
            let dict = transition::transition_dictionary(&exec, &m, &faults, &pins, &vectors)
                .expect("dictionary build");
            let truth = unique_detected_entry(&dict);
            // The "silicon" observation: an independent scalar
            // simulation of the injected fault, not the dictionary row.
            let observed =
                transition::observed_transition_signature(&m, faults[truth], &pins, &vectors)
                    .expect("observation");
            (dict, observed, truth)
        }
    };
    assert!(dict.detected_count() > 0, "dictionary must detect faults");
    let diagnosis = dictionary::diagnose(&exec, &dict, &observed).expect("diagnose");
    let rank = diagnosis.rank_of(truth).expect("candidate present");
    assert!(
        rank < 3,
        "injected fault ranked #{} (distance {}), top-3 required",
        rank + 1,
        diagnosis.ranked[rank].1
    );
    assert_eq!(
        diagnosis.ranked[rank].1, 0,
        "the injected fault's observation must match its own signature"
    );
    // The dictionary round-trips through its persistent SDCT form.
    let bytes = dictionary::encode_dictionary(&dict);
    let back = dictionary::decode_dictionary(&bytes).expect("SDCT decode");
    assert_eq!(back, dict);
}
