//! Root-level zoo smoke: a small fixed-seed slice of the corpus runs
//! the whole flow — wrap, share, schedule, patterns, grade — through
//! the umbrella crate, with every scheduler invariant checked.

use steac_sim::Exec;
use steac_suite::steac_zoo::{run_corpus, RunOptions, ZooParams};

#[test]
fn zoo_slice_runs_the_full_flow_clean() {
    let params = ZooParams {
        socs: 6,
        max_cores: 32,
        ..ZooParams::smoke()
    };
    let opts = RunOptions {
        grade: true,
        vectors: 32,
        ..RunOptions::default()
    };
    let report = match run_corpus(&params, &Exec::from_env(), &opts) {
        Ok(r) => r,
        Err((index, e)) => panic!("soc{index:03} infeasible: {e}"),
    };
    assert_eq!(report.violations(), 0, "invariant violations:\n{report}");
    for row in &report.rows {
        assert!(row.coverage.expect("graded") > 0.0, "{}", row.name);
        assert!(row.sessions >= 1, "{}", row.name);
    }
}
