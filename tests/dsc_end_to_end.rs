//! End-to-end reproduction: the complete Fig. 1 + Fig. 4 flow on the DSC
//! chip, from generated STIL through scheduling to netlist-level test
//! insertion, checked against every §3 number the paper quotes.

use steac::flow::{run_flow, CoreSource, FlowInput};
use steac::insert::{insert_dft, InsertSpec};
use steac_dsc::{
    build_chip, core_stil, dsc_brains, dsc_chip_config, DSC_CHIP_LOGIC_GE, PAPER_NONSESSION_CYCLES,
    PAPER_SESSION_CYCLES, TABLE1,
};
use steac_stil::to_stil_string;
use steac_tam::{ControlClass, ControlSignal};
use steac_wrapper::{balance_fixed, WrapOptions};

fn usb_controls() -> Vec<ControlSignal> {
    let mut v: Vec<ControlSignal> = (0..4)
        .map(|i| {
            ControlSignal::new(
                "USB",
                &format!("ck{i}"),
                ControlClass::Clock { freq_mhz: 48 },
            )
        })
        .collect();
    v.extend((0..3).map(|i| ControlSignal::new("USB", &format!("rst{i}"), ControlClass::Reset)));
    v.push(ControlSignal::new("USB", "se", ControlClass::ScanEnable));
    v.extend(
        (0..6).map(|i| ControlSignal::new("USB", &format!("test{i}"), ControlClass::TestEnable)),
    );
    v
}

#[test]
fn full_flow_reproduces_the_paper_numbers() {
    let (_, params) = build_chip().expect("chip builds");
    let stil: Vec<String> = params
        .iter()
        .zip(&TABLE1)
        .map(|(p, row)| to_stil_string(&core_stil(row, p)))
        .collect();
    let input = FlowInput {
        cores: vec![
            CoreSource::new("USB", &stil[0])
                .with_powers(1.0, 1.0)
                .with_controls(usb_controls()),
            CoreSource::new("TV", &stil[1]).with_powers(0.3, 1.1),
            CoreSource::new("JPEG", &stil[2]).with_powers(1.0, 1.4),
        ],
        config: dsc_chip_config(),
        bist: Some(dsc_brains()),
        bist_powers: vec![1.3, 0.6],
    };
    let r = run_flow(&input).expect("flow runs");

    // Table 1 through the STIL path.
    for (info, row) in r.infos.iter().zip(&TABLE1) {
        assert_eq!(info.test_inputs, row.ti, "{} TI", row.core);
        assert_eq!(info.test_outputs, row.to, "{} TO", row.core);
        assert_eq!(info.scan_chains, row.scan_chains, "{} chains", row.core);
    }

    // §3 scheduling numbers (within 5%; exact shape: 3 sessions, session
    // beats non-session).
    assert_eq!(r.schedule.sessions.len(), 3);
    let nonsession = r
        .nonsession
        .as_ref()
        .expect("non-session baseline feasible");
    assert!(r.schedule.total_cycles < nonsession.makespan);
    let rel = |a: u64, b: u64| (a as f64 - b as f64).abs() / b as f64;
    assert!(
        rel(r.schedule.total_cycles, PAPER_SESSION_CYCLES) < 0.05,
        "session {} vs paper {}",
        r.schedule.total_cycles,
        PAPER_SESSION_CYCLES
    );
    assert!(
        rel(nonsession.makespan, PAPER_NONSESSION_CYCLES) < 0.05,
        "non-session {} vs paper {}",
        nonsession.makespan,
        PAPER_NONSESSION_CYCLES
    );

    // BIST covers all 22 memories (Fig. 4).
    let bist = r.bist.expect("BIST compiled");
    assert_eq!(bist.per_memory.len(), 22);
}

#[test]
fn insertion_on_the_real_chip_matches_area_figures() {
    let (mut design, params) = build_chip().expect("chip builds");
    let specs = vec![
        InsertSpec {
            core_module: "usb_core".to_string(),
            wrap: WrapOptions {
                clock_port: Some("ck0".to_string()),
                scan_si: params[0].scan_si.clone(),
                scan_so: params[0].scan_so.clone(),
                scan_se: params[0].scan_enable.clone(),
                passthrough_inputs: params[0].clocks[1..]
                    .iter()
                    .chain(&params[0].resets)
                    .chain(&params[0].test_enables)
                    .cloned()
                    .collect(),
                passthrough_outputs: vec![],
            },
            plan: balance_fixed(TABLE1[0].scan_chains, TABLE1[0].pi, TABLE1[0].po, 2),
            sessions_active: vec![1],
            tam_offset: 0,
        },
        InsertSpec {
            core_module: "tv_core".to_string(),
            wrap: WrapOptions {
                clock_port: Some("ck".to_string()),
                scan_si: params[1].scan_si.clone(),
                scan_so: params[1].scan_so.clone(),
                scan_se: params[1].scan_enable.clone(),
                passthrough_inputs: params[1]
                    .resets
                    .iter()
                    .chain(&params[1].test_enables)
                    .cloned()
                    .collect(),
                passthrough_outputs: vec![],
            },
            plan: balance_fixed(TABLE1[1].scan_chains, TABLE1[1].pi, TABLE1[1].po - 1, 3),
            sessions_active: vec![0],
            tam_offset: 2,
        },
        InsertSpec {
            core_module: "jpeg_core".to_string(),
            wrap: WrapOptions {
                clock_port: Some("ck".to_string()),
                ..WrapOptions::default()
            },
            plan: balance_fixed(&[], TABLE1[2].pi, TABLE1[2].po, 2),
            sessions_active: vec![2],
            tam_offset: 5,
        },
    ];
    let report = insert_dft(&mut design, &specs, 3, 16).expect("insertion succeeds");

    // WBR cell = 26 GE exactly; boundary cells = wrapped functional pins:
    // USB 325 + TV (25 + 39) + JPEG 269.
    assert!((report.wbr_cell_ge - 26.0).abs() < f64::EPSILON);
    assert_eq!(report.wbr_cells, 325 + 64 + 269);

    // Controller ~371 gates, TAM mux ~132 gates, overhead ~0.3%.
    assert!((report.controller_ge - 371.0).abs() / 371.0 < 0.12);
    assert!((report.tam_mux_ge - 132.0).abs() / 132.0 < 0.2);
    let overhead = report.overhead_percent(DSC_CHIP_LOGIC_GE);
    assert!(
        (overhead - 0.3).abs() < 0.05,
        "overhead {overhead}% vs paper ~0.3%"
    );

    // The DFT-ready netlist is structurally sound.
    let flat = design.flatten(&report.dft_top).expect("flattens");
    assert!(flat.drivers(None).is_ok());
    // All wrapper flops present: 659 WBR cells + USB internal 2045 +
    // TV internal 1153 + JPEG pipeline + controller/mux state.
    assert!(flat.flop_count() > 659 + 2045 + 1153);
}
