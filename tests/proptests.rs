//! Cross-crate property-based tests (proptest) on the invariants
//! DESIGN.md §6 calls out.

use proptest::prelude::*;
use steac_membist::faultsim::{fault_coverage, random_fault_list};
use steac_membist::{MarchAlgorithm, SramConfig};
use steac_netlist::{stitch_scan, GateKind, NetId, NetlistBuilder, StitchConfig};
use steac_sched::{allocate_session, schedule_sessions, ChipConfig, TestTask};
use steac_sim::{fault, remote, Exec, Logic, PackedLogic, SimProgram, Simulator, Threads, LANES};
use steac_stil::{parse_stil, to_stil_string};
use steac_wrapper::{balance_fixed, balance_soft};

// ---------- wrapper chain balancing ----------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every internal chain and boundary cell lands exactly once, and the
    /// LPT bound holds for the internal partition.
    #[test]
    fn balance_places_everything(
        chains in prop::collection::vec(1usize..2000, 0..8),
        ins in 0usize..300,
        outs in 0usize..300,
        width in 1usize..12,
    ) {
        let plan = balance_fixed(&chains, ins, outs, width);
        prop_assert_eq!(plan.total_internal_cells(), chains.iter().sum::<usize>());
        prop_assert_eq!(plan.total_boundary_cells(), ins + outs);
        let max_load = plan.chains.iter().map(|c| c.internal_cells()).max().unwrap_or(0);
        let total: usize = chains.iter().sum();
        let longest = chains.iter().copied().max().unwrap_or(0);
        prop_assert!(max_load <= total / width + longest);
    }

    /// Soft rebalancing never loses to the fixed partition, and its test
    /// time is monotone non-increasing in width.
    #[test]
    fn soft_beats_fixed_and_is_monotone(
        chains in prop::collection::vec(1usize..1500, 1..6),
        ins in 0usize..200,
        outs in 0usize..200,
        patterns in 1u64..1000,
    ) {
        let total: usize = chains.iter().sum();
        let mut prev = u64::MAX;
        for width in 1..=8usize {
            let fixed = balance_fixed(&chains, ins, outs, width).test_time(patterns);
            let soft = balance_soft(total, ins, outs, width).test_time(patterns);
            prop_assert!(soft <= fixed, "width {}: soft {} > fixed {}", width, soft, fixed);
            prop_assert!(soft <= prev, "soft time increased at width {}", width);
            prev = soft;
        }
    }
}

// ---------- scheduler ----------

fn arb_task(i: usize, kind: u8, patterns: u64, size: usize, power: f64) -> TestTask {
    match kind % 3 {
        0 => TestTask::scan(
            &format!("c{i}"),
            patterns.max(1),
            &[size.max(1), (size / 2).max(1)],
            (size % 50) + 1,
            (size % 40) + 1,
            kind.is_multiple_of(2),
        )
        .with_power(power),
        1 => TestTask::functional(
            &format!("c{i}"),
            patterns.max(1),
            (size % 60) + 8,
            (size % 30) + 8,
        )
        .with_power(power),
        _ => TestTask::bist(&format!("g{i}"), patterns.max(1) * 100).with_power(power),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every task appears exactly once; session invariants hold.
    #[test]
    fn schedule_invariants(
        seeds in prop::collection::vec((0u8..3, 1u64..5000, 1usize..800, 0.2f64..1.0), 1..7)
    ) {
        let tasks: Vec<TestTask> = seeds
            .iter()
            .enumerate()
            .map(|(i, (k, p, s, pw))| arb_task(i, *k, *p, *s, *pw))
            .collect();
        let config = ChipConfig::default();
        let result = schedule_sessions(&tasks, &config);
        prop_assume!(result.is_ok());
        let schedule = result.unwrap();
        let mut seen: Vec<usize> = schedule
            .sessions
            .iter()
            .flat_map(|s| s.tasks.iter().map(|t| t.task_index))
            .collect();
        seen.sort_unstable();
        prop_assert_eq!(seen, (0..tasks.len()).collect::<Vec<_>>());
        for sess in &schedule.sessions {
            prop_assert!(sess.power <= config.power_limit + 1e-9);
            let pins: usize = sess.tasks.iter().map(|t| t.pins).sum();
            prop_assert!(pins <= sess.data_pins_available);
            prop_assert_eq!(
                sess.makespan,
                sess.tasks.iter().map(|t| t.cycles).max().unwrap_or(0)
            );
        }
        let total = schedule
            .sessions
            .iter()
            .fold(0u64, |acc, s| acc.saturating_add(s.makespan));
        prop_assert_eq!(schedule.total_cycles, total);
    }

    /// Water-filling never exceeds the budget and never allocates below a
    /// task's minimum.
    #[test]
    fn allocation_respects_bounds(
        seeds in prop::collection::vec((0u8..3, 1u64..500, 1usize..500, 0.2f64..1.0), 1..6),
        budget in 30usize..300,
    ) {
        let tasks: Vec<TestTask> = seeds
            .iter()
            .enumerate()
            .map(|(i, (k, p, s, pw))| arb_task(i, *k, *p, *s, *pw))
            .collect();
        let refs: Vec<&TestTask> = tasks.iter().collect();
        if let Some(alloc) = allocate_session(&refs, budget) {
            prop_assert!(alloc.total_pins() <= budget);
            for (t, &p) in tasks.iter().zip(&alloc.pins) {
                prop_assert!(p >= t.min_pins());
                prop_assert!(p <= t.max_pins().max(t.min_pins()));
            }
        }
    }
}

// ---------- STIL round trip ----------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// print ∘ parse is the identity on generated scan-structure files.
    #[test]
    fn stil_round_trip(
        chains in prop::collection::vec(1usize..5000, 1..5),
        scan_pats in 1u64..100_000,
        func_pats in 0u64..1_000_000,
    ) {
        let mut src = String::from("STIL 1.0;\nSignals { ck In; se In; d In; q Out;");
        for i in 0..chains.len() {
            src.push_str(&format!(" si{i} In {{ ScanIn; }} so{i} Out {{ ScanOut; }}"));
        }
        src.push_str(" }\nSignalGroups { clocks = 'ck'; scan_enables = 'se'; pi = 'd'; po = 'q'; }\n");
        src.push_str("ScanStructures {\n");
        for (i, len) in chains.iter().enumerate() {
            src.push_str(&format!(
                "  ScanChain \"c{i}\" {{ ScanLength {len}; ScanIn si{i}; ScanOut so{i}; }}\n"
            ));
        }
        src.push_str("}\nProcedures { \"load_unload\" { Shift { V { si0=#; ck=P; } } } }\n");
        src.push_str(&format!("Pattern scan {{ Loop {scan_pats} {{ Call \"load_unload\"; }} }}\n"));
        if func_pats > 0 {
            src.push_str(&format!("Pattern func {{ Loop {func_pats} {{ V {{ d=0; ck=P; }} }} }}\n"));
        }
        let parsed = parse_stil(&src).expect("generated STIL parses");
        let printed = to_stil_string(&parsed);
        let reparsed = parse_stil(&printed).expect("printed STIL parses");
        prop_assert_eq!(&reparsed, &parsed);
        let info = steac_stil::CoreTestInfo::from_stil("gen", &parsed).unwrap();
        prop_assert_eq!(info.scan_chains, chains);
        prop_assert_eq!(info.scan_patterns, scan_pats);
        prop_assert_eq!(info.functional_patterns, func_pats);
    }
}

// ---------- March detection ----------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// March C− detects every randomly generated unlinked standard fault
    /// on random geometries.
    #[test]
    fn march_c_minus_complete_on_random_geometries(
        words in 4usize..128,
        width in 1usize..16,
        seed in 0u64..10_000,
    ) {
        use rand::SeedableRng;
        let cfg = SramConfig::single_port(words, width);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let faults = random_fault_list(&cfg, 8, &mut rng);
        let rep = fault_coverage(&Exec::from_env(), &MarchAlgorithm::march_c_minus(), &cfg, &faults).unwrap();
        prop_assert_eq!(rep.detected, rep.total, "escapes: {:?}", rep.escaped);
    }
}

// ---------- netlist + sim ----------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Scan stitching preserves flop count and keeps chains balanced for
    /// any flop count and chain count.
    #[test]
    fn stitch_preserves_and_balances(flops in 1usize..200, chains in 1usize..9) {
        let mut b = NetlistBuilder::new("m");
        let ck = b.input("ck");
        let d = b.input("d");
        let mut cur = d;
        for _ in 0..flops {
            cur = b.gate(GateKind::Dff, &[cur, ck]);
        }
        b.output("q", cur);
        let mut m = b.finish().unwrap();
        let rep = stitch_scan(&mut m, &StitchConfig::balanced(chains)).unwrap();
        prop_assert_eq!(rep.converted_flops, flops);
        prop_assert_eq!(rep.chain_lengths.iter().sum::<usize>(), flops);
        prop_assert_eq!(m.flop_count(), flops);
        let max = rep.chain_lengths.iter().max().unwrap();
        let min = rep.chain_lengths.iter().min().unwrap();
        prop_assert!(max - min <= 1);
    }

    /// De Morgan holds in the 4-value algebra for all value pairs.
    #[test]
    fn de_morgan_in_four_valued_logic(a in 0u8..4, b in 0u8..4) {
        let lv = |x: u8| match x {
            0 => Logic::Zero,
            1 => Logic::One,
            2 => Logic::X,
            _ => Logic::Z,
        };
        let (a, b) = (lv(a), lv(b));
        prop_assert_eq!(a.and(b).not(), a.not().or(b.not()));
        prop_assert_eq!(a.or(b).not(), a.not().and(b.not()));
    }
}

// ---------- packed/scalar equivalence ----------

fn lv(x: u8) -> Logic {
    match x % 4 {
        0 => Logic::Zero,
        1 => Logic::One,
        2 => Logic::X,
        _ => Logic::Z,
    }
}

/// Builds a small random-but-deterministic module from seed tuples: four
/// data inputs plus a clock, a mix of combinational gates and DFFs (no
/// feedback, so always well-formed), with the last nets as outputs.
fn random_module(seeds: &[(u8, u8, u8, u8)]) -> steac_netlist::Module {
    let mut b = NetlistBuilder::new("rand_mod");
    let ck = b.input("ck");
    let mut pool: Vec<NetId> = (0..4).map(|i| b.input(&format!("in{i}"))).collect();
    for (gi, &(kind, s1, s2, s3)) in seeds.iter().enumerate() {
        let pick = |s: u8| pool[s as usize % pool.len()];
        let (a, c, d) = (pick(s1), pick(s2), pick(s3));
        let out = match kind % 7 {
            0 => b.gate(GateKind::Inv, &[a]),
            1 => b.gate(GateKind::And2, &[a, c]),
            2 => b.gate(GateKind::Or2, &[a, c]),
            3 => b.gate(GateKind::Xor2, &[a, c]),
            4 => b.gate(GateKind::Nand2, &[a, c]),
            5 => b.gate(GateKind::Mux2, &[a, c, d]),
            _ => b.gate(GateKind::Dff, &[a, ck]),
        };
        pool.push(out);
        let _ = gi;
    }
    let outs: Vec<NetId> = pool.iter().rev().take(3).copied().collect();
    for (i, &n) in outs.iter().enumerate() {
        b.output(&format!("out{i}"), n);
    }
    b.finish().expect("random module is structurally valid")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// For random gate inputs, each `PackedLogic` lane op equals the
    /// corresponding scalar `Logic` op — the invariant the whole packed
    /// kernel rests on.
    #[test]
    fn packed_lane_ops_equal_scalar(
        avals in prop::collection::vec(0u8..4, LANES..LANES + 1),
        bvals in prop::collection::vec(0u8..4, LANES..LANES + 1),
        svals in prop::collection::vec(0u8..4, LANES..LANES + 1),
    ) {
        let a_s: Vec<Logic> = avals.iter().map(|&x| lv(x)).collect();
        let b_s: Vec<Logic> = bvals.iter().map(|&x| lv(x)).collect();
        let s_s: Vec<Logic> = svals.iter().map(|&x| lv(x)).collect();
        let a = PackedLogic::<1>::from_lanes(&a_s);
        let b = PackedLogic::<1>::from_lanes(&b_s);
        let s = PackedLogic::<1>::from_lanes(&s_s);
        for lane in 0..LANES {
            let (x, y, z) = (a_s[lane], b_s[lane], s_s[lane]);
            prop_assert_eq!(a.and(b).lane(lane), x.and(y));
            prop_assert_eq!(a.or(b).lane(lane), x.or(y));
            prop_assert_eq!(a.xor(b).lane(lane), x.xor(y));
            prop_assert_eq!(a.not().lane(lane), x.not());
            prop_assert_eq!(
                PackedLogic::mux(a, b, s).lane(lane),
                Logic::mux(x, y, z)
            );
        }
        // Round trip through the planes loses nothing.
        prop_assert_eq!(PackedLogic::from_lanes(&a.to_lanes()), a);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// A random small module's `settle_batch` lanes equal 64 independent
    /// scalar `settle` runs (including a clock pulse through any DFFs).
    #[test]
    fn settle_batch_lanes_equal_scalar_runs(
        seeds in prop::collection::vec((0u8..7, 0u8..32, 0u8..32, 0u8..32), 3..16),
        stim in prop::collection::vec(0u8..4, 4 * LANES..4 * LANES + 1),
    ) {
        let m = random_module(&seeds);
        let pins: Vec<NetId> = (0..4)
            .map(|i| m.port(&format!("in{i}")).unwrap().net)
            .collect();
        let vectors: Vec<Vec<Logic>> = (0..LANES)
            .map(|l| (0..4).map(|i| lv(stim[l * 4 + i])).collect())
            .collect();

        let mut batch: Simulator = Simulator::new(&m).unwrap();
        batch.set_by_name("ck", Logic::Zero).unwrap();
        for (i, &pin) in pins.iter().enumerate() {
            let lanes: Vec<Logic> = vectors.iter().map(|v| v[i]).collect();
            batch.set_lanes(pin, &lanes);
        }
        batch.settle_batch().unwrap();
        batch.clock_cycle_by_name("ck").unwrap();
        for (lane, vector) in vectors.iter().enumerate() {
            let mut scalar: Simulator = Simulator::new(&m).unwrap();
            scalar.set_by_name("ck", Logic::Zero).unwrap();
            for (&pin, &v) in pins.iter().zip(vector) {
                scalar.set(pin, v);
            }
            scalar.settle().unwrap();
            scalar.clock_cycle_by_name("ck").unwrap();
            prop_assert_eq!(
                batch.outputs_lane(lane),
                scalar.outputs(),
                "lane {} diverged from its scalar run",
                lane
            );
        }
    }

    /// PPSFP grading (lane 0 good machine + 63 per-lane fault forces,
    /// with dropping) reports exactly the faults the serial
    /// one-simulation-per-fault reference reports.
    #[test]
    fn ppsfp_grading_equals_serial(
        seeds in prop::collection::vec((0u8..7, 0u8..32, 0u8..32, 0u8..32), 3..14),
        stim in prop::collection::vec(0u8..2, 12..13),
    ) {
        let m = random_module(&seeds);
        let pins: Vec<NetId> = (0..4)
            .map(|i| m.port(&format!("in{i}")).unwrap().net)
            .collect();
        let vectors: Vec<Vec<Logic>> = (0..3)
            .map(|k| (0..4).map(|i| lv(stim[k * 4 + i] % 2)).collect())
            .collect();
        let faults = fault::enumerate_faults(&m);
        let packed = fault::grade_vectors(&Exec::from_env(), &m, &faults, &pins, &vectors).unwrap();
        let serial = fault::fault_coverage_serial(&m, &faults, |sim| {
            let mut obs = Vec::new();
            for vector in &vectors {
                for (&pin, &v) in pins.iter().zip(vector) {
                    sim.set(pin, v);
                }
                sim.settle()?;
                obs.extend(sim.outputs());
            }
            Ok(obs)
        })
        .unwrap();
        prop_assert_eq!(packed.detected, serial.detected);
        prop_assert_eq!(&packed.undetected, &serial.undetected);
    }
}

// ---------- fault models vs scalar oracles ----------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Packed transition/delay grading (launch–capture pairs, lane-0
    /// good machine, conditional stale forces) reports exactly the
    /// faults the one-scalar-simulation-per-fault reference reports, on
    /// random modules — including sequential ones — and random
    /// launch/capture walks.
    #[test]
    fn packed_transition_grading_equals_serial(
        seeds in prop::collection::vec((0u8..7, 0u8..32, 0u8..32, 0u8..32), 3..14),
        stim in prop::collection::vec(0u8..2, 16..17),
    ) {
        use steac_sim::models::transition;
        let m = random_module(&seeds);
        let pins: Vec<NetId> = (0..4)
            .map(|i| m.port(&format!("in{i}")).unwrap().net)
            .collect();
        let vectors: Vec<Vec<Logic>> = (0..4)
            .map(|k| (0..4).map(|i| lv(stim[k * 4 + i] % 2)).collect())
            .collect();
        let faults = transition::enumerate_transition_faults(&m);
        let packed =
            transition::grade_transitions(&Exec::from_env(), &m, &faults, &pins, &vectors)
                .unwrap();
        let serial =
            transition::grade_transitions_serial(&m, &faults, &pins, &vectors).unwrap();
        prop_assert_eq!(packed.detected, serial.detected);
        prop_assert_eq!(&packed.undetected, &serial.undetected);
    }

    /// Packed bridging grading (good-machine wired values, paired
    /// per-lane forces) matches its scalar reference the same way.
    #[test]
    fn packed_bridging_grading_equals_serial(
        seeds in prop::collection::vec((0u8..7, 0u8..32, 0u8..32, 0u8..32), 3..14),
        stim in prop::collection::vec(0u8..2, 12..13),
    ) {
        use steac_sim::models::bridging;
        let m = random_module(&seeds);
        let pins: Vec<NetId> = (0..4)
            .map(|i| m.port(&format!("in{i}")).unwrap().net)
            .collect();
        let vectors: Vec<Vec<Logic>> = (0..3)
            .map(|k| (0..4).map(|i| lv(stim[k * 4 + i] % 2)).collect())
            .collect();
        let faults = bridging::enumerate_bridges(&m).unwrap();
        prop_assume!(!faults.is_empty());
        let packed =
            bridging::grade_bridges(&Exec::from_env(), &m, &faults, &pins, &vectors).unwrap();
        let serial = bridging::grade_bridges_serial(&m, &faults, &pins, &vectors).unwrap();
        prop_assert_eq!(packed.detected, serial.detected);
        prop_assert_eq!(&packed.undetected, &serial.undetected);
    }
}

// ---------- optimizer equivalence ----------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The optimizer pipeline (fold + CSE + DCE + slot renumbering) is
    /// semantics-preserving on arbitrary netlists: an optimized program
    /// with a declared forceable net produces bit-identical outputs to
    /// the unoptimized compile on all 64 lanes — including under active
    /// per-lane forces on that net (the PPSFP fault-injection mechanism)
    /// and through clock cycles.
    #[test]
    fn optimized_program_bit_exact_with_forces(
        seeds in prop::collection::vec((0u8..7, 0u8..32, 0u8..32, 0u8..32), 3..16),
        stim in prop::collection::vec(0u8..4, 4 * LANES..4 * LANES + 1),
        force_pick in 0usize..7,
        force_mask in 1u64..u64::MAX,
        force_val in 0u8..2,
    ) {
        use std::sync::Arc;
        let m = random_module(&seeds);
        let ports: Vec<&str> = vec!["in0", "in1", "in2", "in3", "out0", "out1", "out2"];
        let force_net = m.port(ports[force_pick % ports.len()]).unwrap().net;
        let cfg = steac_sim::OptConfig::with_forceable(vec![force_net]);
        let opt = SimProgram::compile_with(&m, &cfg).unwrap();
        let raw = SimProgram::compile_unoptimized(&m).unwrap();
        prop_assert!(opt.opt.enabled && opt.opt.scheduled);

        let pins: Vec<NetId> = (0..4)
            .map(|i| m.port(&format!("in{i}")).unwrap().net)
            .collect();
        let run = |program: Arc<SimProgram>| -> Result<Vec<Vec<Logic>>, steac_sim::SimError> {
            let mut sim: Simulator = Simulator::from_program(program);
            sim.set_by_name("ck", Logic::Zero)?;
            for (i, &pin) in pins.iter().enumerate() {
                let lanes: Vec<Logic> =
                    (0..LANES).map(|l| lv(stim[l * 4 + i])).collect();
                sim.set_lanes(pin, &lanes);
            }
            for lane in 0..LANES {
                if force_mask >> lane & 1 == 1 {
                    sim.force_lane(force_net, lane, lv(force_val));
                }
            }
            sim.settle_batch()?;
            let settled: Vec<Vec<Logic>> =
                (0..LANES).map(|l| sim.outputs_lane(l)).collect();
            sim.clock_cycle_by_name("ck")?;
            let clocked: Vec<Vec<Logic>> =
                (0..LANES).map(|l| sim.outputs_lane(l)).collect();
            Ok(settled.into_iter().chain(clocked).collect())
        };
        prop_assert_eq!(run(Arc::new(opt)).unwrap(), run(Arc::new(raw)).unwrap());
    }
}

// ---------- lane-width invariance ----------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// PPSFP grading reports are byte-identical at every supported
    /// lane-group width — 64, 128, 256 and 512 lanes per pass — on
    /// random modules and full fault lists (width only changes how the
    /// fault list is cut into passes).
    #[test]
    fn grading_is_lane_width_invariant(
        seeds in prop::collection::vec((0u8..7, 0u8..32, 0u8..32, 0u8..32), 3..14),
        stim in prop::collection::vec(0u8..2, 12..13),
    ) {
        let m = random_module(&seeds);
        let pins: Vec<NetId> = (0..4)
            .map(|i| m.port(&format!("in{i}")).unwrap().net)
            .collect();
        let vectors: Vec<Vec<Logic>> = (0..3)
            .map(|k| (0..4).map(|i| lv(stim[k * 4 + i] % 2)).collect())
            .collect();
        let faults = fault::enumerate_faults(&m);
        let exec = Exec::serial();
        let baseline =
            fault::grade_vectors_wide(&exec, &m, &faults, &pins, &vectors, 1).unwrap();
        for groups in [2usize, 4, 8] {
            let wide =
                fault::grade_vectors_wide(&exec, &m, &faults, &pins, &vectors, groups)
                    .unwrap();
            prop_assert_eq!(&wide, &baseline, "{} lane groups", groups);
        }
        let unsupported = matches!(
            fault::grade_vectors_wide(&exec, &m, &faults, &pins, &vectors, 3),
            Err(steac_sim::SimError::UnsupportedWidth { groups: 3 })
        );
        prop_assert!(unsupported, "3 lane groups must be a typed error");
    }

    /// Batched playback reports are byte-identical at every supported
    /// lane-group width, including failing expectations.
    #[test]
    fn playback_is_lane_width_invariant(
        seeds in prop::collection::vec((0u8..7, 0u8..32, 0u8..32, 0u8..32), 3..10),
        data in prop::collection::vec(0u8..4, 150 * 4..150 * 4 + 1),
    ) {
        let m = random_module(&seeds);
        let pins: Vec<String> = (0..4)
            .map(|i| format!("in{i}"))
            .chain(std::iter::once("ck".to_string()))
            .chain(std::iter::once("out0".to_string()))
            .collect();
        let patterns: Vec<steac_pattern::CyclePattern> = (0..150)
            .map(|k| {
                let mut p = steac_pattern::CyclePattern::new(pins.clone());
                let mut row: Vec<steac_pattern::PinState> = (0..4)
                    .map(|i| steac_pattern::PinState::from_drive(lv(data[k * 4 + i] % 2)))
                    .collect();
                row.push(steac_pattern::PinState::Pulse);
                row.push(if data[k * 4].is_multiple_of(2) {
                    steac_pattern::PinState::ExpectL
                } else {
                    steac_pattern::PinState::ExpectH
                });
                p.push_cycle(row).unwrap();
                p
            })
            .collect();
        let refs: Vec<&steac_pattern::CyclePattern> = patterns.iter().collect();
        let sim: Simulator = Simulator::new(&m).unwrap();
        let exec = Exec::serial();
        let baseline =
            steac_pattern::apply_cycle_patterns_batch_wide(&exec, &sim, &refs, 1).unwrap();
        for groups in [2usize, 4, 8] {
            let wide =
                steac_pattern::apply_cycle_patterns_batch_wide(&exec, &sim, &refs, groups)
                    .unwrap();
            prop_assert_eq!(&wide, &baseline, "{} lane groups", groups);
        }
    }

    /// March memory-fault grading is byte-identical at every supported
    /// lane-group width.
    #[test]
    fn march_grading_is_lane_width_invariant(
        seed in 0u64..1000,
        per_class in 8usize..20,
    ) {
        use rand::SeedableRng;
        let cfg = SramConfig::single_port(32, 4);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let faults = random_fault_list(&cfg, per_class, &mut rng);
        let alg = MarchAlgorithm::mats_plus();
        let exec = Exec::serial();
        let baseline =
            steac_membist::fault_coverage_wide(&exec, &alg, &cfg, &faults, 1).unwrap();
        for groups in [2usize, 4, 8] {
            let wide =
                steac_membist::fault_coverage_wide(&exec, &alg, &cfg, &faults, groups)
                    .unwrap();
            prop_assert_eq!(&wide, &baseline, "{} lane groups", groups);
        }
    }
}

// ---------- wire round trip ----------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// encode → decode is the identity on compiled programs — ports,
    /// instructions and sequential side tables all survive the wire —
    /// over arbitrary generated netlists; and every strict prefix of the
    /// encoding fails with a typed error instead of panicking (explicit
    /// counts plus the trailing-bytes check make partial decodes
    /// impossible).
    #[test]
    fn sim_program_wire_round_trip(
        seeds in prop::collection::vec((0u8..7, 0u8..32, 0u8..32, 0u8..32), 1..24),
        old_version in 0u16..steac_sim::wire::WIRE_VERSION,
    ) {
        let m = random_module(&seeds);
        let p = steac_sim::SimProgram::compile(&m).unwrap();
        let bytes = steac_sim::wire::encode_program(&p);
        let back = steac_sim::wire::decode_program(&bytes).unwrap();
        prop_assert_eq!(&back, &p);
        prop_assert_eq!(back.port("in0").map(|port| port.net), p.port("in0").map(|port| port.net));
        for cut in 0..bytes.len() {
            prop_assert!(steac_sim::wire::decode_program(&bytes[..cut]).is_err(), "prefix {}", cut);
        }
        // Every older format version is rejected with the typed error —
        // v2 streams carry slot tables and optimizer records a v1 reader
        // would misparse, so there is no silent downgrade path.
        let mut stale = bytes.clone();
        stale[4..6].copy_from_slice(&old_version.to_le_bytes());
        let rejected = matches!(
            steac_sim::wire::decode_program(&stale),
            Err(steac_sim::WireError::UnsupportedVersion { found, .. }) if found == old_version
        );
        prop_assert!(rejected, "version {} must be rejected", old_version);
    }
}

// ---------- sharded / single-thread bit-exactness ----------

/// 130 playback patterns (3 chunks) for a `random_module`: drive
/// in0..3, pulse ck and expect fixed values on out0 — some expectations
/// fail, and the failure logs must merge identically at every width and
/// at every chunking.
fn expect_playback_patterns(data: &[u8]) -> Vec<steac_pattern::CyclePattern> {
    let pins: Vec<String> = (0..4)
        .map(|i| format!("in{i}"))
        .chain(std::iter::once("ck".to_string()))
        .chain(std::iter::once("out0".to_string()))
        .collect();
    (0..130)
        .map(|k| {
            let mut p = steac_pattern::CyclePattern::new(pins.clone());
            let mut row: Vec<steac_pattern::PinState> = (0..4)
                .map(|i| steac_pattern::PinState::from_drive(lv(data[k * 4 + i] % 2)))
                .collect();
            row.push(steac_pattern::PinState::Pulse);
            row.push(if data[k * 4].is_multiple_of(2) {
                steac_pattern::PinState::ExpectL
            } else {
                steac_pattern::PinState::ExpectH
            });
            p.push_cycle(row).unwrap();
            p
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Sharded PPSFP grading is bit-exact against the single-threaded
    /// packed loop — detected counts AND the order of `undetected` — for
    /// random modules and full fault lists at every thread count 1..8.
    #[test]
    fn sharded_grading_bit_exact_at_every_thread_count(
        seeds in prop::collection::vec((0u8..7, 0u8..32, 0u8..32, 0u8..32), 3..14),
        stim in prop::collection::vec(0u8..2, 12..13),
    ) {
        let m = random_module(&seeds);
        let pins: Vec<NetId> = (0..4)
            .map(|i| m.port(&format!("in{i}")).unwrap().net)
            .collect();
        let vectors: Vec<Vec<Logic>> = (0..3)
            .map(|k| (0..4).map(|i| lv(stim[k * 4 + i] % 2)).collect())
            .collect();
        let faults = fault::enumerate_faults(&m);
        let baseline =
            fault::grade_vectors(&Exec::serial(), &m, &faults, &pins, &vectors).unwrap();
        for t in 1..=8 {
            let exec = Exec::threads(Threads::exact(t));
            let sharded =
                fault::grade_vectors(&exec, &m, &faults, &pins, &vectors).unwrap();
            prop_assert_eq!(&sharded, &baseline, "{} threads", t);
        }
    }

    /// Sharded batched playback produces byte-identical `MismatchReport`s
    /// (compare counts, mismatch tuples, order) at every thread count
    /// 1..8, including deliberately failing expectations.
    #[test]
    fn sharded_playback_bit_exact_at_every_thread_count(
        seeds in prop::collection::vec((0u8..7, 0u8..32, 0u8..32, 0u8..32), 3..12),
        data in prop::collection::vec(0u8..4, 130 * 4..130 * 4 + 1),
    ) {
        let m = random_module(&seeds);
        // Three output ports out0..2 exist on every random module.
        let patterns = expect_playback_patterns(&data);
        let refs: Vec<&steac_pattern::CyclePattern> = patterns.iter().collect();
        let sim: Simulator = Simulator::new(&m).unwrap();
        let baseline =
            steac_pattern::apply_cycle_patterns_batch(&Exec::serial(), &sim, &refs)
                .unwrap();
        for t in 1..=8 {
            let exec = Exec::threads(Threads::exact(t));
            let sharded =
                steac_pattern::apply_cycle_patterns_batch(&exec, &sim, &refs)
                    .unwrap();
            prop_assert_eq!(&sharded, &baseline, "{} threads", t);
        }
    }

    /// Streaming playback at an **arbitrary** chunk size produces
    /// byte-identical `MismatchReport`s — content AND order — to the
    /// materialized batch player: a chunk boundary can never move, add,
    /// drop or reorder a mismatch-log entry or an escape, at any thread
    /// count.
    #[test]
    fn streaming_chunk_boundaries_never_change_report_order(
        seeds in prop::collection::vec((0u8..7, 0u8..32, 0u8..32, 0u8..32), 3..12),
        data in prop::collection::vec(0u8..4, 130 * 4..130 * 4 + 1),
        chunk in 1usize..300,
        threads in 1usize..5,
    ) {
        let m = random_module(&seeds);
        let patterns = expect_playback_patterns(&data);
        let refs: Vec<&steac_pattern::CyclePattern> = patterns.iter().collect();
        let sim: Simulator = Simulator::new(&m).unwrap();
        let baseline =
            steac_pattern::apply_cycle_patterns_batch(&Exec::serial(), &sim, &refs)
                .unwrap();
        let exec = Exec::threads(Threads::exact(threads));
        let mut streamed = Vec::new();
        let run = steac_pattern::stream_cycle_patterns_wide(
            &exec,
            &sim,
            patterns.iter().cloned(),
            steac_pattern::PLAYBACK_LANE_GROUPS,
            chunk,
            |r| streamed.push(r),
        ).unwrap();
        prop_assert_eq!(run.patterns, patterns.len());
        prop_assert_eq!(
            &streamed, &baseline.reports,
            "chunk {} on {} threads", chunk, threads
        );
    }

    /// Sharded March fault grading matches the single-threaded walk —
    /// coverage AND escape order — at every thread count 1..8.
    #[test]
    fn sharded_march_bit_exact_at_every_thread_count(
        seed in 0u64..1000,
        per_class in 8usize..24,
    ) {
        use rand::SeedableRng;
        let cfg = SramConfig::single_port(32, 4);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let faults =
            steac_membist::faultsim::random_fault_list(&cfg, per_class, &mut rng);
        let alg = MarchAlgorithm::mats_plus();
        let baseline = steac_membist::faultsim::fault_coverage(
            &Exec::serial(), &alg, &cfg, &faults).unwrap();
        for t in 1..=8 {
            let exec = Exec::threads(Threads::exact(t));
            let sharded = steac_membist::faultsim::fault_coverage(
                &exec, &alg, &cfg, &faults).unwrap();
            prop_assert_eq!(&sharded, &baseline, "{} threads", t);
        }
    }
}

// ---------- remote envelope codec ----------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// encode→decode is the identity over arbitrary ids and payloads —
    /// for the strict buffer codec and the streaming reader alike — and
    /// every strict prefix of a frame fails with a typed error,
    /// mirroring the `wire.rs` truncation sweeps at the transport
    /// layer.
    #[test]
    fn envelope_round_trips_and_rejects_every_prefix(
        request_id in 0u64..u64::MAX,
        payload in prop::collection::vec(0u8..=255u8, 0..1500),
    ) {
        let framed = remote::encode_envelope(request_id, &payload);
        prop_assert_eq!(
            remote::decode_envelope(&framed).unwrap(),
            (request_id, payload.clone())
        );
        let mut cursor = &framed[..];
        prop_assert_eq!(
            remote::read_envelope(&mut cursor).unwrap(),
            (request_id, payload)
        );
        for cut in 0..framed.len() {
            prop_assert!(
                remote::decode_envelope(&framed[..cut]).is_err(),
                "prefix {} must not decode", cut
            );
            let mut cursor = &framed[..cut];
            prop_assert!(
                remote::read_envelope(&mut cursor).is_err(),
                "stream prefix {} must not read", cut
            );
        }
    }

    /// Every single-byte corruption of the magic, version, or length
    /// fields is a typed error from the strict codec. The request-id
    /// bytes (6..14) are payload-like: a flip there decodes cleanly but
    /// under a *different* id — which the session's response router
    /// drops on the floor (no caller is pending under it), so it still
    /// cannot corrupt an exchange. The streaming reader never panics
    /// and never reads a damaged frame back as the clean payload under
    /// the clean id.
    #[test]
    fn envelope_header_corruption_is_always_detected(
        request_id in 0u64..u64::MAX,
        payload in prop::collection::vec(0u8..=255u8, 0..300),
        pos in 0usize..22,
        flip in 1u8..=255u8,
    ) {
        let mut framed = remote::encode_envelope(request_id, &payload);
        framed[pos] ^= flip;
        let id_field = (6..14).contains(&pos);
        match remote::decode_envelope(&framed) {
            Ok((id, body)) => {
                prop_assert!(id_field, "byte {} flip {:#04x} must not decode", pos, flip);
                prop_assert_ne!(id, request_id);
                prop_assert_eq!(body, payload.clone());
            }
            Err(_) => prop_assert!(!id_field, "id flips decode under a new id"),
        }
        let mut cursor = &framed[..];
        match remote::read_envelope(&mut cursor) {
            Err(_) => {}
            Ok((id, recovered)) => prop_assert!(
                id != request_id || recovered != payload,
                "corrupt frame must not stream back clean (byte {}, flip {:#04x})", pos, flip
            ),
        }
    }

    /// Flipping any single byte anywhere in a frame never panics either
    /// codec; payload flips decode to exactly the altered payload.
    #[test]
    fn envelope_corruption_never_panics(
        request_id in 0u64..u64::MAX,
        payload in prop::collection::vec(0u8..=255u8, 1..200),
        pos in 0usize..2048,
        flip in 1u8..=255u8,
    ) {
        let mut framed = remote::encode_envelope(request_id, &payload);
        let pos = pos % framed.len();
        framed[pos] ^= flip;
        let strict = remote::decode_envelope(&framed);
        if pos >= remote::ENVELOPE_HEADER_LEN {
            let mut expected = payload.clone();
            expected[pos - remote::ENVELOPE_HEADER_LEN] ^= flip;
            prop_assert_eq!(strict.unwrap(), (request_id, expected));
        } else if (6..14).contains(&pos) {
            let (id, body) = strict.unwrap();
            prop_assert_ne!(id, request_id);
            prop_assert_eq!(body, payload.clone());
        } else {
            prop_assert!(strict.is_err());
        }
        let mut cursor = &framed[..];
        let _ = remote::read_envelope(&mut cursor);
    }
}
