//! Cross-crate property-based tests (proptest) on the invariants
//! DESIGN.md §6 calls out.

use proptest::prelude::*;
use steac_membist::faultsim::{fault_coverage, random_fault_list};
use steac_membist::{MarchAlgorithm, SramConfig};
use steac_netlist::{stitch_scan, GateKind, NetlistBuilder, StitchConfig};
use steac_sched::{allocate_session, schedule_sessions, ChipConfig, TestTask};
use steac_sim::Logic;
use steac_stil::{parse_stil, to_stil_string};
use steac_wrapper::{balance_fixed, balance_soft};

// ---------- wrapper chain balancing ----------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every internal chain and boundary cell lands exactly once, and the
    /// LPT bound holds for the internal partition.
    #[test]
    fn balance_places_everything(
        chains in prop::collection::vec(1usize..2000, 0..8),
        ins in 0usize..300,
        outs in 0usize..300,
        width in 1usize..12,
    ) {
        let plan = balance_fixed(&chains, ins, outs, width);
        prop_assert_eq!(plan.total_internal_cells(), chains.iter().sum::<usize>());
        prop_assert_eq!(plan.total_boundary_cells(), ins + outs);
        let max_load = plan.chains.iter().map(|c| c.internal_cells()).max().unwrap_or(0);
        let total: usize = chains.iter().sum();
        let longest = chains.iter().copied().max().unwrap_or(0);
        prop_assert!(max_load <= total / width + longest);
    }

    /// Soft rebalancing never loses to the fixed partition, and its test
    /// time is monotone non-increasing in width.
    #[test]
    fn soft_beats_fixed_and_is_monotone(
        chains in prop::collection::vec(1usize..1500, 1..6),
        ins in 0usize..200,
        outs in 0usize..200,
        patterns in 1u64..1000,
    ) {
        let total: usize = chains.iter().sum();
        let mut prev = u64::MAX;
        for width in 1..=8usize {
            let fixed = balance_fixed(&chains, ins, outs, width).test_time(patterns);
            let soft = balance_soft(total, ins, outs, width).test_time(patterns);
            prop_assert!(soft <= fixed, "width {}: soft {} > fixed {}", width, soft, fixed);
            prop_assert!(soft <= prev, "soft time increased at width {}", width);
            prev = soft;
        }
    }
}

// ---------- scheduler ----------

fn arb_task(i: usize, kind: u8, patterns: u64, size: usize, power: f64) -> TestTask {
    match kind % 3 {
        0 => TestTask::scan(
            &format!("c{i}"),
            patterns.max(1),
            &[size.max(1), (size / 2).max(1)],
            (size % 50) + 1,
            (size % 40) + 1,
            kind % 2 == 0,
        )
        .with_power(power),
        1 => TestTask::functional(
            &format!("c{i}"),
            patterns.max(1),
            (size % 60) + 8,
            (size % 30) + 8,
        )
        .with_power(power),
        _ => TestTask::bist(&format!("g{i}"), patterns.max(1) * 100).with_power(power),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every task appears exactly once; session invariants hold.
    #[test]
    fn schedule_invariants(
        seeds in prop::collection::vec((0u8..3, 1u64..5000, 1usize..800, 0.2f64..1.0), 1..7)
    ) {
        let tasks: Vec<TestTask> = seeds
            .iter()
            .enumerate()
            .map(|(i, (k, p, s, pw))| arb_task(i, *k, *p, *s, *pw))
            .collect();
        let config = ChipConfig::default();
        let schedule = schedule_sessions(&tasks, &config);
        prop_assume!(schedule.total_cycles != u64::MAX);
        let mut seen: Vec<usize> = schedule
            .sessions
            .iter()
            .flat_map(|s| s.tasks.iter().map(|t| t.task_index))
            .collect();
        seen.sort_unstable();
        prop_assert_eq!(seen, (0..tasks.len()).collect::<Vec<_>>());
        for sess in &schedule.sessions {
            prop_assert!(sess.power <= config.power_limit + 1e-9);
            let pins: usize = sess.tasks.iter().map(|t| t.pins).sum();
            prop_assert!(pins <= sess.data_pins_available);
            prop_assert_eq!(
                sess.makespan,
                sess.tasks.iter().map(|t| t.cycles).max().unwrap_or(0)
            );
        }
        let total: u64 = schedule.sessions.iter().map(|s| s.makespan).sum();
        prop_assert_eq!(schedule.total_cycles, total);
    }

    /// Water-filling never exceeds the budget and never allocates below a
    /// task's minimum.
    #[test]
    fn allocation_respects_bounds(
        seeds in prop::collection::vec((0u8..3, 1u64..500, 1usize..500, 0.2f64..1.0), 1..6),
        budget in 30usize..300,
    ) {
        let tasks: Vec<TestTask> = seeds
            .iter()
            .enumerate()
            .map(|(i, (k, p, s, pw))| arb_task(i, *k, *p, *s, *pw))
            .collect();
        let refs: Vec<&TestTask> = tasks.iter().collect();
        if let Some(alloc) = allocate_session(&refs, budget) {
            prop_assert!(alloc.total_pins() <= budget);
            for (t, &p) in tasks.iter().zip(&alloc.pins) {
                prop_assert!(p >= t.min_pins());
                prop_assert!(p <= t.max_pins().max(t.min_pins()));
            }
        }
    }
}

// ---------- STIL round trip ----------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// print ∘ parse is the identity on generated scan-structure files.
    #[test]
    fn stil_round_trip(
        chains in prop::collection::vec(1usize..5000, 1..5),
        scan_pats in 1u64..100_000,
        func_pats in 0u64..1_000_000,
    ) {
        let mut src = String::from("STIL 1.0;\nSignals { ck In; se In; d In; q Out;");
        for i in 0..chains.len() {
            src.push_str(&format!(" si{i} In {{ ScanIn; }} so{i} Out {{ ScanOut; }}"));
        }
        src.push_str(" }\nSignalGroups { clocks = 'ck'; scan_enables = 'se'; pi = 'd'; po = 'q'; }\n");
        src.push_str("ScanStructures {\n");
        for (i, len) in chains.iter().enumerate() {
            src.push_str(&format!(
                "  ScanChain \"c{i}\" {{ ScanLength {len}; ScanIn si{i}; ScanOut so{i}; }}\n"
            ));
        }
        src.push_str("}\nProcedures { \"load_unload\" { Shift { V { si0=#; ck=P; } } } }\n");
        src.push_str(&format!("Pattern scan {{ Loop {scan_pats} {{ Call \"load_unload\"; }} }}\n"));
        if func_pats > 0 {
            src.push_str(&format!("Pattern func {{ Loop {func_pats} {{ V {{ d=0; ck=P; }} }} }}\n"));
        }
        let parsed = parse_stil(&src).expect("generated STIL parses");
        let printed = to_stil_string(&parsed);
        let reparsed = parse_stil(&printed).expect("printed STIL parses");
        prop_assert_eq!(&reparsed, &parsed);
        let info = steac_stil::CoreTestInfo::from_stil("gen", &parsed).unwrap();
        prop_assert_eq!(info.scan_chains, chains);
        prop_assert_eq!(info.scan_patterns, scan_pats);
        prop_assert_eq!(info.functional_patterns, func_pats);
    }
}

// ---------- March detection ----------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// March C− detects every randomly generated unlinked standard fault
    /// on random geometries.
    #[test]
    fn march_c_minus_complete_on_random_geometries(
        words in 4usize..128,
        width in 1usize..16,
        seed in 0u64..10_000,
    ) {
        use rand::SeedableRng;
        let cfg = SramConfig::single_port(words, width);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let faults = random_fault_list(&cfg, 8, &mut rng);
        let rep = fault_coverage(&MarchAlgorithm::march_c_minus(), &cfg, &faults);
        prop_assert_eq!(rep.detected, rep.total, "escapes: {:?}", rep.escaped);
    }
}

// ---------- netlist + sim ----------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Scan stitching preserves flop count and keeps chains balanced for
    /// any flop count and chain count.
    #[test]
    fn stitch_preserves_and_balances(flops in 1usize..200, chains in 1usize..9) {
        let mut b = NetlistBuilder::new("m");
        let ck = b.input("ck");
        let d = b.input("d");
        let mut cur = d;
        for _ in 0..flops {
            cur = b.gate(GateKind::Dff, &[cur, ck]);
        }
        b.output("q", cur);
        let mut m = b.finish().unwrap();
        let rep = stitch_scan(&mut m, &StitchConfig::balanced(chains)).unwrap();
        prop_assert_eq!(rep.converted_flops, flops);
        prop_assert_eq!(rep.chain_lengths.iter().sum::<usize>(), flops);
        prop_assert_eq!(m.flop_count(), flops);
        let max = rep.chain_lengths.iter().max().unwrap();
        let min = rep.chain_lengths.iter().min().unwrap();
        prop_assert!(max - min <= 1);
    }

    /// De Morgan holds in the 4-value algebra for all value pairs.
    #[test]
    fn de_morgan_in_four_valued_logic(a in 0u8..4, b in 0u8..4) {
        let lv = |x: u8| match x {
            0 => Logic::Zero,
            1 => Logic::One,
            2 => Logic::X,
            _ => Logic::Z,
        };
        let (a, b) = (lv(a), lv(b));
        prop_assert_eq!(a.and(b).not(), a.not().or(b.not()));
        prop_assert_eq!(a.or(b).not(), a.not().and(b.not()));
    }
}
