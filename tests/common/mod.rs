//! Shared helpers for the integration-test batteries: spawning real
//! `steac-worker --serve` listeners on ephemeral localhost ports (the
//! scrape-and-teardown logic lives in `steac_sim::remote`).

#![allow(dead_code)] // each test binary uses its own subset

use std::path::PathBuf;
use steac_sim::remote::{spawn_serve_process, ServeHandle};

/// The worker binary built alongside this test suite.
pub fn worker_binary() -> PathBuf {
    PathBuf::from(env!("CARGO_BIN_EXE_steac-worker"))
}

/// Starts one TCP-serving worker on `127.0.0.1:0`.
///
/// # Panics
///
/// If the worker cannot be spawned or does not announce its address —
/// the test environment is broken and the test should fail loudly.
pub fn spawn_serve_worker() -> ServeHandle {
    spawn_serve_process(&worker_binary()).expect("starting steac-worker --serve")
}

/// Starts `n` TCP-serving workers.
pub fn spawn_serve_workers(n: usize) -> Vec<ServeHandle> {
    (0..n).map(|_| spawn_serve_worker()).collect()
}
