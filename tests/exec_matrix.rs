//! The exec-matrix battery: one table spanning all **five** execution
//! backends — `Serial`, `Threads(1/4)`, `Processes(1/2/3)`,
//! `Remote(SpawnTransport)` and `Remote(TcpTransport@localhost)` —
//! driven through the **same** unified entry points for every workload
//! (gate-level vector grading under the stuck-at, transition and
//! bridging fault models, dictionary building and diagnosis, batched
//! ATE playback, March fault simulation including inter-cell
//! couplings, JPEG playback), asserting the reports are
//! **byte-identical** to the serial baseline: counts, escape lists and
//! mismatch logs *including their order*. This is the determinism
//! contract behind `steac_sim::Exec::dispatch` — and behind
//! `Exec::dispatch_stream`, whose differential leg proves streaming
//! playback byte-identical to the materialized flow at every chunk
//! size — proven across every backend from a single table of cases.
//!
//! Process and remote backends pin the `steac-worker` binary Cargo
//! built for this package (the TCP legs run it as real `--serve`
//! listeners on ephemeral localhost ports) and run with
//! `Fallback::Fail`, so a broken worker fails the test loudly instead
//! of silently matching via the in-thread fallback.

mod common;

use common::{spawn_serve_workers, worker_binary};
use steac_membist::{faultsim, MarchAlgorithm, SramConfig};
use steac_netlist::{GateKind, NetlistBuilder};
use steac_pattern::{apply_cycle_patterns_batch, CyclePattern, PinState};
use steac_sim::{
    fault, Exec, Fallback, Logic, ProcessPool, RemoteFleet, ServeHandle, Simulator, SpawnTransport,
    Threads, Transport,
};

/// The single backend table every workload case runs over: the five
/// backend families, with the remote legs shipping real wire bytes
/// through spawned workers and through `--serve` TCP listeners. The
/// first entry (serial) is the baseline the others must match
/// byte-for-byte.
fn backend_matrix(servers: &[ServeHandle]) -> Vec<(String, Exec)> {
    let mut matrix = vec![
        ("serial".to_string(), Exec::serial()),
        ("threads:1".to_string(), Exec::threads(Threads::exact(1))),
        ("threads:4".to_string(), Exec::threads(Threads::exact(4))),
    ];
    for workers in [1usize, 2, 3] {
        matrix.push((
            format!("processes:{workers}"),
            Exec::processes(ProcessPool::with_binary(worker_binary(), workers))
                .with_fallback(Fallback::Fail),
        ));
    }
    for hosts in [1usize, 2] {
        let fleet = RemoteFleet::new(
            (0..hosts)
                .map(|_| Box::new(SpawnTransport::new(worker_binary())) as Box<dyn Transport>)
                .collect(),
        );
        matrix.push((
            format!("remote-spawn:{hosts}"),
            Exec::remote(fleet).with_fallback(Fallback::Fail),
        ));
    }
    let tcp = RemoteFleet::tcp(servers.iter().map(|s| s.addr().to_string()))
        .expect("at least one serve worker");
    matrix.push((
        format!("remote-tcp:{}", servers.len()),
        Exec::remote(tcp).with_fallback(Fallback::Fail),
    ));
    matrix
}

/// A ~70-gate module whose fault list spans several passes and whose
/// two-vector test leaves escapes (so `undetected` order is exercised).
fn mixed_module() -> steac_netlist::Module {
    let mut b = NetlistBuilder::new("m");
    let a = b.input("a");
    let mut cur = a;
    for i in 0..70 {
        cur = if i % 3 == 0 {
            b.gate(GateKind::Inv, &[cur])
        } else {
            b.gate(GateKind::Nand2, &[cur, a])
        };
    }
    b.output("y", cur);
    b.finish().unwrap()
}

fn flop_pattern(bits: &[Logic]) -> CyclePattern {
    let mut p = CyclePattern::new(vec!["d".to_string(), "ck".to_string(), "q".to_string()]);
    for &bit in bits {
        p.push_cycle(vec![
            PinState::from_drive(bit),
            PinState::Pulse,
            PinState::from_expect(bit),
        ])
        .unwrap();
    }
    p
}

/// Multi-chunk playback batch with deliberately failing patterns, so
/// the mismatch logs (content AND order) go through every merge.
fn playback_case() -> (steac_netlist::Module, Vec<CyclePattern>) {
    use Logic::{One, Zero};
    let mut b = NetlistBuilder::new("m");
    let d = b.input("d");
    let ck = b.input("ck");
    let q = b.gate(GateKind::Dff, &[d, ck]);
    b.output("q", q);
    let m = b.finish().unwrap();
    let patterns: Vec<CyclePattern> = (0..150u32)
        .map(|i| {
            let bits: Vec<Logic> = (0..4)
                .map(|k| if (i >> (k % 5)) & 1 == 1 { One } else { Zero })
                .collect();
            let mut p = flop_pattern(&bits);
            if i % 49 == 7 {
                p.cycles[2][2] = PinState::ExpectH;
                p.cycles[2][0] = PinState::Drive0;
            }
            p
        })
        .collect();
    (m, patterns)
}

/// Every workload under every backend, against the serial baseline.
/// Reports carry `process_fallbacks: 0` everywhere — `Fallback::Fail`
/// on the process rows guarantees nothing fell back — so plain
/// `assert_eq!` covers all fields.
#[test]
fn all_workloads_report_byte_identical_on_every_backend() {
    use rand::SeedableRng;

    // Case 1: gate-level vector grading, with escapes.
    let m = mixed_module();
    let faults = fault::enumerate_faults(&m);
    let pins = [m.port("a").unwrap().net];
    let vectors = vec![vec![Logic::Zero], vec![Logic::One]];

    // Case 2: batched ATE playback, with failing patterns.
    let (flop_m, patterns) = playback_case();
    let refs: Vec<&CyclePattern> = patterns.iter().collect();
    let play_sim = Simulator::new(&flop_m).unwrap();

    // Case 3: March fault simulation, with escapes (MATS+ misses
    // couplings).
    let cfg = SramConfig::single_port(64, 4);
    let mut rng = rand::rngs::StdRng::seed_from_u64(99);
    let mfaults = faultsim::random_fault_list(&cfg, 40, &mut rng);
    let alg = MarchAlgorithm::mats_plus();

    let servers = spawn_serve_workers(2);
    let matrix = backend_matrix(&servers);
    let (_, serial) = &matrix[0];
    let grade_base = fault::grade_vectors(serial, &m, &faults, &pins, &vectors).unwrap();
    assert!(grade_base.detected < grade_base.total, "need escapes");
    let play_base = apply_cycle_patterns_batch(serial, &play_sim, &refs).unwrap();
    assert!(!play_base.passed(), "need mismatches");
    let march_base = faultsim::fault_coverage(serial, &alg, &cfg, &mfaults).unwrap();
    assert!(march_base.detected < march_base.total, "need escapes");
    // Case 4: the JPEG playback experiment end to end (generation +
    // playback through the same exec), in both flavours: materialized
    // and the streaming pipeline, which must agree with each other.
    let jpeg_base = steac_dsc::jpeg_playback_batch(serial, 130).unwrap();
    assert_eq!(jpeg_base.patterns, 130);
    assert_eq!(
        steac_dsc::jpeg_playback_stream(serial, 130).unwrap(),
        jpeg_base,
        "streaming flavour diverged from materialized on serial"
    );

    for (name, exec) in &matrix[1..] {
        let grade = fault::grade_vectors(exec, &m, &faults, &pins, &vectors).unwrap();
        assert_eq!(grade, grade_base, "grading diverged on {name}");
        let play = apply_cycle_patterns_batch(exec, &play_sim, &refs).unwrap();
        assert_eq!(play, play_base, "playback diverged on {name}");
        let march = faultsim::fault_coverage(exec, &alg, &cfg, &mfaults).unwrap();
        assert_eq!(march, march_base, "March diverged on {name}");
        let jpeg = steac_dsc::jpeg_playback_batch(exec, 130).unwrap();
        assert_eq!(jpeg, jpeg_base, "JPEG playback diverged on {name}");
        let jpeg_stream = steac_dsc::jpeg_playback_stream(exec, 130).unwrap();
        assert_eq!(
            jpeg_stream, jpeg_base,
            "streaming JPEG playback diverged on {name}"
        );
        assert_eq!(exec.process_fallbacks(), 0, "{name} must not fall back");
    }
}

/// The streaming/materialized differential: playback through
/// `Exec::dispatch_stream` is byte-identical to the materialized batch
/// player at every chunk size — including content AND order of the
/// mismatch logs — on every backend of the matrix. Chunk boundaries
/// must be invisible in the report; this is the determinism contract
/// behind the streaming seam.
#[test]
fn streaming_playback_reports_byte_identical_at_every_chunk_size() {
    use steac_pattern::{stream_cycle_patterns_wide, PLAYBACK_LANE_GROUPS};

    let (flop_m, patterns) = playback_case();
    let refs: Vec<&CyclePattern> = patterns.iter().collect();
    let sim = Simulator::new(&flop_m).unwrap();

    let servers = spawn_serve_workers(2);
    let matrix = backend_matrix(&servers);
    let base = apply_cycle_patterns_batch(&matrix[0].1, &sim, &refs).unwrap();
    assert!(!base.passed(), "need mismatches to compare");

    // usize::MAX clamps to the full pass width — the "one chunk per
    // pass" flavour the materialized player uses.
    for (name, exec) in &matrix {
        for chunk in [1usize, 7, 64, usize::MAX] {
            let mut streamed = Vec::new();
            let run = stream_cycle_patterns_wide(
                exec,
                &sim,
                patterns.iter().cloned(),
                PLAYBACK_LANE_GROUPS,
                chunk,
                |r| streamed.push(r),
            )
            .unwrap();
            assert_eq!(run.patterns, patterns.len(), "{name} chunk {chunk}");
            assert_eq!(
                streamed, base.reports,
                "streamed reports diverged on {name} at chunk {chunk}"
            );
        }
        assert_eq!(exec.process_fallbacks(), 0, "{name} must not fall back");
    }
}

/// Playback from an explicitly optimized dispatcher program matches the
/// unoptimized serial baseline byte for byte on every backend — the
/// optimized instruction stream (and its v2 wire image, on the process
/// and remote legs) may only change speed, never a verdict.
/// `compile_with`/`compile_unoptimized` pin the choice on both sides,
/// so the assertion holds at any `STEAC_OPT` setting.
#[test]
fn optimized_program_reports_byte_identical_on_every_backend() {
    use std::sync::Arc;
    use steac_sim::{OptConfig, SimProgram};

    let (flop_m, patterns) = playback_case();
    let refs: Vec<&CyclePattern> = patterns.iter().collect();
    let raw: Simulator =
        Simulator::from_program(Arc::new(SimProgram::compile_unoptimized(&flop_m).unwrap()));
    let opt: Simulator = Simulator::from_program(Arc::new(
        SimProgram::compile_with(&flop_m, &OptConfig::default()).unwrap(),
    ));
    assert!(opt.program().opt.enabled, "optimizer must have run");

    let servers = spawn_serve_workers(1);
    let matrix = backend_matrix(&servers);
    let base = apply_cycle_patterns_batch(&matrix[0].1, &raw, &refs).unwrap();
    assert!(!base.passed(), "need mismatches to compare");
    for (name, exec) in &matrix {
        let played = apply_cycle_patterns_batch(exec, &opt, &refs).unwrap();
        assert_eq!(played, base, "optimized playback diverged on {name}");
        assert_eq!(exec.process_fallbacks(), 0, "{name} must not fall back");
    }
}

/// The fault-model subsystem under the full matrix: transition/delay
/// grading, bridging grading, inter-cell memory-coupling grading,
/// transition dictionary building and dictionary diagnosis all report
/// byte-identical to the serial baseline on every backend AND at every
/// supported lane-group width (chunking may only change how the fault
/// list is cut, never a verdict).
#[test]
fn fault_models_report_byte_identical_on_every_backend_and_width() {
    use steac_sim::models::{bridging, dictionary, transition};
    use Logic::{One, Zero};

    // Transition + bridging share the mixed module; the 5-vector walk
    // launches both edges on the single input and leaves escapes.
    let m = mixed_module();
    let pins = [m.port("a").unwrap().net];
    let vectors = vec![vec![Zero], vec![One], vec![Zero], vec![One], vec![Zero]];
    let tfaults = transition::enumerate_transition_faults(&m);
    let bfaults = bridging::enumerate_bridges(&m).unwrap();
    assert!(!bfaults.is_empty(), "mixed module must have bridge sites");

    // Memory coupling: the full inter-cell enumeration under MATS+
    // (which misses couplings, so escape lists merge).
    let cfg = SramConfig::single_port(24, 4);
    let cfaults = faultsim::enumerate_inter_cell_couplings(&cfg);
    let alg = MarchAlgorithm::mats_plus();

    let servers = spawn_serve_workers(2);
    let matrix = backend_matrix(&servers);
    let (_, serial) = &matrix[0];

    let t_base = transition::grade_transitions(serial, &m, &tfaults, &pins, &vectors).unwrap();
    assert!(t_base.detected > 0, "need detections");
    assert!(t_base.detected < t_base.total, "need escapes");
    let b_base = bridging::grade_bridges(serial, &m, &bfaults, &pins, &vectors).unwrap();
    assert!(b_base.detected > 0, "need detections");
    let c_base = faultsim::fault_coverage(serial, &alg, &cfg, &cfaults).unwrap();
    assert!(c_base.detected < c_base.total, "need coupling escapes");
    let dict_base =
        transition::transition_dictionary(serial, &m, &tfaults, &pins, &vectors).unwrap();
    assert!(dict_base.detected_count() > 0);
    // Diagnose an observed failure that is a real dictionary signature.
    let truth = dict_base
        .entries
        .iter()
        .position(|e| e.first_pattern.is_some())
        .unwrap();
    let observed = dict_base.entries[truth].signature.clone();
    let diag_base = dictionary::diagnose(serial, &dict_base, &observed).unwrap();
    assert_eq!(diag_base.ranked[0].1, 0, "true fault matches itself");

    for (name, exec) in &matrix[1..] {
        let t = transition::grade_transitions(exec, &m, &tfaults, &pins, &vectors).unwrap();
        assert_eq!(t, t_base, "transition grading diverged on {name}");
        let b = bridging::grade_bridges(exec, &m, &bfaults, &pins, &vectors).unwrap();
        assert_eq!(b, b_base, "bridging grading diverged on {name}");
        let c = faultsim::fault_coverage(exec, &alg, &cfg, &cfaults).unwrap();
        assert_eq!(c, c_base, "coupling grading diverged on {name}");
        let dict = transition::transition_dictionary(exec, &m, &tfaults, &pins, &vectors).unwrap();
        assert_eq!(dict, dict_base, "dictionary diverged on {name}");
        let diag = dictionary::diagnose(exec, &dict, &observed).unwrap();
        assert_eq!(diag, diag_base, "diagnosis diverged on {name}");
        assert_eq!(exec.process_fallbacks(), 0, "{name} must not fall back");
    }

    // Lane-width invariance on the serial backend (the matrix already
    // proves backend invariance at the default width).
    for groups in [1usize, 2, 4, 8] {
        let t = transition::grade_transitions_wide(serial, &m, &tfaults, &pins, &vectors, groups)
            .unwrap();
        assert_eq!(t, t_base, "transition grading diverged at width {groups}");
        let b =
            bridging::grade_bridges_wide(serial, &m, &bfaults, &pins, &vectors, groups).unwrap();
        assert_eq!(b, b_base, "bridging grading diverged at width {groups}");
        let c = faultsim::fault_coverage_wide(serial, &alg, &cfg, &cfaults, groups).unwrap();
        assert_eq!(c, c_base, "coupling grading diverged at width {groups}");
        let dict =
            transition::transition_dictionary_wide(serial, &m, &tfaults, &pins, &vectors, groups)
                .unwrap();
        assert_eq!(dict, dict_base, "dictionary diverged at width {groups}");
    }
}

/// The serial-reference oracles agree with the serial backend, closing
/// the loop: matrix == serial backend == one-simulation-per-fault
/// reference.
#[test]
fn serial_backend_matches_the_serial_oracles() {
    let m = mixed_module();
    let faults = fault::enumerate_faults(&m);
    let pins = [m.port("a").unwrap().net];
    let vectors = vec![vec![Logic::Zero], vec![Logic::One]];
    let graded = fault::grade_vectors(&Exec::serial(), &m, &faults, &pins, &vectors).unwrap();
    let oracle = fault::fault_coverage_serial(&m, &faults, |sim| {
        let mut obs = Vec::new();
        for vector in &vectors {
            for (&pin, &v) in pins.iter().zip(vector) {
                sim.set(pin, v);
            }
            sim.settle()?;
            obs.extend(sim.outputs());
        }
        Ok(obs)
    })
    .unwrap();
    assert_eq!(graded.detected, oracle.detected);
    assert_eq!(graded.undetected, oracle.undetected);

    use rand::SeedableRng;
    let cfg = SramConfig::single_port(32, 4);
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let mfaults = faultsim::random_fault_list(&cfg, 12, &mut rng);
    let alg = MarchAlgorithm::mats_plus();
    let packed = faultsim::fault_coverage(&Exec::serial(), &alg, &cfg, &mfaults).unwrap();
    let serial = faultsim::fault_coverage_serial(&alg, &cfg, &mfaults);
    assert_eq!(packed, serial);
}
