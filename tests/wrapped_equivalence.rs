//! Pattern-translation equivalence: core-level vectors translated to the
//! wrapper level and played by the ATE cycle player must reproduce the
//! core's behaviour on the gate-level wrapped netlist — including
//! through an internal scan chain — and corrupted expectations must
//! fail.

use steac_netlist::{stitch_scan, Design, GateKind, NetlistBuilder, StitchConfig};
use steac_pattern::{
    apply_cycle_pattern, scan_to_wrapper, wrapper_vectors_to_cycles, ScanVector, WrapperPorts,
};
use steac_sim::{Logic, Simulator};
use steac_wrapper::{balance_fixed, wrap_core, WrapOptions};

use Logic::{One, Zero, X};

#[test]
fn combinational_core_intest_equivalence() {
    // y = a XOR b.
    let mut b = NetlistBuilder::new("xor_core");
    let a = b.input("a");
    let c = b.input("b");
    let y = b.gate(GateKind::Xor2, &[a, c]);
    b.output("y", y);
    let mut design = Design::new();
    design.add_module(b.finish().unwrap()).unwrap();
    let plan = balance_fixed(&[], 2, 1, 1);
    let wrapped = wrap_core(&mut design, "xor_core", &plan, &WrapOptions::default()).unwrap();

    // Exhaustive 2-input truth table as core-level vectors.
    let mut vectors = Vec::new();
    for (va, vb) in [(Zero, Zero), (Zero, One), (One, Zero), (One, One)] {
        let mut v = ScanVector::shaped(&[], 2, 1);
        v.pi = vec![va, vb];
        v.expect_po = vec![va.xor(vb)];
        vectors.push(scan_to_wrapper(&v, &plan).unwrap());
    }
    let pattern = wrapper_vectors_to_cycles(&vectors, &WrapperPorts::conventional(1));
    let flat = design.flatten(&wrapped.module_name).unwrap();
    let mut sim: Simulator = Simulator::new(&flat).unwrap();
    let report = apply_cycle_pattern(&mut sim, &pattern).unwrap();
    assert!(report.passed(), "{report}");
    assert_eq!(report.compares, 4);
}

#[test]
fn corrupted_expectation_fails() {
    let mut b = NetlistBuilder::new("and_core");
    let a = b.input("a");
    let c = b.input("b");
    let y = b.gate(GateKind::And2, &[a, c]);
    b.output("y", y);
    let mut design = Design::new();
    design.add_module(b.finish().unwrap()).unwrap();
    let plan = balance_fixed(&[], 2, 1, 1);
    let wrapped = wrap_core(&mut design, "and_core", &plan, &WrapOptions::default()).unwrap();

    let mut v = ScanVector::shaped(&[], 2, 1);
    v.pi = vec![One, One];
    v.expect_po = vec![Zero]; // wrong on purpose: AND(1,1) = 1
    let w = scan_to_wrapper(&v, &plan).unwrap();
    let pattern = wrapper_vectors_to_cycles(&[w], &WrapperPorts::conventional(1));
    let flat = design.flatten(&wrapped.module_name).unwrap();
    let mut sim: Simulator = Simulator::new(&flat).unwrap();
    let report = apply_cycle_pattern(&mut sim, &pattern).unwrap();
    assert!(!report.passed(), "a wrong expectation must be caught");
}

#[test]
fn sequential_core_with_internal_chain_equivalence() {
    // 3-flop shift pipeline with an XOR tap: flop chain captures
    // (d XOR previous stage).
    let mut b = NetlistBuilder::new("seq_core");
    let ck = b.input("ck");
    let d = b.input("d");
    let mut cur = d;
    for _ in 0..3 {
        let nxt = b.gate(GateKind::Xor2, &[cur, d]);
        cur = b.gate(GateKind::Dff, &[nxt, ck]);
    }
    b.output("q", cur);
    let mut m = b.finish().unwrap();
    stitch_scan(&mut m, &StitchConfig::balanced(1)).unwrap();
    let mut design = Design::new();
    design.add_module(m).unwrap();

    let plan = balance_fixed(&[3], 1, 1, 1);
    let opts = WrapOptions {
        clock_port: Some("ck".to_string()),
        scan_si: vec!["scan_si[0]".to_string()],
        scan_so: vec!["scan_so[0]".to_string()],
        scan_se: Some("scan_se".to_string()),
        ..WrapOptions::default()
    };
    let wrapped = wrap_core(&mut design, "seq_core", &plan, &opts).unwrap();

    // Core-level vector: load internal chain with [1,0,1] (bit k maps to
    // internal flop 2-k: f0=1, f1=0, f2=1), PI d = 0.
    // Capture with d=0: f0' = d XOR d = 0; f1' = f0 XOR d = 1;
    // f2' = f1 XOR d = 0; PO q = f2 (pre-capture) routed via output
    // cell... the output cell captures the *post-settle* core output,
    // which reflects pre-capture f2 = 1 at capture time? No: the output
    // cell and internal flops capture on the same edge, so the output
    // cell samples q = old f2 = 1.
    let mut v = ScanVector::shaped(&[3], 1, 1);
    v.pi = vec![Zero];
    v.loads[0] = vec![One, Zero, One];
    v.expect_unload[0] = vec![Zero, One, Zero]; // bit k <-> flop 2-k: f2'=0, f1'=1, f0'=0
    v.expect_po = vec![One];
    let w = scan_to_wrapper(&v, &plan).unwrap();
    let pattern = wrapper_vectors_to_cycles(&[w], &WrapperPorts::conventional(1));
    let flat = design.flatten(&wrapped.module_name).unwrap();
    let mut sim: Simulator = Simulator::new(&flat).unwrap();
    let report = apply_cycle_pattern(&mut sim, &pattern).unwrap();
    assert!(report.passed(), "{report}");
    // 1 PO + 3 internal unload bits compared (input cell masked).
    assert_eq!(report.compares, 4);
}

#[test]
fn masked_expectations_never_fire() {
    let mut b = NetlistBuilder::new("buf_core");
    let a = b.input("a");
    let y = b.gate(GateKind::Buf, &[a]);
    b.output("y", y);
    let mut design = Design::new();
    design.add_module(b.finish().unwrap()).unwrap();
    let plan = balance_fixed(&[], 1, 1, 1);
    let wrapped = wrap_core(&mut design, "buf_core", &plan, &WrapOptions::default()).unwrap();
    let mut v = ScanVector::shaped(&[], 1, 1);
    v.pi = vec![X]; // unknown stimulus
    v.expect_po = vec![X]; // masked response
    let w = scan_to_wrapper(&v, &plan).unwrap();
    let pattern = wrapper_vectors_to_cycles(&[w], &WrapperPorts::conventional(1));
    let flat = design.flatten(&wrapped.module_name).unwrap();
    let mut sim: Simulator = Simulator::new(&flat).unwrap();
    let report = apply_cycle_pattern(&mut sim, &pattern).unwrap();
    assert!(report.passed());
    assert_eq!(report.compares, 0, "everything was masked");
}
