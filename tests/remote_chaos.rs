//! Chaos/differential battery for the Remote backend: every injected
//! transport failure — killed hosts, dropped/truncated/corrupted/
//! duplicated/delayed responses, rogue TCP peers — must resolve per
//! the explicit `Fallback` policy with **no panics** and a merge that
//! stays **byte-identical** to the serial baseline whenever the run
//! survives. This is the SAIBERSOC-style argument applied to the
//! distributed layer: the pipeline is validated by *injecting* the
//! failures, not by hoping the happy path generalises.
//!
//! The injection engine is [`FlakyTransport`], a deterministic-schedule
//! test double wrapping a real transport (spawned `steac-worker`
//! processes, so every surviving byte still crosses a real process
//! boundary). `STEAC_CHAOS_SCALE` (default 1) multiplies the workload
//! size and schedule length — CI's nightly chaos job runs the same
//! battery at scale 8.

mod common;

use common::{spawn_serve_worker, worker_binary};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;
use steac_netlist::{GateKind, NetlistBuilder};
use steac_pattern::{apply_cycle_patterns_batch, CyclePattern, PinState};
use steac_sim::remote::spawn_serve_process_at;
use steac_sim::{
    fault, shard, Backend, Exec, Fallback, Logic, RemoteFleet, SimError, Simulator, SpawnTransport,
    TcpTransport, Transport, TransportError,
};

/// Chaos amplification knob: multiplies pattern counts and how long the
/// injection schedules stay active.
fn chaos_scale() -> usize {
    std::env::var("STEAC_CHAOS_SCALE")
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(1)
}

/// One injected misbehaviour of a [`FlakyTransport`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Injection {
    /// Run the request, then lose the response (the work happened —
    /// retries must merge idempotently).
    Drop,
    /// Return only the first half of the response bytes.
    Truncate,
    /// Flip bytes in the response header (corrupt envelope/frame).
    Corrupt,
    /// Return the response twice, back to back.
    Duplicate,
    /// Deliver the response late.
    Delay,
    /// Refuse the call outright without running anything (dead host).
    Dead,
}

/// Deterministic-schedule failure injector: wraps a real transport and
/// misbehaves per `schedule(call_index)`. The schedule is a pure
/// function of the per-transport call counter, so a test's injection
/// plan is reproducible regardless of thread interleaving — and the
/// *report* must come out byte-identical regardless of which calls the
/// failures land on.
struct FlakyTransport<S: Fn(usize) -> Option<Injection> + Send + Sync> {
    inner: Box<dyn Transport>,
    schedule: S,
    calls: AtomicUsize,
}

impl<S: Fn(usize) -> Option<Injection> + Send + Sync> FlakyTransport<S> {
    fn over(inner: Box<dyn Transport>, schedule: S) -> Box<Self> {
        Box::new(FlakyTransport {
            inner,
            schedule,
            calls: AtomicUsize::new(0),
        })
    }
}

impl<S: Fn(usize) -> Option<Injection> + Send + Sync> Transport for FlakyTransport<S> {
    fn call(&self, request: &[u8]) -> Result<Vec<u8>, TransportError> {
        let call = self.calls.fetch_add(1, Ordering::Relaxed);
        match (self.schedule)(call) {
            None => self.inner.call(request),
            Some(Injection::Dead) => Err(TransportError::Unreachable {
                endpoint: self.endpoint(),
                diagnostic: "injected: host down".to_string(),
            }),
            Some(Injection::Drop) => {
                let _ = self.inner.call(request);
                Err(TransportError::Io {
                    diagnostic: "injected: response dropped".to_string(),
                })
            }
            Some(Injection::Truncate) => {
                let response = self.inner.call(request)?;
                Ok(response[..response.len() / 2].to_vec())
            }
            Some(Injection::Corrupt) => {
                let mut response = self.inner.call(request)?;
                for byte in response.iter_mut().take(6) {
                    *byte ^= 0xA5;
                }
                Ok(response)
            }
            Some(Injection::Duplicate) => {
                let response = self.inner.call(request)?;
                let mut doubled = response.clone();
                doubled.extend_from_slice(&response);
                Ok(doubled)
            }
            Some(Injection::Delay) => {
                std::thread::sleep(Duration::from_millis(20));
                self.inner.call(request)
            }
        }
    }

    fn endpoint(&self) -> String {
        format!("flaky({})", self.inner.endpoint())
    }
}

fn spawn() -> Box<dyn Transport> {
    Box::new(SpawnTransport::new(worker_binary()))
}

fn flaky(
    schedule: impl Fn(usize) -> Option<Injection> + Send + Sync + 'static,
) -> Box<dyn Transport> {
    FlakyTransport::over(spawn(), schedule)
}

/// A DFF playback workload with deliberately failing patterns, so the
/// mismatch logs (content AND order) cross every chaotic merge.
fn playback_case(patterns: usize) -> (steac_netlist::Module, Vec<CyclePattern>) {
    use Logic::{One, Zero};
    let mut b = NetlistBuilder::new("m");
    let d = b.input("d");
    let ck = b.input("ck");
    let q = b.gate(GateKind::Dff, &[d, ck]);
    b.output("q", q);
    let m = b.finish().unwrap();
    let patterns: Vec<CyclePattern> = (0..patterns as u32)
        .map(|i| {
            let mut p = CyclePattern::new(vec!["d".to_string(), "ck".to_string(), "q".to_string()]);
            for k in 0..4u32 {
                let bit = if (i >> (k % 5)) & 1 == 1 { One } else { Zero };
                p.push_cycle(vec![
                    PinState::from_drive(bit),
                    PinState::Pulse,
                    PinState::from_expect(bit),
                ])
                .unwrap();
            }
            if i % 49 == 7 {
                p.cycles[2][2] = PinState::ExpectH;
                p.cycles[2][0] = PinState::Drive0;
            }
            p
        })
        .collect();
    (m, patterns)
}

/// A ~70-gate cone whose fault list spans several passes and whose
/// two-vector test leaves escapes.
fn mixed_module() -> steac_netlist::Module {
    let mut b = NetlistBuilder::new("m");
    let a = b.input("a");
    let mut cur = a;
    for i in 0..70 {
        cur = if i % 3 == 0 {
            b.gate(GateKind::Inv, &[cur])
        } else {
            b.gate(GateKind::Nand2, &[cur, a])
        };
    }
    b.output("y", cur);
    b.finish().unwrap()
}

/// Runs the playback workload on `exec` and asserts the report is
/// byte-identical to the serial baseline.
fn assert_playback_identical(exec: &Exec, patterns: usize) {
    let (m, patterns) = playback_case(patterns);
    let refs: Vec<&CyclePattern> = patterns.iter().collect();
    let sim: Simulator = Simulator::new(&m).unwrap();
    let baseline = apply_cycle_patterns_batch(&Exec::serial(), &sim, &refs).unwrap();
    assert!(!baseline.passed(), "the case must carry mismatches");
    let chaotic = apply_cycle_patterns_batch(exec, &sim, &refs).unwrap();
    assert_eq!(chaotic, baseline, "chaos changed a report on {exec}");
    assert_eq!(exec.process_fallbacks(), 0, "fleet retries must suffice");
}

/// A host that dies on its very first call: its stolen units requeue
/// onto the surviving host and the report stays byte-identical — the
/// killed-host drill.
#[test]
fn killed_host_requeues_and_the_report_is_identical() {
    let fleet = RemoteFleet::new(vec![flaky(|_| Some(Injection::Dead)), spawn()]);
    let exec = Exec::remote(fleet).with_fallback(Fallback::Fail);
    assert_playback_identical(&exec, 150 * chaos_scale());
}

/// A host that dies mid-run (healthy for its first calls, gone after):
/// in-flight units requeue, the survivor finishes, same report.
#[test]
fn host_lost_mid_run_requeues_its_in_flight_units() {
    let fleet = RemoteFleet::new(vec![
        flaky(|call| (call >= 2).then_some(Injection::Dead)),
        spawn(),
    ]);
    let exec = Exec::remote(fleet).with_fallback(Fallback::Fail);
    assert_playback_identical(&exec, 300 * chaos_scale());
}

/// Every transient failure mode at once, on both hosts, on a
/// deterministic schedule: drops (work done, response lost — the
/// duplicate-execution case), truncations, corrupt frames, duplicated
/// frames and delays. The fleet must retry its way to a byte-identical
/// report for every workload family.
#[test]
fn every_transient_failure_mode_recovers_bit_identically() {
    let schedule = |call: usize| match call % 11 {
        1 => Some(Injection::Drop),
        3 => Some(Injection::Truncate),
        5 => Some(Injection::Corrupt),
        7 => Some(Injection::Duplicate),
        9 => Some(Injection::Delay),
        _ => None,
    };
    let fleet = RemoteFleet::new(vec![flaky(schedule), flaky(schedule)]).with_max_retries(4);
    let exec = Exec::remote(fleet).with_fallback(Fallback::Fail);
    assert_playback_identical(&exec, 400 * chaos_scale());

    // Gate-level grading with escapes, through the same chaos.
    let m = mixed_module();
    let faults = fault::enumerate_faults(&m);
    let pins = [m.port("a").unwrap().net];
    let vectors = vec![vec![Logic::Zero], vec![Logic::One]];
    let baseline = fault::grade_vectors(&Exec::serial(), &m, &faults, &pins, &vectors).unwrap();
    assert!(baseline.detected < baseline.total, "the case must escape");
    let fleet = RemoteFleet::new(vec![flaky(schedule), flaky(schedule)]).with_max_retries(4);
    let exec = Exec::remote(fleet).with_fallback(Fallback::Fail);
    let chaotic = fault::grade_vectors(&exec, &m, &faults, &pins, &vectors).unwrap();
    assert_eq!(chaotic, baseline, "chaos changed the coverage report");
}

/// Every host gone and retries exhausted, under `Fallback::Fail`: the
/// typed workload error on the lowest-indexed unit — never a panic.
#[test]
fn exhausted_retries_fail_on_the_lowest_indexed_unit() {
    let dead = || flaky(|_| Some(Injection::Dead));
    let fleet = RemoteFleet::new(vec![dead(), dead()]).with_max_retries(1);
    let exec = Exec::remote(fleet).with_fallback(Fallback::Fail);
    let (m, patterns) = playback_case(100);
    let refs: Vec<&CyclePattern> = patterns.iter().collect();
    let sim: Simulator = Simulator::new(&m).unwrap();
    match apply_cycle_patterns_batch(&exec, &sim, &refs).unwrap_err() {
        steac_pattern::PatternError::Sim(SimError::Worker { unit, diagnostic }) => {
            assert_eq!(unit, 0, "lowest-indexed unit wins: {diagnostic}");
            assert!(!diagnostic.is_empty());
        }
        other => panic!("expected SimError::Worker, got {other:?}"),
    }
    assert_eq!(exec.process_fallbacks(), 0);
}

/// The same dead fleet under the default `Fallback::InThread` policy:
/// the run is recomputed in-process, the report is byte-identical and
/// the degradation is surfaced in the report and on the exec.
#[test]
fn exhausted_retries_fall_back_in_thread_when_allowed() {
    let dead = || flaky(|_| Some(Injection::Dead));
    let fleet = RemoteFleet::new(vec![dead(), dead()]).with_max_retries(1);
    let exec = Exec::remote(fleet);
    let (m, patterns) = playback_case(100);
    let refs: Vec<&CyclePattern> = patterns.iter().collect();
    let sim: Simulator = Simulator::new(&m).unwrap();
    let baseline = apply_cycle_patterns_batch(&Exec::serial(), &sim, &refs).unwrap();
    let fallback = apply_cycle_patterns_batch(&exec, &sim, &refs).unwrap();
    assert_eq!(fallback.reports, baseline.reports);
    assert_eq!(fallback.process_fallbacks, 1, "degradation must be visible");
    assert_eq!(exec.process_fallbacks(), 1);
}

/// A fleet whose every response arrives with a corrupt envelope/frame:
/// a typed error on the lowest-indexed unit under `Fallback::Fail`,
/// never a panic.
#[test]
fn corrupt_envelope_is_a_typed_error_on_the_lowest_indexed_unit() {
    let corrupting = || flaky(|_| Some(Injection::Corrupt));
    let fleet = RemoteFleet::new(vec![corrupting(), corrupting()]).with_max_retries(1);
    let exec = Exec::remote(fleet).with_fallback(Fallback::Fail);
    let m = mixed_module();
    let faults = fault::enumerate_faults(&m);
    let pins = [m.port("a").unwrap().net];
    let vectors = vec![vec![Logic::Zero]];
    match fault::grade_vectors(&exec, &m, &faults, &pins, &vectors).unwrap_err() {
        SimError::Worker { unit, diagnostic } => {
            assert_eq!(unit, 0, "lowest-indexed unit wins: {diagnostic}");
            assert!(!diagnostic.is_empty());
        }
        other => panic!("expected SimError::Worker, got {other:?}"),
    }
}

/// Real TCP chaos: a fleet pointing one host at a real `--serve` worker
/// and one at a rogue peer that answers garbage — the rogue host is
/// declared lost, the real worker absorbs the queue, and the report is
/// byte-identical. Then the rogue listener alone, to pin the typed
/// failure.
#[test]
fn rogue_tcp_peer_is_survived_and_typed() {
    use std::io::{Read as _, Write as _};
    let rogue = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let rogue_addr = rogue.local_addr().unwrap().to_string();
    std::thread::spawn(move || {
        for stream in rogue.incoming() {
            let Ok(mut stream) = stream else { break };
            let mut sink = [0u8; 1024];
            let _ = stream.read(&mut sink);
            let _ = stream.write_all(b"not an envelope, not even close");
        }
    });

    let server = spawn_serve_worker();
    let fleet = RemoteFleet::new(vec![
        Box::new(TcpTransport::new(rogue_addr.clone())) as Box<dyn Transport>,
        Box::new(TcpTransport::new(server.addr().to_string())) as Box<dyn Transport>,
    ]);
    let exec = Exec::remote(fleet).with_fallback(Fallback::Fail);
    assert_playback_identical(&exec, 150 * chaos_scale());

    let alone = RemoteFleet::new(vec![
        Box::new(TcpTransport::new(rogue_addr)) as Box<dyn Transport>
    ])
    .with_max_retries(1);
    let exec = Exec::remote(alone).with_fallback(Fallback::Fail);
    let m = mixed_module();
    let faults = fault::enumerate_faults(&m);
    let pins = [m.port("a").unwrap().net];
    let vectors = vec![vec![Logic::Zero]];
    match fault::grade_vectors(&exec, &m, &faults, &pins, &vectors).unwrap_err() {
        SimError::Worker { unit, .. } => assert_eq!(unit, 0),
        other => panic!("expected SimError::Worker, got {other:?}"),
    }
}

/// The program-cache loss drill: the fleet primes a real `--serve`
/// worker once, the worker is killed and restarted on the same port
/// (fresh process, empty cache), and the next batch — which goes
/// by hash, because the fleet's ledger still lists the program as
/// known there — draws a `NeedProgram` reply and heals by
/// transparently re-shipping the bytes. Both reports stay
/// byte-identical to serial, and the fleet stats pin the exact
/// resupply story: two ships, one need-program reply.
#[test]
fn worker_restart_reships_the_program_transparently() {
    let server = spawn_serve_worker();
    let addr = server.addr().to_string();
    // One stream so exactly one exchange discovers the cache loss.
    let fleet = RemoteFleet::new(vec![
        Box::new(TcpTransport::new(addr.clone()).with_streams(1)) as Box<dyn Transport>,
    ])
    .with_max_retries(3);
    let exec = Exec::remote(fleet).with_fallback(Fallback::Fail);

    let (m, patterns) = playback_case(150 * chaos_scale());
    let refs: Vec<&CyclePattern> = patterns.iter().collect();
    let sim: Simulator = Simulator::new(&m).unwrap();
    let baseline = apply_cycle_patterns_batch(&Exec::serial(), &sim, &refs).unwrap();
    assert!(!baseline.passed(), "the case must carry mismatches");

    let first = apply_cycle_patterns_batch(&exec, &sim, &refs).unwrap();
    assert_eq!(first, baseline);

    // Kill the worker and restart one on the same port: the session
    // is lost and the new worker's cache is empty, but the client has
    // no way to know either yet.
    drop(server);
    let _server = spawn_serve_process_at(&worker_binary(), &addr).expect("restarting the worker");

    let second = apply_cycle_patterns_batch(&exec, &sim, &refs).unwrap();
    assert_eq!(second, baseline, "the healed run must stay byte-identical");

    let Backend::Remote(fleet) = exec.backend() else {
        unreachable!("the exec was built remote")
    };
    let stats = fleet.stats();
    assert_eq!(
        stats.programs_shipped, 2,
        "primed once, resupplied once: {stats:?}"
    );
    assert_eq!(stats.need_program_replies, 1, "{stats:?}");
    assert_eq!(exec.process_fallbacks(), 0, "healing must not fall back");
}

/// A peer that flips one byte inside the job block of every run
/// request: the declared FNV-1a hash no longer matches the received
/// bytes, and the worker must refuse to execute anything — a typed
/// hash-mismatch error on the lowest-indexed unit under
/// `Fallback::Fail`. Corrupted program bytes must never produce a
/// wrong answer.
#[test]
fn corrupted_program_hash_is_a_typed_error_never_a_wrong_answer() {
    struct JobCorruptingTransport {
        inner: Box<dyn Transport>,
    }
    impl Transport for JobCorruptingTransport {
        fn call(&self, request: &[u8]) -> Result<Vec<u8>, TransportError> {
            let mut request = request.to_vec();
            // Spawn transports always carry the job inline; 16 bytes
            // past the job offset is safely inside the program bytes
            // (past any structure a decoder would reject outright).
            if let Some(byte) = request.get_mut(shard::RUN_REQUEST_JOB_OFFSET + 16) {
                *byte ^= 0xFF;
            }
            self.inner.call(&request)
        }
        fn endpoint(&self) -> String {
            format!("job-corrupting({})", self.inner.endpoint())
        }
    }

    let fleet = RemoteFleet::new(vec![
        Box::new(JobCorruptingTransport { inner: spawn() }) as Box<dyn Transport>
    ])
    .with_max_retries(1);
    let exec = Exec::remote(fleet).with_fallback(Fallback::Fail);
    let (m, patterns) = playback_case(100);
    let refs: Vec<&CyclePattern> = patterns.iter().collect();
    let sim: Simulator = Simulator::new(&m).unwrap();
    match apply_cycle_patterns_batch(&exec, &sim, &refs).unwrap_err() {
        steac_pattern::PatternError::Sim(SimError::Worker { unit, diagnostic }) => {
            assert_eq!(unit, 0, "lowest-indexed unit wins: {diagnostic}");
            assert!(diagnostic.contains("hash mismatch"), "{diagnostic}");
        }
        other => panic!("expected SimError::Worker, got {other:?}"),
    }
}

/// TCP and spawn transports interoperate in one fleet against a real
/// `--serve` worker, chaos sprinkled on both — the full plumbing drill:
/// envelope framing on one host, stdio framing on the other, one
/// deterministic merge.
#[test]
fn mixed_tcp_and_spawn_fleet_reports_identically_under_chaos() {
    let server = spawn_serve_worker();
    let schedule = |call: usize| (call % 5 == 2).then_some(Injection::Drop);
    let fleet = RemoteFleet::new(vec![
        FlakyTransport::over(
            Box::new(TcpTransport::new(server.addr().to_string())) as Box<dyn Transport>,
            schedule,
        ) as Box<dyn Transport>,
        flaky(schedule),
    ])
    .with_max_retries(3);
    let exec = Exec::remote(fleet).with_fallback(Fallback::Fail);
    assert_playback_identical(&exec, 200 * chaos_scale());
}
