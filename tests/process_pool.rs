//! Negative-path and policy battery for process-level fan-out behind
//! the unified `Exec` seam. The differential (byte-identical) half of
//! the old battery lives in `tests/exec_matrix.rs` now; this file pins
//! what happens when process dispatch **misbehaves**: every failure
//! mode (missing binary, dying worker, corrupt bytes, wrong version) is
//! typed, deterministic and panic-free, and the explicit `Fallback`
//! policy decides — visibly — between in-thread recomputation and a
//! typed error.

use std::path::PathBuf;
use steac_membist::{faultsim, MarchAlgorithm, SramConfig};
use steac_netlist::{GateKind, NetlistBuilder};
use steac_pattern::{apply_cycle_patterns_batch, CyclePattern, PinState};
use steac_sim::shard::{self, PoolError, ProcessPool};
use steac_sim::{fault, Exec, Fallback, Logic, SimError, Simulator};

/// The worker binary built alongside this test suite.
fn worker_binary() -> PathBuf {
    PathBuf::from(env!("CARGO_BIN_EXE_steac-worker"))
}

fn pool(workers: usize) -> ProcessPool {
    ProcessPool::with_binary(worker_binary(), workers)
}

fn bogus_pool() -> ProcessPool {
    ProcessPool::with_binary(PathBuf::from("/nonexistent/steac-worker"), 2)
}

/// A ~70-gate module whose fault list spans several passes and whose
/// two-vector test leaves escapes.
fn mixed_module() -> steac_netlist::Module {
    let mut b = NetlistBuilder::new("m");
    let a = b.input("a");
    let mut cur = a;
    for i in 0..70 {
        cur = if i % 3 == 0 {
            b.gate(GateKind::Inv, &[cur])
        } else {
            b.gate(GateKind::Nand2, &[cur, a])
        };
    }
    b.output("y", cur);
    b.finish().unwrap()
}

fn flop_pattern(bits: &[Logic]) -> CyclePattern {
    let mut p = CyclePattern::new(vec!["d".to_string(), "ck".to_string(), "q".to_string()]);
    for &bit in bits {
        p.push_cycle(vec![
            PinState::from_drive(bit),
            PinState::Pulse,
            PinState::from_expect(bit),
        ])
        .unwrap();
    }
    p
}

/// Forces on the dispatcher's simulator (fault injection) must carry
/// into worker processes exactly as they carry into in-thread clones.
#[test]
fn process_playback_carries_forces_across_the_wire() {
    use Logic::{One, Zero};
    let mut b = NetlistBuilder::new("m");
    let d = b.input("d");
    let ck = b.input("ck");
    let q = b.gate(GateKind::Dff, &[d, ck]);
    b.output("q", q);
    let m = b.finish().unwrap();
    let mut sim: Simulator = Simulator::new(&m).unwrap();
    // Stuck-at-0 on the output: every ExpectH pattern must now fail.
    sim.force(m.port("q").unwrap().net, Logic::Zero);
    let patterns: Vec<CyclePattern> = (0..70)
        .map(|i| flop_pattern(&[if i % 2 == 0 { One } else { Zero }]))
        .collect();
    let refs: Vec<&CyclePattern> = patterns.iter().collect();
    let baseline = apply_cycle_patterns_batch(&Exec::serial(), &sim, &refs).unwrap();
    assert!(!baseline.passed(), "force must bite");
    let procs = Exec::processes(pool(2)).with_fallback(Fallback::Fail);
    let processed = apply_cycle_patterns_batch(&procs, &sim, &refs).unwrap();
    assert_eq!(processed, baseline);
}

/// The default-discovery path (`shard::default_worker_binary`) must find
/// the freshly built worker from a test executable, and an
/// `Exec::parse("processes:2")` backend must report identically through
/// it.
#[test]
fn default_discovery_finds_the_worker_and_reports_identically() {
    assert!(
        shard::default_worker_binary().is_some(),
        "worker binary should be discoverable next to the test executable"
    );
    let discovered = Exec::parse("processes:2")
        .unwrap()
        .with_fallback(Fallback::Fail);
    assert_eq!(discovered.to_string(), "processes:2");
    let baseline = steac_dsc::jpeg_playback_batch(&Exec::serial(), 130).unwrap();
    let processed = steac_dsc::jpeg_playback_batch(&discovered, 130).unwrap();
    assert_eq!(processed, baseline);
    assert_eq!(discovered.process_fallbacks(), 0);
}

/// A worker binary that cannot be spawned at all degrades gracefully
/// under the default `Fallback::InThread` policy: same report, no
/// error — but the fallback is **surfaced**, counted on the exec and
/// recorded in the report (the old silent-policy bug, fixed).
#[test]
fn spawn_failure_falls_back_in_thread_and_is_counted() {
    let m = mixed_module();
    let faults = fault::enumerate_faults(&m);
    let pins = [m.port("a").unwrap().net];
    let vectors = vec![vec![Logic::Zero], vec![Logic::One]];
    let baseline = fault::grade_vectors(&Exec::serial(), &m, &faults, &pins, &vectors).unwrap();

    let forgiving = Exec::processes(bogus_pool());
    let report = fault::grade_vectors(&forgiving, &m, &faults, &pins, &vectors).unwrap();
    assert_eq!(report.detected, baseline.detected);
    assert_eq!(report.undetected, baseline.undetected);
    assert_eq!(report.process_fallbacks, 1, "fallback must be recorded");
    assert!(
        report.to_string().contains("fell back in-thread"),
        "{report}"
    );
    assert_eq!(forgiving.process_fallbacks(), 1);

    // March: the workload that used to fall back silently. Same
    // verdicts, visible degradation.
    let cfg = SramConfig::single_port(16, 2);
    let mfaults = vec![steac_membist::MemFault::stuck_at(3, 0, true)];
    let alg = MarchAlgorithm::march_c_minus();
    let march_base = faultsim::fault_coverage(&Exec::serial(), &alg, &cfg, &mfaults).unwrap();
    let forgiving = Exec::processes(bogus_pool());
    let march = faultsim::fault_coverage(&forgiving, &alg, &cfg, &mfaults).unwrap();
    assert_eq!(march.detected, march_base.detected);
    assert_eq!(march.escaped, march_base.escaped);
    assert_eq!(march.process_fallbacks, 1);
    assert_eq!(forgiving.process_fallbacks(), 1);
}

/// Under `Fallback::Fail` the same spawn failure is a typed error on
/// unit 0 instead — for every workload, March included (which could
/// never fail before).
#[test]
fn spawn_failure_is_a_typed_error_under_fail_policy() {
    let m = mixed_module();
    let faults = fault::enumerate_faults(&m);
    let pins = [m.port("a").unwrap().net];
    let vectors = vec![vec![Logic::Zero]];
    let strict = Exec::processes(bogus_pool()).with_fallback(Fallback::Fail);
    match fault::grade_vectors(&strict, &m, &faults, &pins, &vectors).unwrap_err() {
        SimError::Worker { unit, diagnostic } => {
            assert_eq!(unit, 0);
            assert!(diagnostic.contains("cannot spawn worker"), "{diagnostic}");
        }
        other => panic!("expected SimError::Worker, got {other:?}"),
    }
    let cfg = SramConfig::single_port(16, 2);
    let mfaults = vec![steac_membist::MemFault::stuck_at(3, 0, true)];
    let alg = MarchAlgorithm::march_c_minus();
    let strict = Exec::processes(bogus_pool()).with_fallback(Fallback::Fail);
    match faultsim::fault_coverage(&strict, &alg, &cfg, &mfaults).unwrap_err() {
        SimError::Worker { unit, .. } => assert_eq!(unit, 0),
        other => panic!("expected SimError::Worker, got {other:?}"),
    }
    assert_eq!(strict.process_fallbacks(), 0);
}

/// A worker that dies without producing results surfaces as the
/// lowest-indexed unit assigned to it under `Fallback::Fail`, with its
/// diagnostics attached — and recomputes cleanly under the default
/// policy.
#[test]
fn dying_worker_follows_the_policy() {
    let false_bin = PathBuf::from("/bin/false");
    if !false_bin.is_file() {
        eprintln!("skipping: /bin/false not present");
        return;
    }
    let m = mixed_module();
    let faults = fault::enumerate_faults(&m);
    let pins = [m.port("a").unwrap().net];
    let vectors = vec![vec![Logic::Zero]];
    let dying = || ProcessPool::with_binary(false_bin.clone(), 2);

    let strict = Exec::processes(dying()).with_fallback(Fallback::Fail);
    match fault::grade_vectors(&strict, &m, &faults, &pins, &vectors).unwrap_err() {
        SimError::Worker { unit, diagnostic } => {
            assert_eq!(unit, 0, "lowest-indexed unit wins: {diagnostic}");
        }
        other => panic!("expected SimError::Worker, got {other:?}"),
    }

    let forgiving = Exec::processes(dying());
    let baseline = fault::grade_vectors(&Exec::serial(), &m, &faults, &pins, &vectors).unwrap();
    let report = fault::grade_vectors(&forgiving, &m, &faults, &pins, &vectors).unwrap();
    assert_eq!(report.detected, baseline.detected);
    assert_eq!(report.process_fallbacks, 1);
}

/// An unknown job kind is reported per unit by a healthy worker — the
/// registry's diagnostic — and the dispatcher deterministically picks
/// unit 0.
#[test]
fn unknown_job_kind_is_a_lowest_indexed_unit_error() {
    let err = pool(2)
        .run(999, b"whatever", &[vec![1], vec![2], vec![3]])
        .unwrap_err();
    match err {
        PoolError::Unit { unit, diagnostic } => {
            assert_eq!(unit, 0);
            assert!(
                diagnostic.contains("unknown work-unit kind"),
                "{diagnostic}"
            );
        }
        other => panic!("expected PoolError::Unit, got {other:?}"),
    }
}

/// Corrupt job bytes (valid protocol envelope, garbage payload) come
/// back as typed unit errors carrying the wire diagnostic — the worker
/// exits cleanly rather than panicking.
#[test]
fn corrupt_job_bytes_are_typed_unit_errors() {
    for kind in [
        fault::WIRE_KIND,
        steac_pattern::cycle::WIRE_KIND,
        steac_membist::wire::WIRE_KIND,
    ] {
        let err = pool(1)
            .run(kind, &[0xDE, 0xAD, 0xBE, 0xEF], &[vec![0; 4]])
            .unwrap_err();
        match err {
            PoolError::Unit { unit, diagnostic } => {
                assert_eq!(unit, 0, "kind {kind}");
                assert!(!diagnostic.is_empty(), "kind {kind}");
            }
            other => panic!("kind {kind}: expected PoolError::Unit, got {other:?}"),
        }
    }
}

/// Corrupt *unit* bytes under a valid job: the decode failure is
/// attributed to exactly the corrupt unit — healthy units before it
/// still compute, proven by the error index pointing past them.
#[test]
fn corrupt_unit_bytes_fail_only_that_unit() {
    let cfg = SramConfig::single_port(16, 2);
    let alg = MarchAlgorithm::march_c_minus();
    let job = steac_membist::wire::encode_march_job(&alg, &cfg, 1);
    let good =
        steac_membist::wire::encode_fault_unit(&[steac_membist::MemFault::stuck_at(3, 0, true)]);
    let corrupt = vec![0xFF; 3];
    let err = pool(1)
        .run(
            steac_membist::wire::WIRE_KIND,
            &job,
            &[good.clone(), corrupt, good],
        )
        .unwrap_err();
    match err {
        PoolError::Unit { unit, diagnostic } => {
            assert_eq!(unit, 1, "only the corrupt unit fails: {diagnostic}");
        }
        other => panic!("expected PoolError::Unit, got {other:?}"),
    }
}

/// Truncated and version-bumped program blobs decode to typed errors —
/// the wire layer's contract, checked here at the integration level on a
/// realistically sized program (the JPEG core).
#[test]
fn jpeg_program_wire_negative_paths_are_typed() {
    let (module, _) = steac_dsc::jpeg_core().unwrap();
    let program = steac_sim::SimProgram::compile(&module).unwrap();
    let bytes = steac_sim::wire::encode_program(&program);
    let back = steac_sim::wire::decode_program(&bytes).unwrap();
    assert_eq!(back, program);

    // Wrong version.
    let mut versioned = bytes.clone();
    versioned[4] = versioned[4].wrapping_add(1);
    assert!(matches!(
        steac_sim::wire::decode_program(&versioned),
        Err(steac_sim::WireError::UnsupportedVersion { .. })
    ));
    // Wrong magic.
    let mut magicked = bytes.clone();
    magicked[0] = b'?';
    assert!(matches!(
        steac_sim::wire::decode_program(&magicked),
        Err(steac_sim::WireError::BadMagic { .. })
    ));
    // Truncations at a spread of cut points (the exhaustive sweep runs
    // in the sim crate's unit tests on a small program).
    for cut in (0..bytes.len()).step_by(997) {
        assert!(
            steac_sim::wire::decode_program(&bytes[..cut]).is_err(),
            "prefix {cut}"
        );
    }
    // Single-byte corruption at a spread of positions never panics.
    for i in (0..bytes.len()).step_by(613) {
        let mut corrupt = bytes.clone();
        corrupt[i] ^= 0x5A;
        let _ = steac_sim::wire::decode_program(&corrupt);
    }
}
