//! Differential and negative-path battery for process-level fan-out.
//!
//! The SAIBERSOC lesson: a distributed harness is only trustworthy if
//! the fanned-out workloads produce *verifiably identical* results to
//! the reference path. These tests pin the `steac-worker` binary Cargo
//! built for this package and prove that process-pool fault grading,
//! batched playback and March fault simulation are **byte-identical** —
//! counts, escape lists, mismatch-log order — to single-threaded
//! in-thread runs; and that every failure mode (missing binary, dying
//! worker, corrupt bytes, wrong version) is typed, deterministic and
//! panic-free.

use std::path::PathBuf;
use steac_membist::faultsim;
use steac_membist::{MarchAlgorithm, SramConfig};
use steac_netlist::{GateKind, NetlistBuilder};
use steac_pattern::{
    apply_cycle_patterns_batch_with, apply_cycle_patterns_batch_with_pool, CyclePattern, PinState,
};
use steac_sim::shard::{self, PoolError, ProcessPool};
use steac_sim::{fault, Logic, SimError, Simulator, Threads};

/// The worker binary built alongside this test suite.
fn worker_binary() -> PathBuf {
    PathBuf::from(env!("CARGO_BIN_EXE_steac-worker"))
}

fn pool(workers: usize) -> ProcessPool {
    ProcessPool::with_binary(worker_binary(), workers)
}

/// A ~70-gate module whose fault list spans several passes and whose
/// two-vector test leaves escapes (so `undetected` order is exercised).
fn mixed_module() -> steac_netlist::Module {
    let mut b = NetlistBuilder::new("m");
    let a = b.input("a");
    let mut cur = a;
    for i in 0..70 {
        cur = if i % 3 == 0 {
            b.gate(GateKind::Inv, &[cur])
        } else {
            b.gate(GateKind::Nand2, &[cur, a])
        };
    }
    b.output("y", cur);
    b.finish().unwrap()
}

// ---------- differential: byte-identical to in-thread ----------

#[test]
fn process_grading_matches_in_thread_at_every_worker_count() {
    let m = mixed_module();
    let faults = fault::enumerate_faults(&m);
    let pins = [m.port("a").unwrap().net];
    let vectors = vec![vec![Logic::Zero], vec![Logic::One]];
    let baseline =
        fault::grade_vectors_with(&m, &faults, &pins, &vectors, Threads::single()).unwrap();
    assert!(baseline.detected < baseline.total, "need escapes to merge");
    for workers in [1, 2, 3] {
        let processed =
            fault::grade_vectors_with_pool(&m, &faults, &pins, &vectors, &pool(workers)).unwrap();
        assert_eq!(processed, baseline, "{workers} workers");
    }
}

fn flop_pattern(bits: &[Logic]) -> CyclePattern {
    let mut p = CyclePattern::new(vec!["d".to_string(), "ck".to_string(), "q".to_string()]);
    for &bit in bits {
        p.push_cycle(vec![
            PinState::from_drive(bit),
            PinState::Pulse,
            PinState::from_expect(bit),
        ])
        .unwrap();
    }
    p
}

#[test]
fn process_playback_matches_in_thread_including_mismatch_order() {
    use Logic::{One, Zero};
    let mut b = NetlistBuilder::new("m");
    let d = b.input("d");
    let ck = b.input("ck");
    let q = b.gate(GateKind::Dff, &[d, ck]);
    b.output("q", q);
    let m = b.finish().unwrap();
    let patterns: Vec<CyclePattern> = (0..150u32)
        .map(|i| {
            let bits: Vec<Logic> = (0..4)
                .map(|k| if (i >> (k % 5)) & 1 == 1 { One } else { Zero })
                .collect();
            let mut p = flop_pattern(&bits);
            if i % 49 == 7 {
                // Deliberately failing patterns, so the mismatch logs
                // (content AND order) go through the merge.
                p.cycles[2][2] = PinState::ExpectH;
                p.cycles[2][0] = PinState::Drive0;
            }
            p
        })
        .collect();
    let refs: Vec<&CyclePattern> = patterns.iter().collect();
    let sim = Simulator::new(&m).unwrap();
    let baseline = apply_cycle_patterns_batch_with(&sim, &refs, Threads::single()).unwrap();
    assert!(baseline.iter().any(|r| !r.passed()));
    for workers in [1, 2, 3] {
        let processed = apply_cycle_patterns_batch_with_pool(&sim, &refs, &pool(workers)).unwrap();
        assert_eq!(processed, baseline, "{workers} workers");
    }
}

/// Forces on the dispatcher's simulator (fault injection) must carry
/// into worker processes exactly as they carry into in-thread clones.
#[test]
fn process_playback_carries_forces_across_the_wire() {
    use Logic::{One, Zero};
    let mut b = NetlistBuilder::new("m");
    let d = b.input("d");
    let ck = b.input("ck");
    let q = b.gate(GateKind::Dff, &[d, ck]);
    b.output("q", q);
    let m = b.finish().unwrap();
    let mut sim = Simulator::new(&m).unwrap();
    // Stuck-at-0 on the output: every ExpectH pattern must now fail.
    sim.force(m.port("q").unwrap().net, Logic::Zero);
    let patterns: Vec<CyclePattern> = (0..70)
        .map(|i| flop_pattern(&[if i % 2 == 0 { One } else { Zero }]))
        .collect();
    let refs: Vec<&CyclePattern> = patterns.iter().collect();
    let baseline = apply_cycle_patterns_batch_with(&sim, &refs, Threads::single()).unwrap();
    assert!(baseline.iter().any(|r| !r.passed()), "force must bite");
    let processed = apply_cycle_patterns_batch_with_pool(&sim, &refs, &pool(2)).unwrap();
    assert_eq!(processed, baseline);
}

#[test]
fn process_march_matches_in_thread_including_escape_order() {
    use rand::SeedableRng;
    let cfg = SramConfig::single_port(64, 4);
    let mut rng = rand::rngs::StdRng::seed_from_u64(99);
    let faults = faultsim::random_fault_list(&cfg, 40, &mut rng);
    let alg = MarchAlgorithm::mats_plus(); // leaves escapes to merge
    let baseline = faultsim::fault_coverage_with(&alg, &cfg, &faults, Threads::single());
    assert!(baseline.detected < baseline.total, "need escapes to merge");
    for workers in [1, 2, 3] {
        let processed = faultsim::fault_coverage_with_pool(&alg, &cfg, &faults, &pool(workers));
        assert_eq!(processed, baseline, "{workers} workers");
    }
}

/// The default-discovery path (`shard::default_worker_binary`) must find
/// the freshly built worker from a test executable, and the JPEG
/// playback experiment must report identically through it.
#[test]
fn jpeg_playback_processes_matches_in_thread() {
    assert!(
        shard::default_worker_binary().is_some(),
        "worker binary should be discoverable next to the test executable"
    );
    let baseline = steac_dsc::jpeg_playback_batch_with(130, Threads::single()).unwrap();
    let processed = steac_dsc::jpeg_playback_batch_processes(130, 2).unwrap();
    assert_eq!(processed.patterns, baseline.patterns);
    assert_eq!(processed.cycles, baseline.cycles);
    assert_eq!(processed.compares, baseline.compares);
    assert_eq!(processed.mismatches, baseline.mismatches);
    assert_eq!(processed.passes, baseline.passes);
    assert_eq!(processed.threads, 2);
}

// ---------- negative paths ----------

/// A worker binary that cannot be spawned at all degrades gracefully to
/// the in-thread pool: same report, no error.
#[test]
fn spawn_failure_falls_back_in_thread() {
    let m = mixed_module();
    let faults = fault::enumerate_faults(&m);
    let pins = [m.port("a").unwrap().net];
    let vectors = vec![vec![Logic::Zero], vec![Logic::One]];
    let baseline =
        fault::grade_vectors_with(&m, &faults, &pins, &vectors, Threads::single()).unwrap();
    let bogus = ProcessPool::with_binary(PathBuf::from("/nonexistent/steac-worker"), 2);
    let report = fault::grade_vectors_with_pool(&m, &faults, &pins, &vectors, &bogus).unwrap();
    assert_eq!(report, baseline);
    // The infallible March API falls back the same way.
    let cfg = SramConfig::single_port(16, 2);
    let mfaults = vec![steac_membist::MemFault::stuck_at(3, 0, true)];
    let alg = MarchAlgorithm::march_c_minus();
    let march_base = faultsim::fault_coverage_with(&alg, &cfg, &mfaults, Threads::single());
    assert_eq!(
        faultsim::fault_coverage_with_pool(&alg, &cfg, &mfaults, &bogus),
        march_base
    );
}

/// A worker that dies without producing results surfaces as the
/// lowest-indexed unit assigned to it, with its diagnostics attached.
#[test]
fn dying_worker_surfaces_as_lowest_indexed_unit_error() {
    let false_bin = PathBuf::from("/bin/false");
    if !false_bin.is_file() {
        eprintln!("skipping: /bin/false not present");
        return;
    }
    let m = mixed_module();
    let faults = fault::enumerate_faults(&m);
    let pins = [m.port("a").unwrap().net];
    let vectors = vec![vec![Logic::Zero]];
    let dying = ProcessPool::with_binary(false_bin, 2);
    let err = fault::grade_vectors_with_pool(&m, &faults, &pins, &vectors, &dying).unwrap_err();
    match err {
        SimError::Worker { unit, diagnostic } => {
            assert_eq!(unit, 0, "lowest-indexed unit wins: {diagnostic}");
        }
        other => panic!("expected SimError::Worker, got {other:?}"),
    }
}

/// An unknown job kind is reported per unit by a healthy worker; the
/// dispatcher deterministically picks unit 0.
#[test]
fn unknown_job_kind_is_a_lowest_indexed_unit_error() {
    let err = pool(2)
        .run(999, b"whatever", &[vec![1], vec![2], vec![3]])
        .unwrap_err();
    match err {
        PoolError::Unit { unit, diagnostic } => {
            assert_eq!(unit, 0);
            assert!(
                diagnostic.contains("unknown work-unit kind"),
                "{diagnostic}"
            );
        }
        other => panic!("expected PoolError::Unit, got {other:?}"),
    }
}

/// Corrupt job bytes (valid protocol envelope, garbage payload) come
/// back as typed unit errors carrying the wire diagnostic — the worker
/// exits cleanly rather than panicking.
#[test]
fn corrupt_job_bytes_are_typed_unit_errors() {
    for kind in [
        fault::WIRE_KIND,
        steac_pattern::cycle::WIRE_KIND,
        steac_membist::wire::WIRE_KIND,
    ] {
        let err = pool(1)
            .run(kind, &[0xDE, 0xAD, 0xBE, 0xEF], &[vec![0; 4]])
            .unwrap_err();
        match err {
            PoolError::Unit { unit, diagnostic } => {
                assert_eq!(unit, 0, "kind {kind}");
                assert!(!diagnostic.is_empty(), "kind {kind}");
            }
            other => panic!("kind {kind}: expected PoolError::Unit, got {other:?}"),
        }
    }
}

/// Corrupt *unit* bytes under a valid job: the decode failure is
/// attributed to exactly the corrupt unit — healthy units before it
/// still compute, proven by the error index pointing past them.
#[test]
fn corrupt_unit_bytes_fail_only_that_unit() {
    let cfg = SramConfig::single_port(16, 2);
    let alg = MarchAlgorithm::march_c_minus();
    let job = steac_membist::wire::encode_march_job(&alg, &cfg);
    let good =
        steac_membist::wire::encode_fault_unit(&[steac_membist::MemFault::stuck_at(3, 0, true)]);
    let corrupt = vec![0xFF; 3];
    let err = pool(1)
        .run(
            steac_membist::wire::WIRE_KIND,
            &job,
            &[good.clone(), corrupt, good],
        )
        .unwrap_err();
    match err {
        PoolError::Unit { unit, diagnostic } => {
            assert_eq!(unit, 1, "only the corrupt unit fails: {diagnostic}");
        }
        other => panic!("expected PoolError::Unit, got {other:?}"),
    }
}

/// Truncated and version-bumped program blobs decode to typed errors —
/// the wire layer's contract, checked here at the integration level on a
/// realistically sized program (the JPEG core).
#[test]
fn jpeg_program_wire_negative_paths_are_typed() {
    let (module, _) = steac_dsc::jpeg_core().unwrap();
    let program = steac_sim::SimProgram::compile(&module).unwrap();
    let bytes = steac_sim::wire::encode_program(&program);
    let back = steac_sim::wire::decode_program(&bytes).unwrap();
    assert_eq!(back, program);

    // Wrong version.
    let mut versioned = bytes.clone();
    versioned[4] = versioned[4].wrapping_add(1);
    assert!(matches!(
        steac_sim::wire::decode_program(&versioned),
        Err(steac_sim::WireError::UnsupportedVersion { .. })
    ));
    // Wrong magic.
    let mut magicked = bytes.clone();
    magicked[0] = b'?';
    assert!(matches!(
        steac_sim::wire::decode_program(&magicked),
        Err(steac_sim::WireError::BadMagic { .. })
    ));
    // Truncations at a spread of cut points (the exhaustive sweep runs
    // in the sim crate's unit tests on a small program).
    for cut in (0..bytes.len()).step_by(997) {
        assert!(
            steac_sim::wire::decode_program(&bytes[..cut]).is_err(),
            "prefix {cut}"
        );
    }
    // Single-byte corruption at a spread of positions never panics.
    for i in (0..bytes.len()).step_by(613) {
        let mut corrupt = bytes.clone();
        corrupt[i] ^= 0x5A;
        let _ = steac_sim::wire::decode_program(&corrupt);
    }
}
