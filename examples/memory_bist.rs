//! BRAINS walk-through: the command shell, fault injection, and the
//! serial-vs-parallel design trade-off (Fig. 2 territory).
//!
//! ```sh
//! cargo run --example memory_bist
//! ```

use steac_membist::faultsim::run_march;
use steac_membist::shell::Shell;
use steac_membist::{MarchAlgorithm, MemFault, Sram, SramConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Drive BRAINS through its command shell, as the paper describes
    //    ("one can generate the BIST circuit using the GUI or command
    //    shell").
    let mut shell = Shell::new();
    let transcript = shell.exec_script(
        "# a small heterogeneous memory subsystem
         add_memory frame0 words=8192 width=16 ports=sp group=0
         add_memory frame1 words=8192 width=16 ports=sp group=0
         add_memory dma    words=2048 width=32 ports=sp group=0
         add_memory fifo   words=256  width=32 ports=2p group=1
         set_algorithm march_c-
         set_policy per_group
         set_parallel on
         compile
         report
         coverage 15",
    )?;
    println!("--- BRAINS shell session ---\n{transcript}");

    // 2. Show a fault actually being caught: inject a coupling fault and
    //    run March C- against the behavioural memory.
    let cfg = SramConfig::single_port(1024, 8);
    let fault = MemFault::CouplingInversion {
        aggressor: (100, 3),
        victim: (612, 5),
        rising: true,
    };
    let mut faulty = Sram::with_fault(cfg, fault);
    let alg = MarchAlgorithm::march_c_minus();
    println!("injected {:?}", fault);
    println!(
        "March C- verdict: {}",
        if run_march(&alg, &mut faulty) {
            "DETECTED"
        } else {
            "escaped (bug!)"
        }
    );

    // 3. The design-space question BRAINS answers: one sequencer or many?
    let design = shell.design().expect("compiled above");
    println!(
        "\nserial {} cycles vs parallel {} cycles over {} sequencers ({:.0} GE of BIST logic)",
        design.total_cycles_serial,
        design.total_cycles_parallel,
        design.sequencer_count(),
        design.total_area_ge()
    );
    Ok(())
}
