//! Quickstart: run the STEAC flow on a small two-core SOC.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use steac::flow::{run_flow, CoreSource, FlowInput};
use steac::report::render_flow;
use steac_membist::{Brains, MemorySpec, SramConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Test information as an ATPG tool would emit it (STIL, IEEE 1450).
    let dsp = r#"
STIL 1.0;
Header { Title "DSP core"; }
Signals { ck In; rst In; se In;
          d[0] In; d[1] In; d[2] In; d[3] In;
          q[0] Out; q[1] Out;
          si0 In { ScanIn; } so0 Out { ScanOut; }
          si1 In { ScanIn; } so1 Out { ScanOut; } }
SignalGroups { clocks = 'ck'; resets = 'rst'; scan_enables = 'se';
               pi = 'd[0] + d[1] + d[2] + d[3]'; po = 'q[0] + q[1]'; }
ScanStructures {
  ScanChain "c0" { ScanLength 120; ScanIn si0; ScanOut so0; ScanEnable se; ScanClock ck; }
  ScanChain "c1" { ScanLength 115; ScanIn si1; ScanOut so1; ScanEnable se; ScanClock ck; }
}
Procedures { "load_unload" { Shift { V { si0=#; si1=#; so0=#; so1=#; ck=P; } } } }
Pattern scan_test { W wft; Loop 300 { Call "load_unload"; } }
"#;
    let uart = r#"
STIL 1.0;
Header { Title "UART core"; }
Signals { ck In; te In; rx In; tx Out; d0 In; d1 In; q0 Out; }
SignalGroups { clocks = 'ck'; test_enables = 'te';
               pi = 'rx + d0 + d1'; po = 'tx + q0'; }
Pattern functional { Loop 5000 { V { rx=1; ck=P; } } }
"#;

    // One small embedded memory, BISTed by BRAINS.
    let mut brains = Brains::new();
    brains.add_memory(MemorySpec::new(
        "buf0",
        SramConfig::single_port(2048, 16),
        0,
    ));

    let input = FlowInput {
        cores: vec![
            CoreSource::new("dsp", dsp).with_powers(1.0, 1.0),
            CoreSource::new("uart", uart).with_powers(0.5, 0.5),
        ],
        bist: Some(brains),
        ..FlowInput::default()
    };

    let result = run_flow(&input)?;
    println!("{}", render_flow(&result));
    println!(
        "STEAC scheduled {} tasks into {} sessions: {} cycles total",
        result.tasks.len(),
        result.schedule.sessions.len(),
        result.schedule.total_cycles
    );
    Ok(())
}
