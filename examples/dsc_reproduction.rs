//! The paper's headline experiment, end to end: the DSC controller chip
//! scheduled session-based vs non-session (§3 of the paper).
//!
//! ```sh
//! cargo run --example dsc_reproduction
//! ```

use steac_dsc::{dsc_chip_config, dsc_test_tasks, PAPER_NONSESSION_CYCLES, PAPER_SESSION_CYCLES};
use steac_sched::report::{render_nonsession, render_sessions};
use steac_sched::{schedule_nonsession, schedule_sessions};

fn main() {
    let tasks = dsc_test_tasks();
    let config = dsc_chip_config();

    let session = schedule_sessions(&tasks, &config).expect("DSC instance is feasible");
    let nonsession = schedule_nonsession(&tasks, &config).expect("DSC instance is feasible");

    println!("{}", render_sessions(&session, &tasks));
    println!("{}", render_nonsession(&nonsession, &tasks));

    println!(
        "paper:    session-based {PAPER_SESSION_CYCLES} vs non-session {PAPER_NONSESSION_CYCLES}"
    );
    println!(
        "measured: session-based {} vs non-session {}",
        session.total_cycles, nonsession.makespan
    );
    let savings =
        100.0 * (nonsession.makespan - session.total_cycles) as f64 / nonsession.makespan as f64;
    println!("the session-based approach saves {savings:.1}% — same direction as the paper's 7.3%");
    assert!(session.total_cycles < nonsession.makespan);
    assert_eq!(session.sessions.len(), 3, "three sessions, as in the paper");
}
