//! The paper's headline workload, end to end: play the JPEG core's full
//! functional-pattern set — 235,696 patterns, the largest entry of
//! Table 1 — through the sharded batched ATE cycle player.
//!
//! ```sh
//! cargo run --release --example jpeg_full_playback           # full set
//! cargo run --release --example jpeg_full_playback -- 10000  # subset
//! STEAC_THREADS=4 cargo run --release --example jpeg_full_playback
//! ```
//!
//! Pattern generation (scalar reference simulation per pattern) and
//! playback (64 patterns per pass) both shard across the configured
//! thread count; the binary prints the thread count used and the
//! sustained patterns/sec for each phase.

use std::time::Instant;
use steac_dsc::{jpeg_functional_patterns_with, TABLE1};
use steac_pattern::{apply_cycle_patterns_batch_with, CyclePattern};
use steac_sim::{Simulator, Threads};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let full = TABLE1[2].functional_patterns as usize; // 235,696
    let count = std::env::args()
        .nth(1)
        .map(|s| s.parse::<usize>())
        .transpose()?
        .unwrap_or(full);
    let threads = Threads::from_env();
    println!(
        "JPEG functional playback: {count} of {full} patterns, {} worker thread(s)",
        threads.get()
    );

    let t = Instant::now();
    let (module, patterns) = jpeg_functional_patterns_with(count, threads)?;
    let gen_secs = t.elapsed().as_secs_f64();
    println!(
        "generated {} two-cycle patterns in {gen_secs:.2}s ({:.0} patterns/s)",
        patterns.len(),
        patterns.len() as f64 / gen_secs.max(1e-9),
    );

    let refs: Vec<&CyclePattern> = patterns.iter().collect();
    let sim = Simulator::new(&module)?;
    let t = Instant::now();
    let reports = apply_cycle_patterns_batch_with(&sim, &refs, threads)?;
    let play_secs = t.elapsed().as_secs_f64();

    let compares: u64 = reports.iter().map(|r| r.compares).sum();
    let mismatches: usize = reports.iter().map(|r| r.mismatches.len()).sum();
    println!(
        "played {} patterns in {play_secs:.2}s ({:.0} patterns/s, {} passes, {compares} compares)",
        reports.len(),
        reports.len() as f64 / play_secs.max(1e-9),
        count.div_ceil(steac_sim::LANES),
    );
    println!("mismatches: {mismatches}");
    if mismatches != 0 {
        // Per-pattern detail (truncated displays end with a (+N more) tail).
        for (i, r) in reports.iter().enumerate().filter(|(_, r)| !r.passed()) {
            println!("pattern {i}: {r}");
        }
        return Err("playback mismatches".into());
    }
    println!("PASS: netlist matches all expected responses");
    Ok(())
}
