//! The paper's headline workload, end to end: play the JPEG core's full
//! functional-pattern set — 235,696 patterns, the largest entry of
//! Table 1 — through the **streaming** generate→play pipeline on
//! whatever execution backend `Exec::from_env()` resolves.
//!
//! ```sh
//! cargo run --release --example jpeg_full_playback           # full set
//! cargo run --release --example jpeg_full_playback -- 10000  # subset
//! STEAC_EXEC=threads:4 cargo run --release --example jpeg_full_playback
//! STEAC_EXEC=processes:2 cargo run --release --example jpeg_full_playback
//! cargo run --release --example jpeg_full_playback -- 235696 --materialize
//! ```
//!
//! By default the set is never materialized: generator threads produce
//! 64-pattern blocks into a bounded queue while the cycle player
//! (`64 * PLAYBACK_LANE_GROUPS` patterns per pass) consumes them
//! through `Exec::dispatch_stream`, so generation — the slow phase —
//! overlaps playback and peak memory follows the queue depth, not the
//! set size. `--materialize` switches to the old generate-everything-
//! then-play flow; the two print byte-identical reports. The binary
//! prints the backend, the sustained patterns/sec and the peak RSS, so
//! the constant-memory claim is checkable from the output alone.

use std::time::Instant;
use steac_dsc::{jpeg_playback_batch, jpeg_playback_stream, TABLE1};
use steac_sim::Exec;

/// Peak resident set of this process so far (`VmHWM`), in bytes.
fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kib: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kib * 1024)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let full = TABLE1[2].functional_patterns as usize; // 235,696
    let args: Vec<String> = std::env::args().skip(1).collect();
    let materialize = args.iter().any(|a| a == "--materialize");
    let count = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .map(|s| s.parse::<usize>())
        .transpose()?
        .unwrap_or(full);
    let exec = Exec::from_env();
    let flavour = if materialize {
        "materialized"
    } else {
        "streaming"
    };
    println!("JPEG functional playback ({flavour}): {count} of {full} patterns, backend {exec}");

    let t = Instant::now();
    let report = if materialize {
        jpeg_playback_batch(&exec, count)?
    } else {
        jpeg_playback_stream(&exec, count)?
    };
    let secs = t.elapsed().as_secs_f64();

    println!(
        "played {} patterns ({} cycles) in {secs:.2}s ({:.0} patterns/s, {} passes, {} compares)",
        report.patterns,
        report.cycles,
        report.patterns as f64 / secs.max(1e-9),
        report.passes,
        report.compares,
    );
    if let Some(rss) = peak_rss_bytes() {
        println!("peak RSS: {:.1} MiB", rss as f64 / (1024.0 * 1024.0));
    }
    if report.process_fallbacks > 0 {
        println!(
            "note: process dispatch fell back in-thread {} time(s)",
            report.process_fallbacks
        );
    }
    println!("mismatches: {}", report.mismatches);
    if report.mismatches != 0 {
        return Err("playback mismatches".into());
    }
    println!("PASS: netlist matches all expected responses");
    Ok(())
}
