//! The paper's headline workload, end to end: play the JPEG core's full
//! functional-pattern set — 235,696 patterns, the largest entry of
//! Table 1 — through the batched ATE cycle player on whatever execution
//! backend `Exec::from_env()` resolves.
//!
//! ```sh
//! cargo run --release --example jpeg_full_playback           # full set
//! cargo run --release --example jpeg_full_playback -- 10000  # subset
//! STEAC_EXEC=threads:4 cargo run --release --example jpeg_full_playback
//! STEAC_EXEC=processes:2 cargo run --release --example jpeg_full_playback
//! ```
//!
//! Pattern generation (scalar reference simulation per pattern) shards
//! on the backend's in-process pool; playback (`64 *
//! PLAYBACK_LANE_GROUPS` patterns per pass — playback's narrow default
//! width) dispatches on the backend itself — threads or
//! `steac-worker` processes. The binary prints the compiled program's
//! structural statistics (including what the optimizer pipeline did),
//! the backend used, and the sustained patterns/sec for each phase.

use std::time::Instant;
use steac_dsc::{jpeg_functional_patterns, TABLE1};
use steac_pattern::{apply_cycle_patterns_batch, CyclePattern};
use steac_sim::{Exec, Simulator};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let full = TABLE1[2].functional_patterns as usize; // 235,696
    let count = std::env::args()
        .nth(1)
        .map(|s| s.parse::<usize>())
        .transpose()?
        .unwrap_or(full);
    let exec = Exec::from_env();
    println!("JPEG functional playback: {count} of {full} patterns, backend {exec}");

    let t = Instant::now();
    let (module, patterns) = jpeg_functional_patterns(&exec, count)?;
    let gen_secs = t.elapsed().as_secs_f64();
    println!(
        "generated {} two-cycle patterns in {gen_secs:.2}s ({:.0} patterns/s)",
        patterns.len(),
        patterns.len() as f64 / gen_secs.max(1e-9),
    );

    let refs: Vec<&CyclePattern> = patterns.iter().collect();
    let sim: Simulator = Simulator::new(&module)?;
    println!("{}", sim.program().stats());
    let t = Instant::now();
    let playback = apply_cycle_patterns_batch(&exec, &sim, &refs)?;
    let play_secs = t.elapsed().as_secs_f64();

    let reports = &playback.reports;
    let compares: u64 = reports.iter().map(|r| r.compares).sum();
    let mismatches: usize = reports.iter().map(|r| r.mismatches.len()).sum();
    println!(
        "played {} patterns in {play_secs:.2}s ({:.0} patterns/s, {} passes, {compares} compares)",
        reports.len(),
        reports.len() as f64 / play_secs.max(1e-9),
        count.div_ceil(steac_sim::LANES * steac_pattern::PLAYBACK_LANE_GROUPS),
    );
    if playback.process_fallbacks > 0 {
        println!(
            "note: process dispatch fell back in-thread {} time(s)",
            playback.process_fallbacks
        );
    }
    println!("mismatches: {mismatches}");
    if mismatches != 0 {
        // Per-pattern detail (truncated displays end with a (+N more) tail).
        for (i, r) in reports.iter().enumerate().filter(|(_, r)| !r.passed()) {
            println!("pattern {i}: {r}");
        }
        return Err("playback mismatches".into());
    }
    println!("PASS: netlist matches all expected responses");
    Ok(())
}
