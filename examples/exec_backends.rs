//! Quickstart for the unified execution-backend API: one `Exec` value
//! picks *how* every batched workload runs — serially, across
//! in-process threads, across `steac-worker` processes, or across a
//! remote fleet of `steac-worker` hosts — while the workload calls
//! stay identical.
//!
//! ```sh
//! cargo run --example exec_backends
//! STEAC_EXEC=serial       cargo run --example exec_backends
//! STEAC_EXEC=threads:4    cargo run --example exec_backends
//! STEAC_EXEC=processes:2  cargo run --release --example exec_backends
//!
//! # machine-level: start one worker per host of the fleet ...
//! steac-worker --serve 10.0.0.12:7601 &   # (on each host)
//! # ... then point a remote spec (or STEAC_HOSTS) at them:
//! STEAC_EXEC=remote:10.0.0.12:7601,10.0.0.13:7601 \
//!     cargo run --release --example exec_backends
//! ```
//!
//! (Process and local-spawn remote backends need the worker binary:
//! `cargo build [--release]` first. Without it, `processes` degrades to
//! threads with a warning; a malformed spec — `threads:0`, a bad host
//! list — panics loudly instead of silently running something else.)
//!
//! When the worker binary is discoverable, this example also runs a
//! two-host remote fleet over `SpawnTransport` — the Remote dispatch
//! arm (work-stealing, retries, wire codecs) with zero network.

use rand::SeedableRng;
use steac_membist::faultsim::{self, random_fault_list};
use steac_membist::{MarchAlgorithm, SramConfig};
use steac_netlist::{GateKind, NetlistBuilder};
use steac_sim::{enumerate_faults, fault, Exec, Logic, RemoteFleet, Threads};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small scan-less circuit: an 80-deep inverter/NAND cone whose
    // fault list spans several packed passes.
    let mut b = NetlistBuilder::new("cone");
    let a = b.input("a");
    let mut cur = a;
    for i in 0..80 {
        cur = if i % 3 == 0 {
            b.gate(GateKind::Inv, &[cur])
        } else {
            b.gate(GateKind::Nand2, &[cur, a])
        };
    }
    b.output("y", cur);
    let module = b.finish()?;
    let faults = enumerate_faults(&module);
    let pins = [module.port("a").unwrap().net];
    let vectors = vec![vec![Logic::Zero], vec![Logic::One]];

    // And a March fault-simulation workload on a 64x4 SRAM.
    let cfg = SramConfig::single_port(64, 4);
    let mut rng = rand::rngs::StdRng::seed_from_u64(2005);
    let mem_faults = random_fault_list(&cfg, 20, &mut rng);
    let alg = MarchAlgorithm::march_c_minus();

    // Four backend families, one API. `Exec::from_env()` honours
    // STEAC_EXEC (serial | auto | threads[:N] | processes[:N] |
    // remote:host:port,…), then STEAC_HOSTS, then the STEAC_WORKERS /
    // STEAC_THREADS knobs.
    let mut backends = vec![
        Exec::serial(),
        Exec::threads(Threads::exact(4)),
        Exec::from_env(),
    ];
    if let Some(fleet) = RemoteFleet::spawn_local(2) {
        backends.push(Exec::remote(fleet));
    }
    let mut reference = None;
    for exec in &backends {
        let gate = fault::grade_vectors(exec, &module, &faults, &pins, &vectors)?;
        let march = faultsim::fault_coverage(exec, &alg, &cfg, &mem_faults)?;
        println!("backend {exec:<12} gate: {gate}   March: {march}");
        // Verdicts are bit-identical on every backend — that is the
        // dispatch contract, not a coincidence. (Compare the verdict
        // fields, not `process_fallbacks`: an in-thread fallback under
        // the default policy changes the bookkeeping, never a verdict.)
        let verdicts = (
            gate.detected,
            gate.undetected,
            march.detected,
            march.escaped,
        );
        match &reference {
            None => reference = Some(verdicts),
            Some(expected) => assert!(expected == &verdicts, "backend changed a verdict"),
        }
    }
    println!("all backends agree, fault for fault");
    Ok(())
}
