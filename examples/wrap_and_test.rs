//! Wrap a core, translate a core-level scan pattern to the wrapper
//! level, and apply it to the gate-level netlist with the ATE cycle
//! player — the Pattern Translator path of Fig. 1, verified by
//! simulation.
//!
//! ```sh
//! cargo run --example wrap_and_test
//! ```

use steac_netlist::{Design, GateKind, NetlistBuilder};
use steac_pattern::{
    apply_cycle_pattern, export_ate, scan_to_wrapper, wrapper_vectors_to_cycles, ScanVector,
    WrapperPorts,
};
use steac_sim::{Logic, Simulator};
use steac_wrapper::{balance_fixed, wrap_core, WrapOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 4-bit comparator core: eq = (a == b).
    let mut b = NetlistBuilder::new("cmp4");
    let a = b.input_bus("a", 4);
    let c = b.input_bus("b", 4);
    let diffs: Vec<_> = (0..4)
        .map(|i| b.gate(GateKind::Xnor2, &[a[i], c[i]]))
        .collect();
    let eq = b.and_tree(&diffs);
    b.output("eq", eq);
    let core = b.finish()?;

    let mut design = Design::new();
    design.add_module(core)?;

    // Wrap it with one wrapper chain (8 inputs + 1 output = 9 cells).
    let plan = balance_fixed(&[], 8, 1, 1);
    let wrapped = wrap_core(&mut design, "cmp4", &plan, &WrapOptions::default())?;
    println!(
        "wrapped {}: {} boundary cells on {} chain(s)",
        wrapped.module_name, wrapped.boundary_cells, wrapped.width
    );

    // Core-level test: a = 0101, b = 0101 -> eq = 1.
    let mut v1 = ScanVector::shaped(&[], 8, 1);
    use Logic::{One, Zero};
    v1.pi = vec![Zero, One, Zero, One, Zero, One, Zero, One]; // a then b, port order
    v1.expect_po = vec![One];
    // Second pattern: a = 0101, b = 0111 -> eq = 0.
    let mut v2 = v1.clone();
    v2.pi[5] = One;
    v2.pi[6] = One;
    v2.pi = vec![Zero, One, Zero, One, Zero, One, One, One];
    v2.expect_po = vec![Zero];

    // Translate to the wrapper level and expand to ATE cycles.
    let w1 = scan_to_wrapper(&v1, &plan)?;
    let w2 = scan_to_wrapper(&v2, &plan)?;
    let ports = WrapperPorts::conventional(1);
    let pattern = wrapper_vectors_to_cycles(&[w1, w2], &ports);
    let (text, stats) = export_ate("cmp4_intest", &pattern);
    println!(
        "ATE export: {} cycles, {} vector lines, {} compares",
        stats.cycles, stats.lines, stats.compares
    );
    println!("{}", &text[..text.len().min(600)]);

    // Play it on the flattened netlist.
    let flat = design.flatten(&wrapped.module_name)?;
    let mut sim: Simulator = Simulator::new(&flat)?;
    let report = apply_cycle_pattern(&mut sim, &pattern)?;
    println!("simulation: {report}");
    assert!(report.passed(), "translated patterns must pass on silicon");
    println!("translated patterns PASS on the gate-level wrapper");
    Ok(())
}
